#!/usr/bin/env bash
# Hermetic CI: format, build, test — all offline — plus a dependency
# hygiene gate that fails if any non-workspace (non rce-*) dependency
# reappears in a Cargo.toml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --workspace --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline =="
cargo test --workspace -q --offline

echo "== dependency hygiene =="
# Collect every dependency name declared in any Cargo.toml. Anything
# that is not an in-tree rce-* path crate breaks hermeticity.
bad=0
for toml in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[(workspace\.)?(dev-|build-)?dependencies\]/ { in_deps = 1; next }
        /^\[/ { in_deps = 0 }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ { split($0, kv, /[ \t=]/); print kv[1] }
    ' "$toml")
    for dep in $deps; do
        case "$dep" in
        rce-*) ;;
        *)
            echo "FAIL: $toml declares non-workspace dependency '$dep'" >&2
            bad=1
            ;;
        esac
    done
done
if [ "$bad" -ne 0 ]; then
    exit 1
fi
echo "ok: all dependencies are in-tree rce-* crates"

echo "== observability smoke (paper trace) =="
# One fully-observed run: must emit a parseable Chrome trace + NDJSON
# log and pass its built-in zero-perturbation check (the binary exits
# nonzero if the obs-on report differs from the obs-off report).
obs_out=$(mktemp -d)
trap 'rm -rf "$obs_out"' EXIT
cargo run -q --release --offline -p rce-bench --bin paper -- \
    trace ping_pong CE+ --cores 4 --scale 1 --out "$obs_out"
for f in trace-ping_pong-ceplus.json trace-ping_pong-ceplus.ndjson; do
    if [ ! -s "$obs_out/$f" ]; then
        echo "FAIL: paper trace did not write $f" >&2
        exit 1
    fi
done
echo "ok: trace artifacts written and zero-perturbation check passed"

echo "== golden reports (paper report vs tests/goldens) =="
# The four seed engine configurations must emit SimReport JSON that is
# byte-identical to the pinned goldens. This is the refactor gate: the
# coherence/detection/metadata layering must never drift the
# simulation. (The small-AIM spill-path goldens are covered by
# tests/golden_reports.rs.)
for engine in MESI CE CE+ ARC; do
    slug=$(printf '%s' "$engine" | sed 's/+/plus/' | tr '[:upper:]' '[:lower:]')
    if ! cargo run -q --release --offline -p rce-bench --bin paper -- \
        report canneal "$engine" --cores 4 --scale 3 --seed 42 |
        diff -q - "tests/goldens/canneal-4c-$slug.json" >/dev/null; then
        echo "FAIL: $engine report drifted from tests/goldens/canneal-4c-$slug.json" >&2
        exit 1
    fi
    echo "ok: $engine report is byte-identical to its golden"
done

echo "== fast-path-disabled goldens (RCE_DISABLE_FASTPATH=1) =="
# The access-filter fast path is a pure acceleration: with the filter
# forced off, the same four configurations must still match the same
# goldens byte for byte, and the forensics pipeline must still attach
# provenance. This is the knob the equivalence property tests exercise
# in-process; here it is checked through the real env-var switch.
for engine in MESI CE CE+ ARC; do
    slug=$(printf '%s' "$engine" | sed 's/+/plus/' | tr '[:upper:]' '[:lower:]')
    if ! RCE_DISABLE_FASTPATH=1 cargo run -q --release --offline -p rce-bench --bin paper -- \
        report canneal "$engine" --cores 4 --scale 3 --seed 42 |
        diff -q - "tests/goldens/canneal-4c-$slug.json" >/dev/null; then
        echo "FAIL: $engine report drifted with the fast path disabled" >&2
        exit 1
    fi
    echo "ok: $engine report is byte-identical with the fast path disabled"
done
out=$(RCE_DISABLE_FASTPATH=1 cargo run -q --release --offline -p rce-bench --bin paper -- \
    explain racy_pair CE+ --cores 4 --scale 1 --seed 42)
if ! printf '%s' "$out" | grep -q "found via:"; then
    echo "FAIL: paper explain printed no provenance record with the fast path disabled" >&2
    exit 1
fi
echo "ok: forensics smoke passes with the fast path disabled"

echo "== ablation smoke (paper ablate-aim) =="
# The AIM sensitivity study must run end to end and write R-A7.json
# with both AIM-backed designs in it.
cargo run -q --release --offline -p rce-bench --bin paper -- \
    ablate-aim --cores 4 --scale 1 --out "$obs_out" >/dev/null
if [ ! -s "$obs_out/R-A7.json" ]; then
    echo "FAIL: ablate-aim did not write R-A7.json" >&2
    exit 1
fi
for design in "CE+" "ARC"; do
    if ! grep -q "\"$design\"" "$obs_out/R-A7.json"; then
        echo "FAIL: R-A7.json has no rows for $design" >&2
        exit 1
    fi
done
echo "ok: ablate-aim wrote R-A7.json with CE+ and ARC curves"

echo "== forensics smoke (paper explain) =="
# A conflict-bearing workload must produce at least one provenance
# record naming both endpoints and the detecting metadata path.
for engine in CE CE+ ARC; do
    out=$(cargo run -q --release --offline -p rce-bench --bin paper -- \
        explain racy_pair "$engine" --cores 4 --scale 1 --seed 42)
    if ! printf '%s' "$out" | grep -q "found via:"; then
        echo "FAIL: paper explain racy_pair $engine printed no provenance record" >&2
        exit 1
    fi
    if ! printf '%s' "$out" | grep -q "hottest conflict lines:"; then
        echo "FAIL: paper explain racy_pair $engine printed no heatmap" >&2
        exit 1
    fi
done
echo "ok: paper explain names both endpoints and the detection path"

echo "== report diffing (paper diff) =="
# Self-diff of a pinned golden must be empty and exit 0; an injected
# counter drift must be caught with exit 1.
cargo run -q --release --offline -p rce-bench --bin paper -- \
    diff tests/goldens/canneal-4c-ce.json tests/goldens/canneal-4c-ce.json 2>/dev/null
sed 's/"mem_ops": [0-9]*/"mem_ops": 1/' tests/goldens/canneal-4c-ce.json \
    >"$obs_out/drifted.json"
if cargo run -q --release --offline -p rce-bench --bin paper -- \
    diff tests/goldens/canneal-4c-ce.json "$obs_out/drifted.json" >/dev/null 2>&1; then
    echo "FAIL: paper diff did not flag an injected counter drift" >&2
    exit 1
fi
echo "ok: self-diff is clean, injected drift exits nonzero"

echo "== hot-path gate (paper bench-hot --smoke) =="
# Time the flat hot-path storage against std::collections references
# doing identical work, plus the access-filter fast path end to end.
# The binary exits nonzero if the flat raw-access path drops below its
# pinned speedup floor (MIN_SPEEDUP_X) or the fast path drops below
# MIN_FASTPATH_SPEEDUP_X — a throughput regression fails CI even when
# reports stay byte-identical.
if ! cargo run -q --release --offline -p rce-bench --bin paper -- \
    bench-hot --smoke; then
    echo "FAIL: hot-path throughput regressed below the pinned speedup floor" >&2
    exit 1
fi
echo "ok: hot-path storage clears its speedup floor"

echo "== perf trajectory gate (paper trajectory + diff) =="
# Re-run the pinned micro-sweep and compare against the committed
# baseline. The sweep is deterministic; the tolerance only leaves room
# for deliberate, reviewed model changes (which must regenerate
# results/bench_trajectory.json). The hot_path.measured section is wall
# time — machine-dependent — so it is excluded here; its floor is
# enforced by the bench-hot gate above and the exactly-diffed
# hot_path.pinned section.
cargo run -q --release --offline -p rce-bench --bin paper -- \
    trajectory --out "$obs_out"
if ! cargo run -q --release --offline -p rce-bench --bin paper -- \
    diff results/bench_trajectory.json "$obs_out/bench_trajectory.json" \
    --tolerance 2 --ignore hot_path.measured; then
    echo "FAIL: bench trajectory drifted beyond 2% of the committed baseline" >&2
    echo "      (regenerate results/bench_trajectory.json if the change is intended)" >&2
    exit 1
fi
echo "ok: bench trajectory matches the committed baseline"

echo "== ci passed =="
