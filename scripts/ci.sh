#!/usr/bin/env bash
# Hermetic CI: format, build, test — all offline — plus a dependency
# hygiene gate that fails if any non-workspace (non rce-*) dependency
# reappears in a Cargo.toml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --workspace --release --offline =="
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline =="
cargo test --workspace -q --offline

echo "== dependency hygiene =="
# Collect every dependency name declared in any Cargo.toml. Anything
# that is not an in-tree rce-* path crate breaks hermeticity.
bad=0
for toml in Cargo.toml crates/*/Cargo.toml; do
    deps=$(awk '
        /^\[(workspace\.)?(dev-|build-)?dependencies\]/ { in_deps = 1; next }
        /^\[/ { in_deps = 0 }
        in_deps && /^[A-Za-z0-9_-]+[ \t]*=/ { split($0, kv, /[ \t=]/); print kv[1] }
    ' "$toml")
    for dep in $deps; do
        case "$dep" in
        rce-*) ;;
        *)
            echo "FAIL: $toml declares non-workspace dependency '$dep'" >&2
            bad=1
            ;;
        esac
    done
done
if [ "$bad" -ne 0 ]; then
    exit 1
fi
echo "ok: all dependencies are in-tree rce-* crates"

echo "== observability smoke (paper trace) =="
# One fully-observed run: must emit a parseable Chrome trace + NDJSON
# log and pass its built-in zero-perturbation check (the binary exits
# nonzero if the obs-on report differs from the obs-off report).
obs_out=$(mktemp -d)
trap 'rm -rf "$obs_out"' EXIT
cargo run -q --release --offline -p rce-bench --bin paper -- \
    trace ping_pong CE+ --cores 4 --scale 1 --out "$obs_out"
for f in trace-ping_pong-ceplus.json trace-ping_pong-ceplus.ndjson; do
    if [ ! -s "$obs_out/$f" ]; then
        echo "FAIL: paper trace did not write $f" >&2
        exit 1
    fi
done
echo "ok: trace artifacts written and zero-perturbation check passed"

echo "== golden reports (paper report vs tests/goldens) =="
# The four seed engine configurations must emit SimReport JSON that is
# byte-identical to the pinned goldens. This is the refactor gate: the
# coherence/detection/metadata layering must never drift the
# simulation. (The small-AIM spill-path goldens are covered by
# tests/golden_reports.rs.)
for engine in MESI CE CE+ ARC; do
    slug=$(printf '%s' "$engine" | sed 's/+/plus/' | tr '[:upper:]' '[:lower:]')
    if ! cargo run -q --release --offline -p rce-bench --bin paper -- \
        report canneal "$engine" --cores 4 --scale 3 --seed 42 |
        diff -q - "tests/goldens/canneal-4c-$slug.json" >/dev/null; then
        echo "FAIL: $engine report drifted from tests/goldens/canneal-4c-$slug.json" >&2
        exit 1
    fi
    echo "ok: $engine report is byte-identical to its golden"
done

echo "== ablation smoke (paper ablate-aim) =="
# The AIM sensitivity study must run end to end and write R-A7.json
# with both AIM-backed designs in it.
cargo run -q --release --offline -p rce-bench --bin paper -- \
    ablate-aim --cores 4 --scale 1 --out "$obs_out" >/dev/null
if [ ! -s "$obs_out/R-A7.json" ]; then
    echo "FAIL: ablate-aim did not write R-A7.json" >&2
    exit 1
fi
for design in "CE+" "ARC"; do
    if ! grep -q "\"$design\"" "$obs_out/R-A7.json"; then
        echo "FAIL: R-A7.json has no rows for $design" >&2
        exit 1
    fi
done
echo "ok: ablate-aim wrote R-A7.json with CE+ and ARC curves"

echo "== ci passed =="
