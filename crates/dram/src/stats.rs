//! DRAM accounting.

use crate::controller::AccessKind;
use rce_common::{impl_json_struct, Bytes, Counter};

/// Accumulated DRAM statistics.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// Access counts by kind (indexed by [`AccessKind::index`]).
    pub accesses: [Counter; 4],
    /// Bytes by kind.
    pub bytes: [Bytes; 4],
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer misses.
    pub row_misses: Counter,
    /// Total cycles requests waited for busy channels/banks.
    pub total_queue_delay: Counter,
    /// Peak per-channel utilization (set by `finalize`).
    pub peak_channel_utilization: f64,
    /// Mean channel utilization.
    pub mean_channel_utilization: f64,
}

impl_json_struct!(DramStats {
    accesses,
    bytes,
    row_hits,
    row_misses,
    total_queue_delay,
    peak_channel_utilization,
    mean_channel_utilization,
});

impl DramStats {
    pub(crate) fn record(&mut self, kind: AccessKind, bytes: u64, row_hit: bool, queue: u64) {
        self.accesses[kind.index()].inc();
        self.bytes[kind.index()] += Bytes(bytes);
        if row_hit {
            self.row_hits.inc();
        } else {
            self.row_misses.inc();
        }
        self.total_queue_delay.add(queue);
    }

    /// Total accesses.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().map(|c| c.get()).sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> Bytes {
        Bytes(self.bytes.iter().map(|b| b.0).sum())
    }

    /// Metadata bytes (the CE off-chip tax).
    pub fn metadata_bytes(&self) -> Bytes {
        Bytes(
            self.bytes[AccessKind::MetaRead.index()].0
                + self.bytes[AccessKind::MetaWrite.index()].0,
        )
    }

    /// Row-buffer hit rate in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_misses.get();
        if total == 0 {
            0.0
        } else {
            self.row_hits.as_f64() / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut s = DramStats::default();
        s.record(AccessKind::DataRead, 64, false, 0);
        s.record(AccessKind::MetaWrite, 16, true, 5);
        assert_eq!(s.total_accesses(), 2);
        assert_eq!(s.total_bytes(), Bytes(80));
        assert_eq!(s.metadata_bytes(), Bytes(16));
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.total_queue_delay.get(), 5);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
    }
}
