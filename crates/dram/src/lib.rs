//! Off-chip DRAM model.
//!
//! CE's defining cost is metadata traffic to main memory, and the
//! paper's C1/C3 claims are about how much off-chip traffic each
//! design generates. The model here is a channel/bank structure with
//! row-buffer state and bandwidth-limited FIFO service per channel:
//! enough fidelity to make (a) metadata accesses visibly expensive,
//! (b) row locality matter (sequential metadata scrubbing is cheaper
//! than scattered), and (c) saturation possible when a design floods
//! the memory network.
//!
//! Accesses are classified as program data vs. conflict metadata so
//! the harness can attribute off-chip traffic per design.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod controller;
pub mod stats;

pub use controller::{AccessKind, Dram};
pub use stats::DramStats;
