//! The memory controller: channels, banks, row buffers, service.

use crate::stats::DramStats;
use rce_common::obs::{EventClass, EventKind, SharedTracer, SimEvent};
use rce_common::{impl_json_unit_enum, Bytes, Cycles, DramConfig, LineAddr};

/// What an access is for — program data or conflict metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Line fill toward the cache hierarchy.
    DataRead,
    /// Dirty line (or dirty words) written back.
    DataWrite,
    /// Conflict-detection metadata read (CE spill lookup, region-end
    /// scrub read).
    MetaRead,
    /// Conflict-detection metadata write (CE eviction spill, AIM
    /// overflow).
    MetaWrite,
}

impl_json_unit_enum!(AccessKind {
    DataRead,
    DataWrite,
    MetaRead,
    MetaWrite
});

impl AccessKind {
    /// All kinds, display order.
    pub const ALL: [AccessKind; 4] = [
        AccessKind::DataRead,
        AccessKind::DataWrite,
        AccessKind::MetaRead,
        AccessKind::MetaWrite,
    ];

    /// Stable accounting index.
    pub fn index(self) -> usize {
        match self {
            AccessKind::DataRead => 0,
            AccessKind::DataWrite => 1,
            AccessKind::MetaRead => 2,
            AccessKind::MetaWrite => 3,
        }
    }

    /// True for metadata accesses.
    pub fn is_meta(self) -> bool {
        matches!(self, AccessKind::MetaRead | AccessKind::MetaWrite)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::DataRead => "data-rd",
            AccessKind::DataWrite => "data-wr",
            AccessKind::MetaRead => "meta-rd",
            AccessKind::MetaWrite => "meta-wr",
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    busy_until: u64,
    busy_cycles: u64,
}

/// The DRAM subsystem.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    channels: Vec<Channel>,
    stats: DramStats,
    trace: Option<SharedTracer>,
}

impl Dram {
    /// Build from configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let n_banks = (cfg.channels * cfg.banks_per_channel) as usize;
        Dram {
            cfg,
            banks: vec![Bank::default(); n_banks],
            channels: vec![Channel::default(); cfg.channels as usize],
            stats: DramStats::default(),
            trace: None,
        }
    }

    /// Attach an event tracer; every access emits a
    /// [`EventKind::DramAccess`] event into it.
    pub fn attach_tracer(&mut self, t: SharedTracer) {
        self.trace = Some(t);
    }

    fn channel_of(&self, line: LineAddr) -> usize {
        let h = line.0.wrapping_mul(0xd1b54a32d192ed03) >> 32;
        (h % self.cfg.channels as u64) as usize
    }

    fn bank_of(&self, line: LineAddr, channel: usize) -> usize {
        let h = line.0.wrapping_mul(0x9e3779b97f4a7c15) >> 40;
        channel * self.cfg.banks_per_channel as usize
            + (h % self.cfg.banks_per_channel as u64) as usize
    }

    fn row_of(&self, line: LineAddr) -> u64 {
        line.base().0 / self.cfg.row_bytes
    }

    /// Perform an access of `bytes` for `line` at time `now`; returns
    /// the completion time.
    ///
    /// Timing: the channel serializes transfers
    /// (`bytes / channel_bandwidth`); the target bank contributes a
    /// row-hit or row-miss latency and is unavailable until the access
    /// completes. Completion is
    /// `max(channel free, bank free, now) + access latency + transfer`.
    pub fn access(&mut self, line: LineAddr, bytes: u64, kind: AccessKind, now: Cycles) -> Cycles {
        let ch_idx = self.channel_of(line);
        let bank_idx = self.bank_of(line, ch_idx);
        let row = self.row_of(line);

        let row_hit = self.banks[bank_idx].open_row == Some(row);
        let access_lat = if row_hit {
            self.cfg.row_hit_latency
        } else {
            self.cfg.row_miss_latency
        };
        let transfer = ((bytes as f64) / self.cfg.channel_bandwidth).ceil() as u64;

        let ch = &mut self.channels[ch_idx];
        let bank_free = self.banks[bank_idx].busy_until;
        let start = now.0.max(ch.busy_until).max(bank_free);
        let queue_delay = start - now.0;
        let done = start + access_lat + transfer;

        ch.busy_until = start + transfer.max(1);
        ch.busy_cycles += transfer.max(1);
        let bank = &mut self.banks[bank_idx];
        bank.busy_until = done;
        bank.open_row = Some(row);

        self.stats.record(kind, bytes, row_hit, queue_delay);
        if let Some(tr) = &self.trace {
            let mut tr = tr.borrow_mut();
            if tr.wants(EventClass::Dram) {
                tr.emit(SimEvent {
                    cycle: now.0,
                    core: None,
                    region: None,
                    kind: EventKind::DramAccess {
                        kind: kind.name().to_string(),
                        line: line.0,
                        bytes,
                    },
                });
            }
        }
        Cycles(done)
    }

    /// Finalize channel utilization given the simulation end time.
    pub fn finalize(&mut self, end: Cycles) {
        let elapsed = end.0.max(1);
        let mut peak = 0.0f64;
        let mut total = 0u64;
        for ch in &self.channels {
            let u = ch.busy_cycles.min(elapsed) as f64 / elapsed as f64;
            peak = peak.max(u);
            total += ch.busy_cycles;
        }
        self.stats.peak_channel_utilization = peak;
        self.stats.mean_channel_utilization =
            (total as f64 / self.channels.len() as f64) / elapsed as f64;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Total off-chip bytes moved.
    pub fn total_bytes(&self) -> Bytes {
        self.stats.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn row_hits_are_faster() {
        let mut d = dram();
        let first = d.access(LineAddr(0), 64, AccessKind::DataRead, Cycles(0));
        // Same line again, much later (no queueing): row hit.
        let t0 = Cycles(10_000);
        let second = d.access(LineAddr(0), 64, AccessKind::DataRead, t0);
        let miss_lat = first.0;
        let hit_lat = second.0 - t0.0;
        assert!(hit_lat < miss_lat, "hit={hit_lat} miss={miss_lat}");
        assert_eq!(d.stats().row_hits.get(), 1);
        assert_eq!(d.stats().row_misses.get(), 1);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut d = dram();
        let a = d.access(LineAddr(7), 64, AccessKind::DataRead, Cycles(0));
        // Same line (thus same bank) at the same instant queues.
        let b = d.access(LineAddr(7), 64, AccessKind::DataRead, Cycles(0));
        assert!(b > a);
        assert!(d.stats().total_queue_delay.get() > 0);
    }

    #[test]
    fn different_lines_spread_over_channels() {
        let d = dram();
        let mut channels = std::collections::HashSet::new();
        for l in 0..512u64 {
            channels.insert(d.channel_of(LineAddr(l)));
        }
        assert_eq!(channels.len(), DramConfig::default().channels as usize);
    }

    #[test]
    fn traffic_accounted_by_kind() {
        let mut d = dram();
        d.access(LineAddr(1), 64, AccessKind::DataRead, Cycles(0));
        d.access(LineAddr(2), 64, AccessKind::DataWrite, Cycles(0));
        d.access(LineAddr(3), 16, AccessKind::MetaWrite, Cycles(0));
        d.access(LineAddr(4), 16, AccessKind::MetaRead, Cycles(0));
        let s = d.stats();
        assert_eq!(s.accesses[AccessKind::DataRead.index()].get(), 1);
        assert_eq!(s.bytes[AccessKind::MetaWrite.index()], Bytes(16));
        assert_eq!(s.metadata_bytes(), Bytes(32));
        assert_eq!(s.total_bytes(), Bytes(160));
    }

    #[test]
    fn utilization_finalization() {
        let mut d = dram();
        for l in 0..200u64 {
            d.access(LineAddr(l), 64, AccessKind::DataRead, Cycles(0));
        }
        d.finalize(Cycles(2000));
        let s = d.stats();
        assert!(s.peak_channel_utilization > 0.0);
        assert!(s.peak_channel_utilization <= 1.0);
    }

    #[test]
    fn tracer_sees_accesses() {
        use rce_common::obs::{shared_tracer, TraceConfig, Tracer};
        let mut d = dram();
        let tr = shared_tracer(Tracer::new(TraceConfig::default()));
        d.attach_tracer(tr.clone());
        d.access(LineAddr(9), 64, AccessKind::DataRead, Cycles(3));
        d.access(LineAddr(9), 16, AccessKind::MetaWrite, Cycles(50));
        let log = tr.borrow_mut().take_log();
        assert_eq!(log.events.len(), 2);
        match &log.events[1].kind {
            EventKind::DramAccess { kind, line, bytes } => {
                assert_eq!(kind, "meta-wr");
                assert_eq!((*line, *bytes), (9, 16));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn completion_monotone_with_queue() {
        let mut d = dram();
        let mut prev = Cycles(0);
        for _ in 0..20 {
            let t = d.access(LineAddr(42), 64, AccessKind::DataRead, Cycles(0));
            assert!(t >= prev);
            prev = t;
        }
    }
}
