//! DRAM model invariants under random traffic.

use rce_common::check::{check_n, Unshrunk};
use rce_common::{prop_assert, prop_assert_eq, Cycles, DramConfig, Rng};
use rce_dram::{AccessKind, Dram};

/// Completion is causal and bank accesses serialize.
#[test]
fn completion_causal() {
    check_n(
        "dram completion causal",
        128,
        |rng| {
            let n = 1 + rng.gen_range(99) as usize;
            (0..n)
                .map(|_| (rng.gen_range(4096), rng.gen_range(1000)))
                .collect::<Vec<(u64, u64)>>()
        },
        |accesses| {
            let mut d = Dram::new(DramConfig::default());
            for &(line, t) in accesses {
                let done = d.access(LineAddr(line), 64, AccessKind::DataRead, Cycles(t));
                prop_assert!(done.0 > t, "an access takes nonzero time");
            }
            Ok(())
        },
    );
}

/// Byte accounting is exact.
#[test]
fn bytes_accounted() {
    check_n(
        "dram bytes accounted",
        128,
        |rng| {
            let n = 1 + rng.gen_range(79) as usize;
            (0..n)
                .map(|_| (rng.gen_range(1024), 1 + rng.gen_range(127)))
                .collect::<Vec<(u64, u64)>>()
        },
        |accesses| {
            let mut d = Dram::new(DramConfig::default());
            let mut expected = 0u64;
            for &(line, bytes) in accesses {
                d.access(LineAddr(line), bytes, AccessKind::MetaWrite, Cycles(0));
                expected += bytes;
            }
            prop_assert_eq!(d.total_bytes().0, expected);
            prop_assert_eq!(d.stats().metadata_bytes().0, expected);
            Ok(())
        },
    );
}

/// Row hits + misses equals total accesses; hit rate bounded.
#[test]
fn hit_accounting() {
    check_n(
        "dram hit accounting",
        128,
        |rng| {
            let n = 1 + rng.gen_range(199) as usize;
            (0..n).map(|_| rng.gen_range(256)).collect::<Vec<u64>>()
        },
        |lines| {
            let mut d = Dram::new(DramConfig::default());
            for (i, l) in lines.iter().enumerate() {
                d.access(
                    LineAddr(*l),
                    64,
                    AccessKind::DataRead,
                    Cycles(i as u64 * 10),
                );
            }
            let s = d.stats();
            prop_assert_eq!(s.row_hits.get() + s.row_misses.get(), s.total_accesses());
            prop_assert!((0.0..=1.0).contains(&s.row_hit_rate()));
            Ok(())
        },
    );
}

/// Sequential same-row accesses beat row-conflicting ones in total
/// time.
#[test]
fn row_locality_pays() {
    check_n(
        "dram row locality pays",
        128,
        |rng| Unshrunk(4 + rng.gen_range(28)),
        |Unshrunk(n)| {
            let seq_done = {
                let mut d = Dram::new(DramConfig::default());
                let mut t = Cycles(0);
                for i in 0..*n {
                    // Same 4 KiB row: lines 0..64.
                    t = d.access(LineAddr(i % 64), 64, AccessKind::DataRead, t);
                }
                t
            };
            let scattered_done = {
                let mut d = Dram::new(DramConfig::default());
                let mut t = Cycles(0);
                for i in 0..*n {
                    // Same channel+bank stride but distinct rows.
                    t = d.access(LineAddr(i * 4096), 64, AccessKind::DataRead, t);
                }
                t
            };
            // Not every mapping collides into one bank, so allow equality,
            // but sequential must never be slower.
            prop_assert!(seq_done <= scattered_done);
            Ok(())
        },
    );
}

use rce_common::LineAddr;
