//! DRAM model invariants under random traffic.

use proptest::prelude::*;
use rce_common::{Cycles, DramConfig, LineAddr};
use rce_dram::{AccessKind, Dram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Completion is causal and bank accesses serialize.
    #[test]
    fn completion_causal(
        accesses in proptest::collection::vec((0u64..4096, 0u64..1000), 1..100),
    ) {
        let mut d = Dram::new(DramConfig::default());
        for (line, t) in accesses {
            let done = d.access(LineAddr(line), 64, AccessKind::DataRead, Cycles(t));
            prop_assert!(done.0 > t, "an access takes nonzero time");
        }
    }

    /// Byte accounting is exact.
    #[test]
    fn bytes_accounted(
        accesses in proptest::collection::vec((0u64..1024, 1u64..128), 1..80),
    ) {
        let mut d = Dram::new(DramConfig::default());
        let mut expected = 0u64;
        for (line, bytes) in accesses {
            d.access(LineAddr(line), bytes, AccessKind::MetaWrite, Cycles(0));
            expected += bytes;
        }
        prop_assert_eq!(d.total_bytes().0, expected);
        prop_assert_eq!(d.stats().metadata_bytes().0, expected);
    }

    /// Row hits + misses equals total accesses; hit rate bounded.
    #[test]
    fn hit_accounting(
        lines in proptest::collection::vec(0u64..256, 1..200),
    ) {
        let mut d = Dram::new(DramConfig::default());
        for (i, l) in lines.iter().enumerate() {
            d.access(LineAddr(*l), 64, AccessKind::DataRead, Cycles(i as u64 * 10));
        }
        let s = d.stats();
        prop_assert_eq!(
            s.row_hits.get() + s.row_misses.get(),
            s.total_accesses()
        );
        prop_assert!((0.0..=1.0).contains(&s.row_hit_rate()));
    }

    /// Sequential same-row accesses beat row-conflicting ones in total
    /// time.
    #[test]
    fn row_locality_pays(n in 4u64..32) {
        let seq_done = {
            let mut d = Dram::new(DramConfig::default());
            let mut t = Cycles(0);
            for i in 0..n {
                // Same 4 KiB row: lines 0..64.
                t = d.access(LineAddr(i % 64), 64, AccessKind::DataRead, t);
            }
            t
        };
        let scattered_done = {
            let mut d = Dram::new(DramConfig::default());
            let mut t = Cycles(0);
            for i in 0..n {
                // Same channel+bank stride but distinct rows.
                t = d.access(LineAddr(i * 4096), 64, AccessKind::DataRead, t);
            }
            t
        };
        // Not every mapping collides into one bank, so allow equality,
        // but sequential must never be slower.
        prop_assert!(seq_done <= scattered_done);
    }
}
