//! Machine configuration: the simulated system's parameters.
//!
//! One [`MachineConfig`] describes everything the simulator needs:
//! core count, private cache and LLC geometry, NoC mesh and link
//! bandwidth, DRAM channels and timing, AIM geometry, and per-design
//! cost knobs (metadata piggyback size, signature bytes). The defaults
//! reproduce the paper's Table I configuration as far as the abstract
//! allows us to reconstruct it (32 cores, 32 KiB L1, 2 MiB-per-bank
//! shared LLC, 2D mesh, 4 DRAM channels).

use crate::units::Bytes;
use crate::{impl_json_struct, impl_json_unit_enum};

/// Which conflict-detection architecture (or baseline) to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Plain MESI coherence, no conflict detection: the normalization
    /// baseline of every figure.
    MesiBaseline,
    /// Conflict Exceptions (Lucia et al., ISCA 2010): MESI + access
    /// bits, metadata spilled to DRAM.
    Ce,
    /// CE+ — CE with the on-chip access information memory (AIM).
    CePlus,
    /// ARC — conflict detection on release-consistency +
    /// self-invalidation coherence, detection at the LLC-side AIM.
    Arc,
}

impl ProtocolKind {
    /// All protocol kinds, baseline first.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::MesiBaseline,
        ProtocolKind::Ce,
        ProtocolKind::CePlus,
        ProtocolKind::Arc,
    ];

    /// The three detection designs (everything except the baseline).
    pub const DETECTORS: [ProtocolKind; 3] =
        [ProtocolKind::Ce, ProtocolKind::CePlus, ProtocolKind::Arc];

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::MesiBaseline => "MESI",
            ProtocolKind::Ce => "CE",
            ProtocolKind::CePlus => "CE+",
            ProtocolKind::Arc => "ARC",
        }
    }

    /// The metadata placement that recovers this design as published:
    /// CE keeps displaced bits in an off-chip DRAM table, CE+ and ARC
    /// keep them in the on-chip AIM, the baseline has no metadata.
    pub fn default_meta_placement(self) -> MetaPlacement {
        match self {
            ProtocolKind::MesiBaseline => MetaPlacement::None,
            ProtocolKind::Ce => MetaPlacement::Dram,
            ProtocolKind::CePlus | ProtocolKind::Arc => MetaPlacement::Aim,
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where displaced/registered access metadata physically lives.
///
/// Orthogonal to the coherence+detection design selected by
/// [`ProtocolKind`]: CE is the MESI-family detector with [`Dram`]
/// placement, CE+ the same detector with [`Aim`] placement, and ARC
/// registers at the LLC-side [`Aim`]. Overriding the placement yields
/// the paper's missing sensitivity points — e.g. CE+ with an infinite
/// zero-latency metadata store ([`Ideal`], the upper bound the AIM
/// approximates) or ARC forced to keep every registration off-chip
/// ([`Dram`], the lower bound).
///
/// [`Dram`]: MetaPlacement::Dram
/// [`Aim`]: MetaPlacement::Aim
/// [`Ideal`]: MetaPlacement::Ideal
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetaPlacement {
    /// No metadata store at all (baseline only).
    #[default]
    None,
    /// Off-chip DRAM table: every metadata touch is a memory access.
    Dram,
    /// The on-chip AIM: bounded, spills victims to a DRAM table.
    Aim,
    /// Infinite on-chip store with zero access cost: the ideal bound
    /// no real AIM geometry can beat.
    Ideal,
}

impl MetaPlacement {
    /// All placements, in cost order.
    pub const ALL: [MetaPlacement; 4] = [
        MetaPlacement::None,
        MetaPlacement::Dram,
        MetaPlacement::Aim,
        MetaPlacement::Ideal,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            MetaPlacement::None => "none",
            MetaPlacement::Dram => "dram",
            MetaPlacement::Aim => "aim",
            MetaPlacement::Ideal => "ideal",
        }
    }
}

impl std::fmt::Display for MetaPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Granularity at which access metadata is kept and conflicts are
/// detected.
///
/// The paper's designs (like CE before them) track per-word bits so
/// that false sharing — distinct words of one line — never raises an
/// exception. `Line` collapses the masks to whole lines, reproducing
/// the cheaper-but-imprecise alternative; the granularity ablation
/// (`paper ablate-granularity`) quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DetectionGranularity {
    /// Per 8-byte word (the paper's designs).
    #[default]
    Word,
    /// Per 64-byte line (imprecise: false sharing raises exceptions).
    Line,
}

impl_json_unit_enum!(ProtocolKind {
    MesiBaseline,
    Ce,
    CePlus,
    Arc
});
impl_json_unit_enum!(DetectionGranularity { Word, Line });
impl_json_unit_enum!(MetaPlacement {
    None,
    Dram,
    Aim,
    Ideal
});
impl_json_struct!(CacheGeometry {
    capacity,
    ways,
    latency
});
impl_json_struct!(NocConfig {
    hop_latency,
    link_bandwidth,
    flit_bytes,
    ctrl_bytes,
    data_header_bytes,
});
impl_json_struct!(DramConfig {
    channels,
    banks_per_channel,
    row_hit_latency,
    row_miss_latency,
    channel_bandwidth,
    row_bytes,
});
impl_json_struct!(AimConfig {
    entries,
    ways,
    latency,
    entry_bytes
});
impl_json_struct!(MachineConfig {
    cores,
    l1,
    llc,
    noc,
    dram,
    aim,
    protocol,
    meta_placement,
    metadata_piggyback_bytes,
    signature_bytes_per_line,
    ipc_scale,
    granularity,
    arc_readonly_sharing,
    use_owned_state,
});

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: Bytes,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in cycles (tag+data, pipelined).
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of sets implied by capacity/ways and 64-byte lines.
    pub fn sets(&self) -> u64 {
        let lines = self.capacity.0 / crate::addr::LineGeometry::LINE_BYTES;
        let sets = lines / self.ways as u64;
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        sets
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.capacity.0 / crate::addr::LineGeometry::LINE_BYTES
    }
}

/// On-chip network parameters (2D mesh).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Per-hop latency (router traversal + link) in cycles.
    pub hop_latency: u64,
    /// Per-link bandwidth in bytes per cycle.
    pub link_bandwidth: f64,
    /// Flit size in bytes (traffic is accounted in flits of this size).
    pub flit_bytes: u64,
    /// Size of a control (request/inv/ack) message in bytes.
    pub ctrl_bytes: u64,
    /// Header bytes added to a data message (the payload is a line or
    /// a set of dirty words).
    pub data_header_bytes: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            hop_latency: 2,
            link_bandwidth: 32.0,
            flit_bytes: 16,
            ctrl_bytes: 8,
            data_header_bytes: 8,
        }
    }
}

/// DRAM / memory-controller parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer hit latency in cycles.
    pub row_hit_latency: u64,
    /// Row-buffer miss (activate+access) latency in cycles.
    pub row_miss_latency: u64,
    /// Per-channel bandwidth in bytes per cycle.
    pub channel_bandwidth: f64,
    /// Row-buffer size in bytes (consecutive accesses within this span
    /// count as row hits).
    pub row_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 8,
            row_hit_latency: 90,
            row_miss_latency: 160,
            channel_bandwidth: 16.0,
            row_bytes: 4096,
        }
    }
}

/// Access information memory (AIM) parameters — the on-chip metadata
/// cache introduced by CE+ and reused at the LLC side by ARC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AimConfig {
    /// Number of metadata entries (one per tracked line).
    pub entries: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles.
    pub latency: u64,
    /// Bytes occupied by one entry when it travels over the NoC or
    /// spills to DRAM (per-core read/write word masks, compressed).
    pub entry_bytes: u64,
}

impl Default for AimConfig {
    fn default() -> Self {
        AimConfig {
            // Scaled with the caches (see `paper_default`).
            entries: 8 * 1024,
            ways: 8,
            latency: 4,
            entry_bytes: 16,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (threads are pinned 1:1). Must be a positive
    /// even number or 1 so a near-square mesh exists.
    pub cores: usize,
    /// Private L1 data cache per core.
    pub l1: CacheGeometry,
    /// Shared LLC (total capacity across banks; one bank per core
    /// tile).
    pub llc: CacheGeometry,
    /// NoC parameters.
    pub noc: NocConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// AIM parameters (used by CE+ and ARC).
    pub aim: AimConfig,
    /// Protocol to simulate.
    pub protocol: ProtocolKind,
    /// Where the protocol's displaced/registered metadata lives (see
    /// [`MetaPlacement`]). `paper_default` and `with_protocol` pick
    /// the placement that recovers the published design; override it
    /// (via [`MachineConfig::with_meta_placement`]) for the placement
    /// sensitivity variants.
    pub meta_placement: MetaPlacement,
    /// Extra bytes piggybacked onto each coherence message by CE/CE+
    /// to carry access bits.
    pub metadata_piggyback_bytes: u64,
    /// Bytes per touched line in ARC's region-end access signature.
    pub signature_bytes_per_line: u64,
    /// Non-memory instructions retire one per cycle; each memory access
    /// additionally costs its latency. This scales the compute between
    /// memory events.
    pub ipc_scale: f64,
    /// Metadata granularity (see [`DetectionGranularity`]).
    pub granularity: DetectionGranularity,
    /// ARC only: classify lines that have never been written as
    /// read-only; read-only shared lines are exempt from
    /// self-invalidation at region boundaries (an extension evaluated
    /// by `paper ablate-readonly`; detection precision is unaffected —
    /// the differential tests prove it).
    pub arc_readonly_sharing: bool,
    /// MESI family only: enable the Owned (O) state — MOESI. A dirty
    /// line downgraded by a remote read stays dirty in the owner's
    /// cache (no LLC writeback) and is supplied cache-to-cache; the
    /// paper's "M(O)ESI-based coherence" phrasing covers both, and
    /// `paper ablate-moesi` quantifies the difference.
    pub use_owned_state: bool,
}

impl MachineConfig {
    /// The paper-style default configuration at a given core count and
    /// protocol.
    ///
    /// Cache capacities are scaled down ~4x from the hardware the
    /// paper simulates (32 KiB L1, 1 MiB/core LLC) because the
    /// synthetic traces are scaled down from full PARSEC runs by a
    /// larger factor; keeping capacity/working-set ratios comparable
    /// preserves the eviction behavior that drives each design's
    /// metadata costs (see DESIGN.md).
    pub fn paper_default(cores: usize, protocol: ProtocolKind) -> Self {
        MachineConfig {
            cores,
            l1: CacheGeometry {
                capacity: Bytes::kib(8),
                ways: 8,
                latency: 2,
            },
            llc: CacheGeometry {
                // ~256 KiB per core, banked; rounded up to keep the
                // set count a power of two.
                capacity: Bytes::kib(256 * (cores.max(1) as u64).next_power_of_two()),
                ways: 16,
                latency: 30,
            },
            noc: NocConfig::default(),
            dram: DramConfig::default(),
            aim: AimConfig::default(),
            protocol,
            meta_placement: protocol.default_meta_placement(),
            metadata_piggyback_bytes: 16,
            signature_bytes_per_line: 4,
            ipc_scale: 1.0,
            granularity: DetectionGranularity::Word,
            arc_readonly_sharing: false,
            use_owned_state: false,
        }
    }

    /// The word mask used for *metadata* purposes: the access's real
    /// words at word granularity, the whole line at line granularity.
    /// (Dirty-data tracking always uses the real mask.)
    #[inline]
    pub fn detect_mask(&self, mask: crate::addr::WordMask) -> crate::addr::WordMask {
        match self.granularity {
            DetectionGranularity::Word => mask,
            DetectionGranularity::Line => crate::addr::WordMask::FULL,
        }
    }

    /// Same configuration with a different protocol (for
    /// apples-to-apples comparisons). The metadata placement is reset
    /// to the new protocol's published default; apply
    /// [`MachineConfig::with_meta_placement`] afterwards to keep an
    /// override.
    pub fn with_protocol(&self, protocol: ProtocolKind) -> Self {
        let mut c = self.clone();
        c.protocol = protocol;
        c.meta_placement = protocol.default_meta_placement();
        c
    }

    /// Same configuration with a different metadata placement (for
    /// the placement variants: CE+/ideal, ARC/dram, ...).
    pub fn with_meta_placement(&self, placement: MetaPlacement) -> Self {
        let mut c = self.clone();
        c.meta_placement = placement;
        c
    }

    /// Same configuration with a different AIM entry count (for the
    /// AIM sensitivity sweep).
    pub fn with_aim_entries(&self, entries: u64) -> Self {
        let mut c = self.clone();
        c.aim.entries = entries;
        c
    }

    /// Same configuration with a different AIM access latency (for
    /// the AIM sensitivity sweep).
    pub fn with_aim_latency(&self, latency: u64) -> Self {
        let mut c = self.clone();
        c.aim.latency = latency;
        c
    }

    /// Validate internal consistency; returns an error message on the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be positive".into());
        }
        if !self
            .l1
            .capacity
            .0
            .is_multiple_of(self.l1.ways as u64 * crate::addr::LineGeometry::LINE_BYTES)
        {
            return Err("L1 capacity must be a multiple of ways*line".into());
        }
        let l1_sets =
            self.l1.capacity.0 / (self.l1.ways as u64 * crate::addr::LineGeometry::LINE_BYTES);
        if !l1_sets.is_power_of_two() {
            return Err("L1 set count must be a power of two".into());
        }
        let llc_sets =
            self.llc.capacity.0 / (self.llc.ways as u64 * crate::addr::LineGeometry::LINE_BYTES);
        if llc_sets == 0 || !llc_sets.is_power_of_two() {
            return Err("LLC set count must be a power of two".into());
        }
        if self.noc.link_bandwidth <= 0.0 || self.dram.channel_bandwidth <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if self.aim.entries == 0 || !self.aim.entries.is_power_of_two() {
            return Err("AIM entries must be a positive power of two".into());
        }
        if !self.aim.entries.is_multiple_of(self.aim.ways as u64) {
            return Err("AIM entries must be a multiple of ways".into());
        }
        match (self.protocol, self.meta_placement) {
            (ProtocolKind::MesiBaseline, MetaPlacement::None) => {}
            (ProtocolKind::MesiBaseline, p) => {
                return Err(format!(
                    "the MESI baseline keeps no metadata; placement '{p}' is meaningless"
                ));
            }
            (p, MetaPlacement::None) => {
                return Err(format!(
                    "detector '{p}' needs a metadata store; placement 'none' only fits MESI"
                ));
            }
            _ => {}
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_default(32, ProtocolKind::MesiBaseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        for cores in [1, 8, 16, 32, 64] {
            for p in ProtocolKind::ALL {
                let c = MachineConfig::paper_default(cores, p);
                assert!(c.validate().is_ok(), "cores={cores} proto={p}");
            }
        }
    }

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry {
            capacity: Bytes::kib(32),
            ways: 8,
            latency: 2,
        };
        assert_eq!(g.lines(), 512);
        assert_eq!(g.sets(), 64);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = MachineConfig {
            cores: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = MachineConfig::default();
        c.aim.entries = 3000; // not a power of two
        assert!(c.validate().is_err());

        let mut c = MachineConfig::default();
        c.noc.link_bandwidth = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_protocol_changes_only_protocol() {
        let base = MachineConfig::paper_default(16, ProtocolKind::MesiBaseline);
        let ce = base.with_protocol(ProtocolKind::Ce);
        assert_eq!(ce.protocol, ProtocolKind::Ce);
        assert_eq!(ce.cores, base.cores);
        assert_eq!(ce.l1, base.l1);
        // ... and tracks the protocol's published metadata placement.
        assert_eq!(ce.meta_placement, MetaPlacement::Dram);
    }

    #[test]
    fn default_placements_recover_the_paper_designs() {
        assert_eq!(
            ProtocolKind::MesiBaseline.default_meta_placement(),
            MetaPlacement::None
        );
        assert_eq!(
            ProtocolKind::Ce.default_meta_placement(),
            MetaPlacement::Dram
        );
        assert_eq!(
            ProtocolKind::CePlus.default_meta_placement(),
            MetaPlacement::Aim
        );
        assert_eq!(
            ProtocolKind::Arc.default_meta_placement(),
            MetaPlacement::Aim
        );
    }

    #[test]
    fn placement_overrides_validate() {
        // The two variants the layering makes runnable.
        let ideal = MachineConfig::paper_default(4, ProtocolKind::CePlus)
            .with_meta_placement(MetaPlacement::Ideal);
        assert!(ideal.validate().is_ok());
        let dram = MachineConfig::paper_default(4, ProtocolKind::Arc)
            .with_meta_placement(MetaPlacement::Dram);
        assert!(dram.validate().is_ok());
        // Nonsense combinations are rejected.
        let c = MachineConfig::paper_default(4, ProtocolKind::MesiBaseline)
            .with_meta_placement(MetaPlacement::Aim);
        assert!(c.validate().is_err());
        let c = MachineConfig::paper_default(4, ProtocolKind::Ce)
            .with_meta_placement(MetaPlacement::None);
        assert!(c.validate().is_err());
    }

    #[test]
    fn aim_knob_helpers_change_one_field() {
        let base = MachineConfig::paper_default(4, ProtocolKind::CePlus);
        let c = base.with_aim_entries(256).with_aim_latency(9);
        assert_eq!(c.aim.entries, 256);
        assert_eq!(c.aim.latency, 9);
        assert_eq!(c.aim.ways, base.aim.ways);
        assert_eq!(c.protocol, base.protocol);
    }

    #[test]
    fn protocol_names_match_paper() {
        assert_eq!(ProtocolKind::MesiBaseline.name(), "MESI");
        assert_eq!(ProtocolKind::Ce.name(), "CE");
        assert_eq!(ProtocolKind::CePlus.name(), "CE+");
        assert_eq!(ProtocolKind::Arc.name(), "ARC");
        assert_eq!(ProtocolKind::DETECTORS.len(), 3);
    }
}
