//! ASCII table rendering for the benchmark harness.
//!
//! The `paper` binary prints every reconstructed table/figure as an
//! aligned text table; this module is the single implementation so the
//! output format stays consistent across experiments.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row. Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also what `Display` produces).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(&format!(" {cell:<width$} "));
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Render a normalized-value horizontal bar (used to sketch figures in
/// terminal output). `value` of 1.0 produces `width` characters.
pub fn bar(value: f64, width: usize) -> String {
    let n = (value * width as f64).round().max(0.0) as usize;
    let n = n.min(width * 4); // clamp runaway values to 4x scale
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        // Header and rows share column widths: every line containing '|'
        // has it at the same byte offset.
        let offs: Vec<usize> = s
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.find('|').unwrap())
            .collect();
        assert!(offs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 10).len(), 10);
        assert_eq!(bar(0.5, 10).len(), 5);
        assert_eq!(bar(0.0, 10).len(), 0);
        // clamped at 4x
        assert_eq!(bar(100.0, 10).len(), 40);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("e", &["h"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('h'));
    }
}
