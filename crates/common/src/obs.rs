//! Structured simulation observability: event tracing and interval
//! metrics.
//!
//! Three gated layers, all hermetic and std-only:
//!
//! 1. **Event tracing** — a bounded ring-buffer [`Tracer`] records
//!    typed [`SimEvent`]s (region boundaries, coherence messages,
//!    cache evictions, AIM activity, DRAM accesses, self-invalidation,
//!    conflict exceptions) with cycle timestamps and
//!    core/region/address provenance, filterable by core, address
//!    range, and event class. The finished [`TraceLog`] exports as
//!    NDJSON or as Chrome `trace_event` JSON (loadable in
//!    `chrome://tracing` / Perfetto).
//! 2. **Interval metrics** — a [`MetricsSampler`] turns cumulative
//!    gauge snapshots ([`GaugeSnapshot`]) into a per-interval
//!    time-series ([`MetricsTimeline`]): NoC link utilization and
//!    queueing, AIM hit rate, DRAM bandwidth and queueing, exception
//!    counts.
//! 3. **Configuration** — [`ObsConfig`] gates both layers. The default
//!    is fully off; a simulation run with observability off must be
//!    *byte-identical* to one that never linked this module (the
//!    zero-overhead contract — hooks are `Option` checks only, and no
//!    event is even constructed unless a tracer wants its class).
//!
//! Everything here is deterministic: the same simulated execution
//! produces the same events and the same timeline, byte for byte.

use crate::json::{self, JsonValue, ToJson};
use crate::{impl_json_struct, impl_json_unit_enum};
use std::collections::VecDeque;

/// Default ring-buffer capacity (events kept) when not specified.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A shared handle to one run's tracer. The simulator hands clones to
/// the NoC, the DRAM controller, and the engine substrate so each can
/// emit events into the same ring; a run is single-threaded, so
/// `Rc<RefCell<_>>` suffices and keeps the disabled path to a single
/// `Option` check.
pub type SharedTracer = std::rc::Rc<std::cell::RefCell<Tracer>>;

/// Wrap a tracer for sharing across simulator components.
pub fn shared_tracer(t: Tracer) -> SharedTracer {
    std::rc::Rc::new(std::cell::RefCell::new(t))
}

// ---------------------------------------------------------------------------
// Event taxonomy
// ---------------------------------------------------------------------------

/// Coarse event classes, the unit of filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// Region begin/end.
    Region,
    /// Committed program memory accesses.
    Access,
    /// Coherence / NoC messages.
    Coherence,
    /// L1 and LLC evictions.
    Cache,
    /// AIM hits, misses, spills.
    Aim,
    /// Off-chip DRAM accesses.
    Dram,
    /// ARC self-invalidation at region boundaries.
    SelfInv,
    /// Conflict exceptions delivered to the program.
    Conflict,
}

impl_json_unit_enum!(EventClass {
    Region,
    Access,
    Coherence,
    Cache,
    Aim,
    Dram,
    SelfInv,
    Conflict,
});

impl EventClass {
    /// All classes, display order.
    pub const ALL: [EventClass; 8] = [
        EventClass::Region,
        EventClass::Access,
        EventClass::Coherence,
        EventClass::Cache,
        EventClass::Aim,
        EventClass::Dram,
        EventClass::SelfInv,
        EventClass::Conflict,
    ];

    /// Short category name (used as `cat` in Chrome traces).
    pub fn name(self) -> &'static str {
        match self {
            EventClass::Region => "region",
            EventClass::Access => "access",
            EventClass::Coherence => "coh",
            EventClass::Cache => "cache",
            EventClass::Aim => "aim",
            EventClass::Dram => "dram",
            EventClass::SelfInv => "selfinv",
            EventClass::Conflict => "conflict",
        }
    }
}

/// What happened. Addresses are byte addresses; `line` fields are
/// line indices (64-byte lines); `word` fields are word indices
/// (8-byte words).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A core started a region.
    RegionBegin,
    /// A core finished a region; `cost` is the boundary work in cycles.
    RegionEnd {
        /// Cycles the boundary work took.
        cost: u64,
    },
    /// A committed program load/store.
    MemAccess {
        /// Byte address.
        addr: u64,
        /// True for stores.
        write: bool,
        /// Conflict exceptions this access raised.
        exceptions: u64,
    },
    /// One routed NoC message.
    CohMsg {
        /// Message class short name (`req`, `data`, `inv`, ...).
        class: String,
        /// Source tile.
        src: u64,
        /// Destination tile.
        dst: u64,
        /// Flit-padded wire bytes.
        bytes: u64,
    },
    /// A private-cache line was evicted.
    L1Evict {
        /// Evicted line index.
        line: u64,
        /// True if dirty data was written back.
        dirty: bool,
    },
    /// An LLC line was evicted.
    LlcEvict {
        /// Evicted line index.
        line: u64,
        /// True if the victim required a DRAM writeback.
        dirty: bool,
    },
    /// An AIM lookup found the entry resident.
    AimHit {
        /// Looked-up line index.
        line: u64,
    },
    /// An AIM lookup missed.
    AimMiss {
        /// Looked-up line index.
        line: u64,
        /// True if the entry was refilled from the DRAM table.
        refilled: bool,
    },
    /// An AIM victim with live metadata spilled to the DRAM table.
    AimSpill {
        /// The line whose insertion caused the spill.
        line: u64,
    },
    /// One DRAM access.
    DramAccess {
        /// Access kind short name (`data-rd`, `meta-wr`, ...).
        kind: String,
        /// Target line index.
        line: u64,
        /// Bytes moved.
        bytes: u64,
    },
    /// A core self-invalidated shared lines at a region boundary.
    SelfInvalidate {
        /// Lines dropped.
        lines: u64,
    },
    /// A conflict exception was delivered.
    Conflict {
        /// Conflicting word index.
        word: u64,
        /// The other side's core.
        other_core: u64,
        /// Access kinds, `<mine>/<other>` (e.g. `W/R`).
        kinds: String,
    },
}

impl EventKind {
    /// The class this kind belongs to.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::RegionBegin | EventKind::RegionEnd { .. } => EventClass::Region,
            EventKind::MemAccess { .. } => EventClass::Access,
            EventKind::CohMsg { .. } => EventClass::Coherence,
            EventKind::L1Evict { .. } | EventKind::LlcEvict { .. } => EventClass::Cache,
            EventKind::AimHit { .. } | EventKind::AimMiss { .. } | EventKind::AimSpill { .. } => {
                EventClass::Aim
            }
            EventKind::DramAccess { .. } => EventClass::Dram,
            EventKind::SelfInvalidate { .. } => EventClass::SelfInv,
            EventKind::Conflict { .. } => EventClass::Conflict,
        }
    }

    /// Export name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RegionBegin => "region_begin",
            EventKind::RegionEnd { .. } => "region_end",
            EventKind::MemAccess { .. } => "mem_access",
            EventKind::CohMsg { .. } => "coh_msg",
            EventKind::L1Evict { .. } => "l1_evict",
            EventKind::LlcEvict { .. } => "llc_evict",
            EventKind::AimHit { .. } => "aim_hit",
            EventKind::AimMiss { .. } => "aim_miss",
            EventKind::AimSpill { .. } => "aim_spill",
            EventKind::DramAccess { .. } => "dram_access",
            EventKind::SelfInvalidate { .. } => "self_invalidate",
            EventKind::Conflict { .. } => "conflict",
        }
    }

    /// Byte-address span `[lo, hi)` this event touches, if it has one
    /// (used by address-range filters).
    pub fn addr_span(&self) -> Option<(u64, u64)> {
        let line_span = |l: u64| Some((l * 64, l * 64 + 64));
        match self {
            EventKind::MemAccess { addr, .. } => Some((*addr, addr + 8)),
            EventKind::L1Evict { line, .. }
            | EventKind::LlcEvict { line, .. }
            | EventKind::AimHit { line }
            | EventKind::AimMiss { line, .. }
            | EventKind::AimSpill { line }
            | EventKind::DramAccess { line, .. } => line_span(*line),
            EventKind::Conflict { word, .. } => Some((word * 8, word * 8 + 8)),
            _ => None,
        }
    }

    /// Kind-specific payload fields for export.
    fn args(&self) -> Vec<(String, JsonValue)> {
        fn kv<T: ToJson>(k: &str, v: &T) -> (String, JsonValue) {
            (k.to_string(), v.to_json())
        }
        match self {
            EventKind::RegionBegin => vec![],
            EventKind::RegionEnd { cost } => vec![kv("cost", cost)],
            EventKind::MemAccess {
                addr,
                write,
                exceptions,
            } => vec![
                kv("addr", addr),
                kv("write", write),
                kv("exceptions", exceptions),
            ],
            EventKind::CohMsg {
                class,
                src,
                dst,
                bytes,
            } => vec![
                kv("class", class),
                kv("src", src),
                kv("dst", dst),
                kv("bytes", bytes),
            ],
            EventKind::L1Evict { line, dirty } | EventKind::LlcEvict { line, dirty } => {
                vec![kv("line", line), kv("dirty", dirty)]
            }
            EventKind::AimHit { line } | EventKind::AimSpill { line } => vec![kv("line", line)],
            EventKind::AimMiss { line, refilled } => {
                vec![kv("line", line), kv("refilled", refilled)]
            }
            EventKind::DramAccess { kind, line, bytes } => {
                vec![kv("kind", kind), kv("line", line), kv("bytes", bytes)]
            }
            EventKind::SelfInvalidate { lines } => vec![kv("lines", lines)],
            EventKind::Conflict {
                word,
                other_core,
                kinds,
            } => vec![
                kv("word", word),
                kv("other_core", other_core),
                kv("kinds", kinds),
            ],
        }
    }

    fn from_name_and_fields(name: &str, v: &JsonValue) -> Result<EventKind, String> {
        fn f<T: json::FromJson>(v: &JsonValue, k: &str) -> Result<T, String> {
            T::from_json(v.field(k)?)
        }
        Ok(match name {
            "region_begin" => EventKind::RegionBegin,
            "region_end" => EventKind::RegionEnd {
                cost: f(v, "cost")?,
            },
            "mem_access" => EventKind::MemAccess {
                addr: f(v, "addr")?,
                write: f(v, "write")?,
                exceptions: f(v, "exceptions")?,
            },
            "coh_msg" => EventKind::CohMsg {
                class: f(v, "class")?,
                src: f(v, "src")?,
                dst: f(v, "dst")?,
                bytes: f(v, "bytes")?,
            },
            "l1_evict" => EventKind::L1Evict {
                line: f(v, "line")?,
                dirty: f(v, "dirty")?,
            },
            "llc_evict" => EventKind::LlcEvict {
                line: f(v, "line")?,
                dirty: f(v, "dirty")?,
            },
            "aim_hit" => EventKind::AimHit {
                line: f(v, "line")?,
            },
            "aim_miss" => EventKind::AimMiss {
                line: f(v, "line")?,
                refilled: f(v, "refilled")?,
            },
            "aim_spill" => EventKind::AimSpill {
                line: f(v, "line")?,
            },
            "dram_access" => EventKind::DramAccess {
                kind: f(v, "kind")?,
                line: f(v, "line")?,
                bytes: f(v, "bytes")?,
            },
            "self_invalidate" => EventKind::SelfInvalidate {
                lines: f(v, "lines")?,
            },
            "conflict" => EventKind::Conflict {
                word: f(v, "word")?,
                other_core: f(v, "other_core")?,
                kinds: f(v, "kinds")?,
            },
            other => return Err(format!("unknown event kind '{other}'")),
        })
    }
}

/// One traced event: a timestamp, provenance, and what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct SimEvent {
    /// Simulated cycle the event occurred at.
    pub cycle: u64,
    /// Originating core, if the event has one.
    pub core: Option<u16>,
    /// The originating core's region at the time, if known.
    pub region: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl ToJson for SimEvent {
    fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("cycle".into(), self.cycle.to_json()),
            ("core".into(), self.core.to_json()),
            ("region".into(), self.region.to_json()),
            ("event".into(), JsonValue::Str(self.kind.name().into())),
        ];
        fields.extend(self.kind.args());
        JsonValue::Object(fields)
    }
}

impl json::FromJson for SimEvent {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let name = String::from_json(v.field("event")?)?;
        Ok(SimEvent {
            cycle: json::FromJson::from_json(v.field("cycle")?)?,
            core: json::FromJson::from_json(v.field("core")?)?,
            region: json::FromJson::from_json(v.field("region")?)?,
            kind: EventKind::from_name_and_fields(&name, v)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Tracer: filter + bounded ring buffer
// ---------------------------------------------------------------------------

/// Which events a tracer keeps. `None` dimensions accept everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceFilter {
    /// Keep only events from these cores (events without a core
    /// provenance are rejected when set).
    pub cores: Option<Vec<u16>>,
    /// Keep only events whose address span overlaps `[lo, hi)` (events
    /// without an address are rejected when set).
    pub addr_range: Option<(u64, u64)>,
    /// Keep only these event classes.
    pub classes: Option<Vec<EventClass>>,
}

impl TraceFilter {
    /// Would an event of class `c` pass the class dimension? Cheap
    /// pre-check so call sites can skip building rejected events.
    pub fn wants_class(&self, c: EventClass) -> bool {
        self.classes.as_ref().map_or(true, |v| v.contains(&c))
    }

    /// Full filter decision for a built event.
    pub fn accepts(&self, ev: &SimEvent) -> bool {
        if !self.wants_class(ev.kind.class()) {
            return false;
        }
        if let Some(cores) = &self.cores {
            match ev.core {
                Some(c) if cores.contains(&c) => {}
                _ => return false,
            }
        }
        if let Some((lo, hi)) = self.addr_range {
            match ev.kind.addr_span() {
                Some((a, b)) if a < hi && b > lo => {}
                _ => return false,
            }
        }
        true
    }
}

/// Tracer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Ring-buffer capacity: the newest `capacity` accepted events are
    /// kept; older ones are dropped (and counted).
    pub capacity: usize,
    /// Event filter.
    pub filter: TraceFilter,
    /// Also print each accepted event to stderr as it happens (the
    /// behavior of the legacy `RCE_TRACE_WORD` hook).
    pub echo: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
            filter: TraceFilter::default(),
            echo: false,
        }
    }
}

impl TraceConfig {
    /// The `RCE_TRACE_WORD=<word-index>` compatibility alias: echo
    /// every access to (and conflict on) one word.
    pub fn word_alias(word: u64) -> TraceConfig {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
            filter: TraceFilter {
                cores: None,
                addr_range: Some((word * 8, word * 8 + 8)),
                classes: Some(vec![EventClass::Access, EventClass::Conflict]),
            },
            echo: true,
        }
    }
}

/// A bounded ring buffer of accepted events. When full, the *oldest*
/// event is dropped and `drops` is incremented — overflow is always
/// surfaced, never silent.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    filter: TraceFilter,
    echo: bool,
    events: VecDeque<SimEvent>,
    emitted: u64,
    drops: u64,
}

impl Tracer {
    /// Build from configuration (capacity is clamped to at least 1).
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            capacity: cfg.capacity.max(1),
            filter: cfg.filter,
            echo: cfg.echo,
            events: VecDeque::new(),
            emitted: 0,
            drops: 0,
        }
    }

    /// Cheap class pre-check: should the call site bother building an
    /// event of this class?
    #[inline]
    pub fn wants(&self, class: EventClass) -> bool {
        self.filter.wants_class(class)
    }

    /// Offer an event; it is kept if the filter accepts it.
    pub fn emit(&mut self, ev: SimEvent) {
        if !self.filter.accepts(&ev) {
            return;
        }
        self.emitted += 1;
        if self.echo {
            eprintln!("TRACE {}", json::to_string(&ev));
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.drops += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was kept.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Accepted events that fell off the ring.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// The retained events, oldest first (the forensics layer walks
    /// these backward to build per-conflict recent-event windows).
    pub fn events(&self) -> std::collections::vec_deque::Iter<'_, SimEvent> {
        self.events.iter()
    }

    /// Total events accepted by the filter (kept + dropped).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Drain into an exportable log (the tracer is left empty but
    /// keeps filtering, so shared holders stay valid).
    pub fn take_log(&mut self) -> TraceLog {
        TraceLog {
            capacity: self.capacity as u64,
            emitted: self.emitted,
            drops: self.drops,
            events: std::mem::take(&mut self.events).into(),
        }
    }
}

/// The finished trace: everything the ring retained, plus overflow
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Ring capacity the trace ran with.
    pub capacity: u64,
    /// Events accepted by the filter (kept + dropped).
    pub emitted: u64,
    /// Accepted events dropped to overflow (oldest-first).
    pub drops: u64,
    /// Retained events, oldest first.
    pub events: Vec<SimEvent>,
}

impl_json_struct!(TraceLog {
    capacity,
    emitted,
    drops,
    events,
});

impl TraceLog {
    /// Newline-delimited JSON: one event object per line.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&json::to_string(ev));
            out.push('\n');
        }
        out
    }

    /// One-line NDJSON trailer summarizing ring accounting, so a
    /// consumer of the `.ndjson` file can detect overflow truncation
    /// without the surrounding report. Appended by `paper trace`, not
    /// part of [`TraceLog::to_ndjson`] (whose lines are all events).
    pub fn ndjson_footer(&self) -> String {
        let mut s = json::to_string(&JsonValue::Object(vec![
            ("event".into(), JsonValue::Str("trace_summary".into())),
            ("capacity".into(), self.capacity.to_json()),
            ("emitted".into(), self.emitted.to_json()),
            ("drops".into(), self.drops.to_json()),
        ]));
        s.push('\n');
        s
    }

    /// Chrome `trace_event` JSON (object format), loadable in
    /// `chrome://tracing` and Perfetto. Regions map to duration
    /// begin/end pairs on the core's track; everything else maps to
    /// thread-scoped instant events. Timestamps are simulated cycles.
    pub fn to_chrome_trace(&self) -> JsonValue {
        let mut events = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let tid = ev.core.map(u64::from).unwrap_or(999_999);
            let mut fields: Vec<(String, JsonValue)> = Vec::with_capacity(8);
            let (name, ph) = match &ev.kind {
                EventKind::RegionBegin => ("region".to_string(), "B"),
                EventKind::RegionEnd { .. } => ("region".to_string(), "E"),
                k => (k.name().to_string(), "i"),
            };
            fields.push(("name".into(), JsonValue::Str(name)));
            fields.push(("cat".into(), JsonValue::Str(ev.kind.class().name().into())));
            fields.push(("ph".into(), JsonValue::Str(ph.into())));
            if ph == "i" {
                fields.push(("s".into(), JsonValue::Str("t".into())));
            }
            fields.push(("ts".into(), ev.cycle.to_json()));
            fields.push(("pid".into(), 0u64.to_json()));
            fields.push(("tid".into(), tid.to_json()));
            let mut args = ev.kind.args();
            if let Some(r) = ev.region {
                args.push(("region".into(), r.to_json()));
            }
            fields.push(("args".into(), JsonValue::Object(args)));
            events.push(JsonValue::Object(fields));
        }
        JsonValue::Object(vec![
            ("traceEvents".into(), JsonValue::Array(events)),
            ("displayTimeUnit".into(), JsonValue::Str("ns".into())),
            (
                "otherData".into(),
                JsonValue::Object(vec![
                    ("emitted".into(), self.emitted.to_json()),
                    ("drops".into(), self.drops.to_json()),
                    ("capacity".into(), self.capacity.to_json()),
                ]),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Interval metrics
// ---------------------------------------------------------------------------

/// Cumulative gauge values read from the simulator at one instant.
/// The sampler differences consecutive snapshots into intervals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugeSnapshot {
    /// Total NoC messages routed.
    pub noc_msgs: u64,
    /// Total NoC wire bytes.
    pub noc_bytes: u64,
    /// Total NoC queueing delay (cycles).
    pub noc_queue_delay: u64,
    /// Cumulative busy cycles per NoC link.
    pub link_busy: Vec<u64>,
    /// Total DRAM accesses.
    pub dram_accesses: u64,
    /// Total DRAM bytes.
    pub dram_bytes: u64,
    /// Total DRAM queueing delay (cycles).
    pub dram_queue_delay: u64,
    /// Total AIM hits.
    pub aim_hits: u64,
    /// Total AIM misses.
    pub aim_misses: u64,
    /// Total LLC misses.
    pub llc_misses: u64,
    /// Total L1 evictions.
    pub l1_evictions: u64,
    /// Conflict exceptions delivered so far.
    pub exceptions: u64,
}

/// One interval of the metrics timeline. Counts are deltas within the
/// interval; rates are normalized by the interval length.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// Cycle the interval ends at.
    pub cycle: u64,
    /// NoC messages routed this interval.
    pub noc_msgs: u64,
    /// NoC wire bytes this interval.
    pub noc_bytes: u64,
    /// NoC queueing delay accrued this interval (cycles).
    pub noc_queue_delay: u64,
    /// Mean per-link utilization over the interval, all links.
    pub noc_mean_link_util: f64,
    /// Utilization of the busiest link over the interval (clamped to 1).
    pub noc_peak_link_util: f64,
    /// AIM lookups this interval.
    pub aim_lookups: u64,
    /// AIM hit rate over this interval's lookups (0 when idle).
    pub aim_hit_rate: f64,
    /// DRAM accesses this interval.
    pub dram_accesses: u64,
    /// DRAM bytes this interval.
    pub dram_bytes: u64,
    /// DRAM bandwidth, bytes per cycle over the interval.
    pub dram_bandwidth: f64,
    /// DRAM queueing delay accrued this interval (cycles).
    pub dram_queue_delay: u64,
    /// LLC misses this interval.
    pub llc_misses: u64,
    /// L1 evictions this interval.
    pub l1_evictions: u64,
    /// Conflict exceptions delivered this interval.
    pub exceptions: u64,
}

impl_json_struct!(IntervalSample {
    cycle,
    noc_msgs,
    noc_bytes,
    noc_queue_delay,
    noc_mean_link_util,
    noc_peak_link_util,
    aim_lookups,
    aim_hit_rate,
    dram_accesses,
    dram_bytes,
    dram_bandwidth,
    dram_queue_delay,
    llc_misses,
    l1_evictions,
    exceptions,
});

/// The full per-interval time-series of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsTimeline {
    /// Nominal sampling interval in cycles (the trailing sample may
    /// cover a shorter span).
    pub interval: u64,
    /// Samples in time order.
    pub samples: Vec<IntervalSample>,
}

impl_json_struct!(MetricsTimeline { interval, samples });

/// Differences cumulative [`GaugeSnapshot`]s into a
/// [`MetricsTimeline`] every `interval` cycles.
///
/// The simulator's clock advances in jumps, so a snapshot is taken the
/// first time the clock is observed at or past a boundary; the whole
/// delta since the previous snapshot is attributed to that boundary's
/// interval (later boundaries crossed in the same jump record idle
/// samples). Utilizations are clamped to 1.
#[derive(Debug)]
pub struct MetricsSampler {
    interval: u64,
    next_at: u64,
    last_at: u64,
    prev: GaugeSnapshot,
    samples: Vec<IntervalSample>,
}

impl MetricsSampler {
    /// Build a sampler with the given interval (clamped to at least 1).
    pub fn new(interval: u64) -> Self {
        let interval = interval.max(1);
        MetricsSampler {
            interval,
            next_at: interval,
            last_at: 0,
            prev: GaugeSnapshot::default(),
            samples: Vec::new(),
        }
    }

    /// True if the clock has reached the next sample boundary — check
    /// this before paying for a [`GaugeSnapshot`].
    #[inline]
    pub fn due(&self, now: u64) -> bool {
        now >= self.next_at
    }

    /// Record a snapshot for every boundary at or before `now`.
    pub fn tick(&mut self, now: u64, snap: GaugeSnapshot) {
        if now < self.next_at {
            return;
        }
        let mut first = true;
        while self.next_at <= now {
            let cycle = self.next_at;
            if first {
                self.push(cycle, &snap);
                first = false;
            } else {
                self.push_idle(cycle);
            }
            self.next_at += self.interval;
        }
        self.prev = snap;
    }

    /// Close the timeline at the end of the run, capturing the final
    /// partial interval if anything happened after the last boundary.
    pub fn finish(mut self, end: u64, snap: GaugeSnapshot) -> MetricsTimeline {
        if end > self.last_at {
            self.push(end, &snap);
        }
        MetricsTimeline {
            interval: self.interval,
            samples: self.samples,
        }
    }

    fn push(&mut self, cycle: u64, snap: &GaugeSnapshot) {
        let span = (cycle - self.last_at).max(1);
        let d = |now: u64, then: u64| now.saturating_sub(then);
        let links = snap.link_busy.len().max(1) as f64;
        let mut busy_total = 0u64;
        let mut busy_peak = 0u64;
        for (i, &b) in snap.link_busy.iter().enumerate() {
            let prev = self.prev.link_busy.get(i).copied().unwrap_or(0);
            let delta = d(b, prev);
            busy_total += delta;
            busy_peak = busy_peak.max(delta);
        }
        let aim_lookups =
            d(snap.aim_hits, self.prev.aim_hits) + d(snap.aim_misses, self.prev.aim_misses);
        let aim_hits = d(snap.aim_hits, self.prev.aim_hits);
        let dram_bytes = d(snap.dram_bytes, self.prev.dram_bytes);
        self.samples.push(IntervalSample {
            cycle,
            noc_msgs: d(snap.noc_msgs, self.prev.noc_msgs),
            noc_bytes: d(snap.noc_bytes, self.prev.noc_bytes),
            noc_queue_delay: d(snap.noc_queue_delay, self.prev.noc_queue_delay),
            noc_mean_link_util: (busy_total as f64 / links / span as f64).min(1.0),
            noc_peak_link_util: (busy_peak as f64 / span as f64).min(1.0),
            aim_lookups,
            aim_hit_rate: if aim_lookups == 0 {
                0.0
            } else {
                aim_hits as f64 / aim_lookups as f64
            },
            dram_accesses: d(snap.dram_accesses, self.prev.dram_accesses),
            dram_bytes,
            dram_bandwidth: dram_bytes as f64 / span as f64,
            dram_queue_delay: d(snap.dram_queue_delay, self.prev.dram_queue_delay),
            llc_misses: d(snap.llc_misses, self.prev.llc_misses),
            l1_evictions: d(snap.l1_evictions, self.prev.l1_evictions),
            exceptions: d(snap.exceptions, self.prev.exceptions),
        });
        self.last_at = cycle;
    }

    fn push_idle(&mut self, cycle: u64) {
        self.samples.push(IntervalSample {
            cycle,
            noc_msgs: 0,
            noc_bytes: 0,
            noc_queue_delay: 0,
            noc_mean_link_util: 0.0,
            noc_peak_link_util: 0.0,
            aim_lookups: 0,
            aim_hit_rate: 0.0,
            dram_accesses: 0,
            dram_bytes: 0,
            dram_bandwidth: 0.0,
            dram_queue_delay: 0,
            llc_misses: 0,
            l1_evictions: 0,
            exceptions: 0,
        });
        self.last_at = cycle;
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Conflict-forensics capture configuration. The collector itself
/// lives in `rce_core::forensics`; this gate lives here so `ObsConfig`
/// stays the single switchboard for every observability layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsConfig {
    /// Recent trace events retained per provenance record (the window
    /// of events touching the conflicting line, newest last).
    pub recent_window: usize,
    /// Full provenance records retained per run; later deliveries
    /// still feed the heatmaps but are counted as truncated.
    pub max_records: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        ForensicsConfig {
            recent_window: 8,
            max_records: 1024,
        }
    }
}

/// Gate for the whole subsystem. The default is fully off; a run with
/// the default config is byte-identical to one before this module
/// existed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsConfig {
    /// Event tracing, if enabled.
    pub trace: Option<TraceConfig>,
    /// Metrics sampling interval in cycles, if enabled.
    pub sample_interval: Option<u64>,
    /// Conflict forensics (provenance records + heatmaps), if enabled.
    pub forensics: Option<ForensicsConfig>,
}

impl ObsConfig {
    /// True if any layer is on.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some() || self.sample_interval.is_some() || self.forensics.is_some()
    }

    /// Everything on: unfiltered tracing at the default capacity,
    /// sampling at `interval`, and default-bounded forensics.
    pub fn full(interval: u64) -> ObsConfig {
        ObsConfig {
            trace: Some(TraceConfig::default()),
            sample_interval: Some(interval),
            forensics: Some(ForensicsConfig::default()),
        }
    }

    /// Forensics only: provenance records and heatmaps without an
    /// exported trace or timeline (what `paper explain` runs with).
    pub fn forensics_only() -> ObsConfig {
        ObsConfig {
            forensics: Some(ForensicsConfig::default()),
            ..ObsConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, core: u16, kind: EventKind) -> SimEvent {
        SimEvent {
            cycle,
            core: Some(core),
            region: Some(1),
            kind,
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_is_surfaced() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 4,
            ..TraceConfig::default()
        });
        for i in 0..10u64 {
            t.emit(ev(i, 0, EventKind::AimHit { line: i }));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.drops(), 6, "drops must be counted, never silent");
        assert_eq!(t.emitted(), 10);
        let log = t.take_log();
        assert_eq!(log.drops, 6);
        assert_eq!(log.emitted, 10);
        // The newest events are the ones retained.
        let cycles: Vec<u64> = log.events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        // And the accounting survives export.
        let chrome = log.to_chrome_trace();
        assert_eq!(chrome["otherData"]["drops"], JsonValue::UInt(6));
    }

    #[test]
    fn filters_by_core_class_and_addr() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 64,
            filter: TraceFilter {
                cores: Some(vec![1]),
                addr_range: Some((64, 128)), // line 1 only
                classes: Some(vec![EventClass::Aim]),
            },
            echo: false,
        });
        t.emit(ev(0, 1, EventKind::AimHit { line: 1 })); // kept
        t.emit(ev(1, 0, EventKind::AimHit { line: 1 })); // wrong core
        t.emit(ev(2, 1, EventKind::AimHit { line: 9 })); // wrong addr
        t.emit(ev(
            3,
            1,
            EventKind::L1Evict {
                line: 1,
                dirty: false,
            },
        )); // wrong class
        assert_eq!(t.len(), 1);
        assert_eq!(t.emitted(), 1, "filtered events are not 'accepted'");
        assert_eq!(t.drops(), 0);
    }

    #[test]
    fn word_alias_matches_only_that_word() {
        let cfg = TraceConfig::word_alias(100); // bytes [800, 808)
        assert!(cfg.echo);
        let f = &cfg.filter;
        let hit = ev(
            0,
            0,
            EventKind::MemAccess {
                addr: 800,
                write: true,
                exceptions: 0,
            },
        );
        let miss = ev(
            0,
            0,
            EventKind::MemAccess {
                addr: 808,
                write: true,
                exceptions: 0,
            },
        );
        let other_class = ev(0, 0, EventKind::RegionBegin);
        assert!(f.accepts(&hit));
        assert!(!f.accepts(&miss));
        assert!(!f.accepts(&other_class));
    }

    #[test]
    fn ndjson_lines_parse_back() {
        let mut t = Tracer::new(TraceConfig::default());
        t.emit(ev(5, 2, EventKind::RegionBegin));
        t.emit(ev(
            9,
            2,
            EventKind::Conflict {
                word: 77,
                other_core: 3,
                kinds: "W/R".into(),
            },
        ));
        let log = t.take_log();
        let nd = log.to_ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = JsonValue::parse(line).expect("NDJSON line must parse");
            assert!(v.get("cycle").is_some());
            assert!(v.get("event").is_some());
        }
        // Full struct round-trip, too.
        let back: TraceLog = json::from_str(&json::to_string(&log)).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn chrome_trace_shape() {
        let mut t = Tracer::new(TraceConfig::default());
        t.emit(ev(0, 1, EventKind::RegionBegin));
        t.emit(ev(
            4,
            1,
            EventKind::CohMsg {
                class: "data".into(),
                src: 0,
                dst: 3,
                bytes: 80,
            },
        ));
        t.emit(ev(10, 1, EventKind::RegionEnd { cost: 6 }));
        let log = t.take_log();
        let v = log.to_chrome_trace();
        let evs = v["traceEvents"].as_array().unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0]["ph"], JsonValue::Str("B".into()));
        assert_eq!(evs[1]["ph"], JsonValue::Str("i".into()));
        assert_eq!(evs[2]["ph"], JsonValue::Str("E".into()));
        assert_eq!(evs[0]["tid"], JsonValue::UInt(1));
        assert_eq!(evs[1]["args"]["bytes"], JsonValue::UInt(80));
        // The whole trace must re-parse from its serialized text.
        let text = json::to_string_pretty(&v);
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    fn snap(msgs: u64, bytes: u64, busy: Vec<u64>, hits: u64, misses: u64) -> GaugeSnapshot {
        GaugeSnapshot {
            noc_msgs: msgs,
            noc_bytes: bytes,
            link_busy: busy,
            aim_hits: hits,
            aim_misses: misses,
            ..GaugeSnapshot::default()
        }
    }

    #[test]
    fn sampler_differences_snapshots() {
        let mut s = MetricsSampler::new(100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.tick(100, snap(10, 640, vec![50, 0], 8, 2));
        s.tick(230, snap(30, 1920, vec![90, 60], 10, 10));
        let tl = s.finish(260, snap(31, 1984, vec![92, 60], 10, 10));
        // Boundaries: 100, 200, then the trailing partial at 260.
        assert_eq!(tl.interval, 100);
        let c: Vec<u64> = tl.samples.iter().map(|x| x.cycle).collect();
        assert_eq!(c, vec![100, 200, 260]);
        assert_eq!(tl.samples[0].noc_msgs, 10);
        assert!((tl.samples[0].noc_peak_link_util - 0.5).abs() < 1e-12);
        assert!((tl.samples[0].aim_hit_rate - 0.8).abs() < 1e-12);
        assert_eq!(tl.samples[1].noc_msgs, 20);
        assert_eq!(tl.samples[1].noc_bytes, 1280);
        // Interval 2's AIM lookups: (10-8) hits + (10-2) misses.
        assert_eq!(tl.samples[1].aim_lookups, 10);
        assert!((tl.samples[1].aim_hit_rate - 0.2).abs() < 1e-12);
        // Trailing partial interval covers 60 cycles.
        assert_eq!(tl.samples[2].noc_msgs, 1);
        assert!((tl.samples[2].noc_peak_link_util - 2.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_emits_idle_intervals_for_skipped_boundaries() {
        let mut s = MetricsSampler::new(10);
        s.tick(35, snap(5, 320, vec![7], 0, 0));
        let tl = s.finish(35, snap(5, 320, vec![7], 0, 0));
        let c: Vec<u64> = tl.samples.iter().map(|x| x.cycle).collect();
        assert_eq!(c, vec![10, 20, 30, 35], "trailing partial interval at end");
        assert_eq!(tl.samples[0].noc_msgs, 5, "delta lands on first boundary");
        assert_eq!(tl.samples[1].noc_msgs, 0);
        assert_eq!(tl.samples[2].noc_msgs, 0);
        assert_eq!(tl.samples[3].noc_msgs, 0);
    }

    #[test]
    fn sampler_output_is_deterministic() {
        let run = || {
            let mut s = MetricsSampler::new(64);
            for i in 1..=20u64 {
                s.tick(i * 40, snap(i * 3, i * 100, vec![i * 7, i * 2], i, i / 2));
            }
            json::to_string(&s.finish(900, snap(70, 2100, vec![150, 45], 21, 10)))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same inputs must give byte-identical timelines");
        assert!(a.contains("noc_peak_link_util"));
    }

    #[test]
    fn obs_config_gating() {
        assert!(!ObsConfig::default().is_enabled());
        assert!(ObsConfig::full(1000).is_enabled());
        assert!(ObsConfig {
            trace: None,
            sample_interval: Some(5),
            forensics: None,
        }
        .is_enabled());
        let f = ObsConfig::forensics_only();
        assert!(f.is_enabled());
        assert!(f.trace.is_none() && f.sample_interval.is_none());
        assert!(ObsConfig::full(1000).forensics.is_some());
    }

    #[test]
    fn ndjson_footer_surfaces_drops() {
        let mut t = Tracer::new(TraceConfig {
            capacity: 2,
            ..TraceConfig::default()
        });
        for i in 0..5u64 {
            t.emit(ev(i, 0, EventKind::AimHit { line: i }));
        }
        let log = t.take_log();
        let footer = log.ndjson_footer();
        assert!(footer.ends_with('\n'));
        let v = JsonValue::parse(footer.trim()).unwrap();
        assert_eq!(v["event"], JsonValue::Str("trace_summary".into()));
        assert_eq!(v["drops"], JsonValue::UInt(3));
        assert_eq!(v["emitted"], JsonValue::UInt(5));
        assert_eq!(v["capacity"], JsonValue::UInt(2));
        // The footer is one line and is not part of the event stream.
        assert_eq!(footer.lines().count(), 1);
        assert_eq!(log.to_ndjson().lines().count(), 2);
    }
}
