//! Unit newtypes: cycles, bytes, and energy.
//!
//! The timing model is integer-cycle based; traffic is byte based;
//! energy is picojoule based (stored as `f64` because it is only ever
//! aggregated, never compared for simulation decisions).

use crate::impl_json_newtype;

/// A duration or timestamp in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl_json_newtype!(Cycles, Bytes, PicoJoules);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Cycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// A quantity of data in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a kibibyte count.
    pub const fn kib(k: u64) -> Bytes {
        Bytes(k * 1024)
    }

    /// Construct from a mebibyte count.
    pub const fn mib(m: u64) -> Bytes {
        Bytes(m * 1024 * 1024)
    }

    /// Value as f64 (for ratios).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl std::ops::Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2}GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2}MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{}B", b)
        }
    }
}

/// Energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PicoJoules(pub f64);

impl PicoJoules {
    /// Zero energy.
    pub const ZERO: PicoJoules = PicoJoules(0.0);

    /// Value in microjoules.
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// Value in millijoules.
    #[inline]
    pub fn as_mj(self) -> f64 {
        self.0 / 1e9
    }
}

impl std::ops::Add for PicoJoules {
    type Output = PicoJoules;
    #[inline]
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for PicoJoules {
    #[inline]
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<f64> for PicoJoules {
    type Output = PicoJoules;
    #[inline]
    fn mul(self, rhs: f64) -> PicoJoules {
        PicoJoules(self.0 * rhs)
    }
}

impl std::iter::Sum for PicoJoules {
    fn sum<I: Iterator<Item = PicoJoules>>(iter: I) -> PicoJoules {
        iter.fold(PicoJoules::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for PicoJoules {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}mJ", self.as_mj())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}uJ", self.as_uj())
        } else {
            write!(f, "{:.1}pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(10) + Cycles(5);
        assert_eq!(a, Cycles(15));
        assert_eq!(a - Cycles(5), Cycles(10));
        let mut b = Cycles(1);
        b += Cycles(2);
        assert_eq!(b, Cycles(3));
        assert_eq!(Cycles(u64::MAX).saturating_add(Cycles(1)), Cycles(u64::MAX));
    }

    #[test]
    fn bytes_constructors_and_display() {
        assert_eq!(Bytes::kib(2), Bytes(2048));
        assert_eq!(Bytes::mib(1), Bytes(1 << 20));
        assert_eq!(Bytes(512).to_string(), "512B");
        assert_eq!(Bytes::kib(1).to_string(), "1.00KiB");
        assert_eq!(Bytes::mib(3).to_string(), "3.00MiB");
    }

    #[test]
    fn energy_aggregation() {
        let e: PicoJoules = vec![PicoJoules(1.5), PicoJoules(2.5)].into_iter().sum();
        assert!((e.0 - 4.0).abs() < 1e-12);
        assert!((PicoJoules(2e6).as_uj() - 2.0).abs() < 1e-12);
        assert!(((PicoJoules(3.0) * 2.0).0 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sums_over_iterators() {
        let c: Cycles = vec![Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(c, Cycles(6));
        let b: Bytes = vec![Bytes(10), Bytes(20)].into_iter().sum();
        assert_eq!(b, Bytes(30));
    }
}
