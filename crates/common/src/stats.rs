//! Counters, histograms, and summary statistics.
//!
//! Every model in the workspace reports through these types so the
//! benchmark harness can aggregate uniformly. [`Counter`] is a named
//! monotonic count; [`Histogram`] buckets values by powers of two;
//! [`Summary`] accumulates mean/min/max without storing samples;
//! [`geomean`] is the figure-of-merit aggregator used in the paper's
//! cross-benchmark summaries.

use crate::{impl_json_newtype, impl_json_struct};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(pub u64);

impl_json_newtype!(Counter);
impl_json_struct!(Histogram {
    buckets,
    count,
    sum,
    min,
    max
});
impl_json_struct!(Summary {
    count,
    mean,
    min,
    max
});

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Value as f64.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Power-of-two bucketed histogram for latency / size distributions.
///
/// Bucket `i` holds values in `[2^i, 2^(i+1))`; bucket 0 additionally
/// holds 0 and 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum recorded value, or None if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum recorded value, or None if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate percentile (bucket upper bound). `p` is clamped
    /// into `[0, 100]` (NaN behaves like 0), and an empty histogram
    /// reports 0 at any percentile.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let target = (p / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return if i == 0 { 1 } else { (1u64 << (i + 1)) - 1 };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Streaming summary of f64 samples: count, mean, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// New empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample (Welford's incremental mean).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.mean += (v - self.mean) / self.count as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum, or None if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or None if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Geometric mean of strictly positive values. Returns 1.0 for an
/// empty slice (the multiplicative identity, matching how papers
/// report "geomean normalized to baseline").
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        c += 5;
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn histogram_empty_is_zero_at_any_percentile() {
        let h = Histogram::new();
        for p in [-10.0, 0.0, 50.0, 100.0, 250.0, f64::NAN] {
            assert_eq!(h.percentile(p), 0, "empty histogram at p={p}");
        }
    }

    #[test]
    fn histogram_percentile_clamps_out_of_range_p() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        // Below-range and NaN behave like p=0; above-range like p=100.
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
        assert_eq!(h.percentile(1e9), h.percentile(100.0));
        // The ends stay within the recorded range's bucket bounds.
        assert!(h.percentile(0.0) >= 1);
        assert!(h.percentile(100.0) >= 999);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(10);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 17);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(10));
    }

    #[test]
    fn summary_welford() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
