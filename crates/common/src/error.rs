//! Error taxonomy for the simulator.
//!
//! Note that a *conflict exception* is not an error: it is the
//! mechanism's deliverable and is modeled in `rce-core::exception`.
//! `RceError` covers genuine misuse: invalid configurations, malformed
//! programs, and driver protocol violations.

/// Result alias used across the workspace.
pub type RceResult<T> = Result<T, RceError>;

/// Errors raised by the simulator infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RceError {
    /// The machine configuration failed validation.
    InvalidConfig(String),
    /// The input program is structurally malformed (unbalanced
    /// acquire/release, barrier arity mismatch, thread count mismatch).
    MalformedProgram(String),
    /// The simulation driver was used incorrectly (e.g., events after
    /// thread end).
    DriverProtocol(String),
    /// A resource limit was exceeded (runaway simulation).
    LimitExceeded(String),
    /// A model-internal invariant was violated (e.g. the directory
    /// names a sharer whose L1 does not hold the line). Always a
    /// simulator bug, but surfaced as an error instead of a panic so
    /// a long sweep fails the offending run and keeps its partial
    /// results recoverable.
    InvariantViolated(String),
    /// The event-driven scheduler exceeded its step budget — a
    /// livelock guard, distinct from [`RceError::LimitExceeded`] so
    /// callers can inspect how far the run got before giving up.
    StepLimitExceeded {
        /// Steps executed when the limit tripped.
        steps: u64,
        /// The budget that was exceeded.
        limit: u64,
        /// Per-core instruction cursors at the moment the limit
        /// tripped — which op each thread was stuck on.
        cursors: Vec<u64>,
        /// Memory operations committed before the limit tripped.
        mem_ops: u64,
    },
}

impl std::fmt::Display for RceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RceError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            RceError::MalformedProgram(m) => write!(f, "malformed program: {m}"),
            RceError::DriverProtocol(m) => write!(f, "driver protocol violation: {m}"),
            RceError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            RceError::InvariantViolated(m) => write!(f, "invariant violated: {m}"),
            RceError::StepLimitExceeded {
                steps,
                limit,
                cursors,
                mem_ops,
            } => write!(
                f,
                "step limit exceeded: {steps} scheduler steps ran against a budget of {limit} \
                 (livelock?); {mem_ops} memory ops committed, per-core cursors {cursors:?}"
            ),
        }
    }
}

impl std::error::Error for RceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_category() {
        assert!(RceError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid configuration"));
        assert!(RceError::MalformedProgram("y".into())
            .to_string()
            .contains("malformed program"));
        assert!(RceError::DriverProtocol("z".into())
            .to_string()
            .contains("driver protocol"));
        assert!(RceError::LimitExceeded("w".into())
            .to_string()
            .contains("limit exceeded"));
        assert!(RceError::InvariantViolated("v".into())
            .to_string()
            .contains("invariant violated"));
        let step = RceError::StepLimitExceeded {
            steps: 12,
            limit: 10,
            cursors: vec![3, 9],
            mem_ops: 7,
        };
        assert!(step.to_string().contains("12"));
        assert!(step.to_string().contains("budget of 10"));
        assert!(step.to_string().contains("7 memory ops"));
        assert!(step.to_string().contains("[3, 9]"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RceError::InvalidConfig("c".into()));
    }
}
