//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace (workload generation,
//! random replacement, parameter jitter) flows through [`SplitMix64`]
//! seeded explicitly, so a `(workload, seed)` pair always produces the
//! same trace and the same simulation result. We implement the
//! generator ourselves rather than pulling `rand`'s default so that the
//! bit stream is pinned forever; nothing in the workspace depends on
//! `rand` — the property-test harness ([`crate::check`]) draws its
//! cases from this module too.

/// Minimal RNG interface used across the workspace.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for lack of
    /// modulo bias.
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Lemire: https://arxiv.org/abs/1805.10941
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Pick an index according to `weights` (need not be normalized).
    /// Returns `weights.len() - 1` on accumulated rounding shortfall.
    fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut x = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Geometric-ish draw: number of successes before failure with
    /// continuation probability `p`, capped at `cap`.
    fn gen_geometric(&mut self, p: f64, cap: u64) -> u64 {
        let mut n = 0;
        while n < cap && self.gen_bool(p) {
            n += 1;
        }
        n
    }
}

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Used both
/// directly and to seed substreams (each thread/component derives its
/// own stream via [`SplitMix64::split`], keeping streams independent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent substream keyed by `key`.
    pub fn split(&self, key: u64) -> SplitMix64 {
        let mut probe = SplitMix64::new(self.state ^ key.wrapping_mul(0x9e3779b97f4a7c15));
        // Burn one value so adjacent keys decorrelate immediately.
        let _ = probe.next_u64();
        probe
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut r = SplitMix64::new(1234567);
        let v0 = r.next_u64();
        let v1 = r.next_u64();
        assert_ne!(v0, v1);
        // Re-derive to pin the stream forever.
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), v0);
    }

    #[test]
    fn split_streams_differ() {
        let base = SplitMix64::new(7);
        let mut s1 = base.split(1);
        let mut s2 = base.split(2);
        let a: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = SplitMix64::new(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut r = SplitMix64::new(13);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        // Expected proportions 1/6, 2/6, 3/6.
        assert!((counts[0] as f64 / 60_000.0 - 1.0 / 6.0).abs() < 0.02);
        assert!((counts[2] as f64 / 60_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn geometric_capped() {
        let mut r = SplitMix64::new(17);
        for _ in 0..1000 {
            assert!(r.gen_geometric(0.99, 5) <= 5);
        }
        // p=0 never continues.
        assert_eq!(r.gen_geometric(0.0, 10), 0);
    }
}
