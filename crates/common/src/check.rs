//! In-tree property-based testing harness.
//!
//! A dependency-free replacement for the slice of `proptest` the test
//! suites actually used: seeded random case generation, a fixed number
//! of cases per property, and shrinking on failure. Generation is built
//! on [`SplitMix64`](crate::rng::SplitMix64), so every run is
//! deterministic; set `RCE_PROP_SEED` to explore a different stream and
//! `RCE_PROP_CASES` to change the case count (default
//! [`DEFAULT_CASES`]).
//!
//! Shrinking is deliberately conservative: we shrink *structure*
//! (vector lengths, by halving) but never *values*, because generators
//! enforce domain invariants (e.g. "address below the shared ceiling")
//! that value-level shrinking could silently violate. See
//! [`Shrink`] for the contract.
//!
//! ```
//! use rce_common::check::{check, Unshrunk};
//! use rce_common::Rng;
//!
//! check("sum is monotone in length", |rng| {
//!     let v: Vec<u64> = (0..rng.gen_range(20)).map(|_| rng.gen_range(100)).collect();
//!     Unshrunk(v)
//! }, |Unshrunk(v)| {
//!     let s: u64 = v.iter().sum();
//!     rce_common::prop_assert!(s >= v.last().copied().unwrap_or(0), "sum {s} too small");
//!     Ok(())
//! });
//! ```

use crate::rng::SplitMix64;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Upper bound on shrink iterations, to keep failing runs fast.
const MAX_SHRINK_STEPS: usize = 1000;

/// Types that can propose structurally smaller versions of themselves.
///
/// `shrink` returns candidate reductions, most aggressive first; the
/// harness keeps any candidate that still fails the property and
/// repeats until a fixed point. The default is "cannot shrink", which
/// is always sound — implementations must only return candidates that
/// stay inside the generator's domain (the harness cannot re-check
/// generator invariants).
pub trait Shrink: Sized {
    /// Candidate smaller values, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Wrapper opting a generated case out of shrinking. Useful for scalar
/// cases (seeds, sizes) where any reduction could leave the domain.
#[derive(Debug, Clone)]
pub struct Unshrunk<T>(pub T);

impl<T> Shrink for Unshrunk<T> {}

impl Shrink for bool {}
impl Shrink for u8 {}
impl Shrink for u16 {}
impl Shrink for u32 {}
impl Shrink for u64 {}
impl Shrink for usize {}
impl Shrink for i64 {}
impl Shrink for f64 {}
impl Shrink for String {}

/// Vectors shrink by halving: drop the back half, drop the front half,
/// and (for short vectors) drop single elements. Subsequences preserve
/// any per-element domain invariant, so this is safe for op traces.
impl<T: Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n.div_ceil(2)..].to_vec());
        }
        if n <= 8 {
            for i in 0..n {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a, so each property gets its own stream without the test
    // author picking seeds.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run `property` against cases drawn from `generate`, panicking with
/// the seed and a shrunk minimal counterexample on failure.
///
/// `generate` receives a fresh substream per case, so cases are
/// independent and reproducible from `(property name, seed, index)`.
/// The property returns `Err(description)` to reject a case — use the
/// [`prop_assert!`](crate::prop_assert!) /
/// [`prop_assert_eq!`](crate::prop_assert_eq!) macros.
pub fn check<T, G, P>(name: &str, mut generate: G, property: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: FnMut(&mut SplitMix64) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let cases = env_u64("RCE_PROP_CASES").map_or(DEFAULT_CASES, |c| c as u32);
    let seed = env_u64("RCE_PROP_SEED").unwrap_or_else(|| name_seed(name));
    let root = SplitMix64::new(seed);
    for i in 0..cases {
        let case = generate(&mut root.split(u64::from(i)));
        if let Err(msg) = property(&case) {
            let (minimal, final_msg, steps) = shrink_failure(case, msg, &property);
            panic!(
                "property `{name}` failed (case {i}/{cases}, seed {seed:#x}, \
                 {steps} shrink steps)\n  error: {final_msg}\n  minimal case: {minimal:#?}\n\
                 rerun with RCE_PROP_SEED={seed}"
            );
        }
    }
}

/// Like [`check`] but with an explicit case count (for expensive
/// properties such as whole-machine simulations).
pub fn check_n<T, G, P>(name: &str, cases: u32, mut generate: G, property: P)
where
    T: Clone + std::fmt::Debug + Shrink,
    G: FnMut(&mut SplitMix64) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let cases = env_u64("RCE_PROP_CASES").map_or(cases, |c| c as u32);
    let seed = env_u64("RCE_PROP_SEED").unwrap_or_else(|| name_seed(name));
    let root = SplitMix64::new(seed);
    for i in 0..cases {
        let case = generate(&mut root.split(u64::from(i)));
        if let Err(msg) = property(&case) {
            let (minimal, final_msg, steps) = shrink_failure(case, msg, &property);
            panic!(
                "property `{name}` failed (case {i}/{cases}, seed {seed:#x}, \
                 {steps} shrink steps)\n  error: {final_msg}\n  minimal case: {minimal:#?}\n\
                 rerun with RCE_PROP_SEED={seed}"
            );
        }
    }
}

fn shrink_failure<T, P>(mut case: T, mut msg: String, property: &P) -> (T, String, usize)
where
    T: Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in case.shrink() {
            steps += 1;
            if let Err(m) = property(&candidate) {
                case = candidate;
                msg = m;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break;
    }
    (case, msg, steps)
}

/// Property-failure assertion: evaluates to `return Err(...)` instead
/// of panicking, so the harness can shrink the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality flavor of [`prop_assert!`](crate::prop_assert!).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n  right: {r:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            let detail = format!($($fmt)+);
            return Err(format!(
                "{detail}\n  left: {l:?}\n  right: {r:?}"
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0;
        check(
            "trivially true",
            |rng| Unshrunk(rng.gen_range(100)),
            |_| {
                // Count via an UnsafeCell-free trick: the closure is Fn,
                // so count in the generator instead? Simpler: nothing to
                // assert; just pass.
                Ok(())
            },
        );
        // Case count is observable through the generator.
        check(
            "generator invoked per case",
            |rng| {
                seen += 1;
                Unshrunk(rng.next_u64())
            },
            |_| Ok(()),
        );
        assert_eq!(seen, DEFAULT_CASES);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let err = std::panic::catch_unwind(|| {
            check(
                "always false",
                |rng| Unshrunk(rng.gen_range(10)),
                |_| Err("nope".to_string()),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always false"));
        assert!(msg.contains("RCE_PROP_SEED="));
        assert!(msg.contains("nope"));
    }

    #[test]
    fn vectors_shrink_to_minimal_failing_subsequence() {
        // Property: "no vector contains an odd number". Failing cases
        // shrink to a single odd element.
        let err = std::panic::catch_unwind(|| {
            check(
                "all even",
                |rng| {
                    (0..rng.gen_range(50) + 1)
                        .map(|_| rng.gen_range(1000))
                        .collect::<Vec<u64>>()
                },
                |v| {
                    for x in v {
                        crate::prop_assert!(x % 2 == 0, "odd element {x}");
                    }
                    Ok(())
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        // The minimal case debug-prints as a one-element vector.
        let minimal = msg.split("minimal case:").nth(1).unwrap();
        let elements = minimal.matches(',').count();
        assert!(
            elements <= 1,
            "expected a near-singleton minimal case, got: {minimal}"
        );
    }

    #[test]
    fn shrinking_preserves_subsequence_domain() {
        // Every shrink candidate of a sorted vector is still sorted.
        let v: Vec<u64> = (0..16).collect();
        for cand in v.shrink() {
            assert!(cand.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let case = (vec![1u64, 2, 3, 4], vec![9u64, 8]);
        for (a, b) in case.shrink() {
            let a_same = a == case.0;
            let b_same = b == case.1;
            assert!(a_same || b_same, "both components changed at once");
        }
    }

    #[test]
    fn checks_are_deterministic() {
        let collect = || {
            let mut cases = Vec::new();
            check(
                "determinism probe",
                |rng| {
                    let c = rng.next_u64();
                    cases.push(c);
                    Unshrunk(c)
                },
                |_| Ok(()),
            );
            cases
        };
        assert_eq!(collect(), collect());
    }
}
