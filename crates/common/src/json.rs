//! In-tree JSON serialization: value model, writer, parser, and the
//! [`ToJson`]/[`FromJson`] traits.
//!
//! The workspace builds fully offline, so instead of `serde_json` we
//! carry a small, dependency-free JSON layer here. It deliberately
//! mirrors the `serde_json` surface the harness code was written
//! against:
//!
//! * [`JsonValue`] plays the role of `serde_json::Value`, including
//!   `Index`/`IndexMut` by key and index (missing keys read as `Null`,
//!   `IndexMut` auto-vivifies objects), the `as_*` accessors, and
//!   `PartialEq<&str>`.
//! * [`json!`](crate::json!) builds literal values with the familiar
//!   object/array syntax.
//! * [`ToJson`]/[`FromJson`] replace `Serialize`/`Deserialize`, with the
//!   same data-format conventions: newtype structs serialize as their
//!   inner value, unit enum variants as strings, and data-carrying enum
//!   variants externally tagged (`{"Acquire": {"lock": 0}}`).
//! * [`to_string`], [`to_string_pretty`], and [`from_str`] are drop-in
//!   call-site replacements; pretty output uses 2-space indentation.
//!
//! Object key order is insertion order, so emitted `results/*.json`
//! files are stable across runs.

use std::fmt;

/// A parsed or constructed JSON document.
///
/// Numbers keep their source flavor (`Int`/`UInt`/`Float`) so that
/// `u64` counters round-trip exactly, but [`PartialEq`] compares
/// numerically across flavors (`Int(1) == UInt(1) == Float(1.0)`).
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative (or otherwise signed) integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

static NULL: JsonValue = JsonValue::Null;

impl JsonValue {
    /// Look up a key in an object. Returns `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up an element in an array. Returns `None` out of bounds and
    /// for non-arrays.
    pub fn get_idx(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// Like [`get`](Self::get) but returns a descriptive error for use
    /// in [`FromJson`] impls.
    pub fn field(&self, key: &str) -> Result<&JsonValue, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// The array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any number flavor).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Parse a JSON document. Rejects trailing garbage.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serialize with 2-space indentation (matches
    /// `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                out.push_str(&i.to_string());
            }
            JsonValue::UInt(u) => {
                out.push_str(&u.to_string());
            }
            JsonValue::Float(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json serializes NaN/Inf as null; keep that contract.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral floats print with a trailing ".0" so the flavor
        // survives a round-trip (serde_json prints 1.0, not 1).
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl PartialEq for JsonValue {
    fn eq(&self, other: &JsonValue) -> bool {
        use JsonValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            // Numbers compare by value across flavors.
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => (*a as f64) == *b,
            _ => false,
        }
    }
}

impl PartialEq<&str> for JsonValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for JsonValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<JsonValue> for &str {
    fn eq(&self, other: &JsonValue) -> bool {
        other.as_str() == Some(*self)
    }
}

impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: &str) -> &JsonValue {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: String) -> &JsonValue {
        self.get(&key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&String> for JsonValue {
    type Output = JsonValue;
    fn index(&self, key: &String) -> &JsonValue {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for JsonValue {
    type Output = JsonValue;
    fn index(&self, idx: usize) -> &JsonValue {
        self.get_idx(idx).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for JsonValue {
    /// Auto-vivifying object access, `serde_json` style: indexing a
    /// `Null` turns it into an empty object, and a missing key is
    /// inserted as `Null`. Panics on non-object, non-null values.
    fn index_mut(&mut self, key: &str) -> &mut JsonValue {
        if self.is_null() {
            *self = JsonValue::Object(Vec::new());
        }
        match self {
            JsonValue::Object(pairs) => {
                if let Some(i) = pairs.iter().position(|(k, _)| k == key) {
                    &mut pairs[i].1
                } else {
                    pairs.push((key.to_string(), JsonValue::Null));
                    &mut pairs.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl std::ops::IndexMut<String> for JsonValue {
    fn index_mut(&mut self, key: String) -> &mut JsonValue {
        self.index_mut(key.as_str())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        };
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if !self.eat_keyword("\\u") {
                                    return Err("unpaired high surrogate".to_string());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(b) if b < 0x20 => return Err(format!("raw control byte 0x{b:02x} in string")),
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------------

/// Types that can serialize themselves into a [`JsonValue`].
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

/// Types that can reconstruct themselves from a [`JsonValue`].
pub trait FromJson: Sized {
    /// Parse `self` out of a JSON value, with a descriptive error on
    /// shape mismatch.
    fn from_json(v: &JsonValue) -> Result<Self, String>;
}

/// Serialize any [`ToJson`] value to a compact string
/// (`serde_json::to_string` replacement).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serialize any [`ToJson`] value with 2-space indentation
/// (`serde_json::to_string_pretty` replacement).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

/// Parse a string into any [`FromJson`] type
/// (`serde_json::from_str` replacement).
pub fn from_str<T: FromJson>(input: &str) -> Result<T, String> {
    T::from_json(&JsonValue::parse(input)?)
}

/// Convert any [`ToJson`] value into a [`JsonValue`]
/// (`serde_json::to_value` replacement).
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> JsonValue {
    value.to_json()
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl FromJson for JsonValue {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v}"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Float(f64::from(*self))
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> JsonValue {
                JsonValue::UInt(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &JsonValue) -> Result<Self, String> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| format!("expected unsigned integer, got {v}"))?;
                <$ty>::try_from(u).map_err(|_| {
                    format!("{u} out of range for {}", stringify!($ty))
                })
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> JsonValue {
                let i = *self as i64;
                if i >= 0 {
                    JsonValue::UInt(i as u64)
                } else {
                    JsonValue::Int(i)
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &JsonValue) -> Result<Self, String> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| format!("expected integer, got {v}"))?;
                <$ty>::try_from(i).map_err(|_| {
                    format!("{i} out of range for {}", stringify!($ty))
                })
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v}"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let vec: Vec<T> = Vec::from_json(v)?;
        let n = vec.len();
        vec.try_into()
            .map_err(|_| format!("expected array of length {N}, got {n}"))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(t) => t.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let items = v
            .as_array()
            .ok_or_else(|| format!("expected 2-tuple array, got {v}"))?;
        if items.len() != 2 {
            return Err(format!("expected 2-tuple, got {} elements", items.len()));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

// ---------------------------------------------------------------------------
// Derive-replacement macros
// ---------------------------------------------------------------------------

/// Implement [`ToJson`]/[`FromJson`] for a struct as an object with one
/// entry per named field — the replacement for
/// `#[derive(Serialize, Deserialize)]` on plain structs.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::JsonValue::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::JsonValue) -> Result<Self, String> {
                Ok($ty {
                    $($field: $crate::json::FromJson::from_json(
                        v.field(stringify!($field))?,
                    )?,)+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a newtype struct as its inner
/// value (serde's newtype-struct convention).
#[macro_export]
macro_rules! impl_json_newtype {
    ($($ty:ident),+ $(,)?) => {$(
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::JsonValue) -> Result<Self, String> {
                Ok($ty($crate::json::FromJson::from_json(v)?))
            }
        }
    )+};
}

/// Implement [`ToJson`]/[`FromJson`] for a field-less enum as its
/// variant name string (serde's unit-variant convention).
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::JsonValue {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                $crate::json::JsonValue::Str(name.to_string())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::JsonValue) -> Result<Self, String> {
                let s = v
                    .as_str()
                    .ok_or_else(|| format!("expected variant string, got {v}"))?;
                match s {
                    $(stringify!($variant) => Ok($ty::$variant),)+
                    other => Err(format!(
                        "unknown {} variant `{other}`",
                        stringify!($ty)
                    )),
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// json! literal macro
// ---------------------------------------------------------------------------

/// Build a [`JsonValue`] from a JSON-like literal, `serde_json::json!`
/// style: `json!({"rows": [1, 2.5, name], "ok": true})`. Interpolated
/// expressions go through [`ToJson`]; object keys are string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::JsonValue::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: Vec<$crate::json::JsonValue> = Vec::new();
        $crate::json_array_items!(items, $($tt)*);
        $crate::json::JsonValue::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut pairs: Vec<(String, $crate::json::JsonValue)> = Vec::new();
        $crate::json_object_pairs!(pairs, $($tt)*);
        $crate::json::JsonValue::Object(pairs)
    }};
    ($other:expr) => { $crate::json::ToJson::to_json(&$other) };
}

/// Internal helper for [`json!`] array bodies.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array_items {
    ($items:ident $(,)?) => {};
    ($items:ident, null $(, $($rest:tt)*)?) => {
        $items.push($crate::json::JsonValue::Null);
        $($crate::json_array_items!($items, $($rest)*);)?
    };
    ($items:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $($crate::json_array_items!($items, $($rest)*);)?
    };
    ($items:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $($crate::json_array_items!($items, $($rest)*);)?
    };
    ($items:ident, $value:expr $(, $($rest:tt)*)?) => {
        $items.push($crate::json::ToJson::to_json(&$value));
        $($crate::json_array_items!($items, $($rest)*);)?
    };
}

/// Internal helper for [`json!`] object bodies.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_pairs {
    ($pairs:ident $(,)?) => {};
    ($pairs:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $pairs.push(($key.to_string(), $crate::json::JsonValue::Null));
        $($crate::json_object_pairs!($pairs, $($rest)*);)?
    };
    ($pairs:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $($crate::json_object_pairs!($pairs, $($rest)*);)?
    };
    ($pairs:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $($crate::json_object_pairs!($pairs, $($rest)*);)?
    };
    ($pairs:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $pairs.push(($key.to_string(), $crate::json::ToJson::to_json(&$value)));
        $($crate::json_object_pairs!($pairs, $($rest)*);)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn literals_and_display() {
        let v = json!({
            "name": "run",
            "count": 3u64,
            "ratio": 0.5,
            "ok": true,
            "missing": null,
            "tags": ["a", "b"],
            "nested": {"x": 1u32},
        });
        assert_eq!(
            v.to_string(),
            r#"{"name":"run","count":3,"ratio":0.5,"ok":true,"missing":null,"tags":["a","b"],"nested":{"x":1}}"#
        );
    }

    #[test]
    fn integral_floats_keep_their_flavor() {
        assert_eq!(json!(2.0).to_string(), "2.0");
        assert_eq!(json!(1.25).to_string(), "1.25");
        assert_eq!(json!(2u64).to_string(), "2");
        assert_eq!(json!(-3i64).to_string(), "-3");
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2, 3.5, "s\n", true, null], "b": {"c": 18446744073709551615}}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v["a"][0], JsonValue::UInt(1));
        assert_eq!(v["a"][1], JsonValue::Int(-2));
        assert_eq!(v["a"][3], JsonValue::Str("s\n".to_string()));
        assert_eq!(v["b"]["c"], JsonValue::UInt(u64::MAX));
        let back = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
        let back_pretty = JsonValue::parse(&v.pretty()).unwrap();
        assert_eq!(v, back_pretty);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse(r#""unterminated"#).is_err());
        assert!(JsonValue::parse("1e").is_err());
    }

    #[test]
    fn parse_string_escapes() {
        let v = JsonValue::parse(r#""tab\t quote\" unicodeé pair😀""#).unwrap();
        assert_eq!(
            v,
            JsonValue::Str("tab\t quote\" unicode\u{e9} pair😀".into())
        );
        // The writer escapes what it must and the parser reads it back.
        let s = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(JsonValue::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn index_semantics_match_serde_json() {
        let v = json!({"a": 1u64});
        assert!(v["nope"].is_null());
        assert!(v["a"]["deeper"].is_null());
        assert_eq!(v["a"].as_u64(), Some(1));

        let mut m = JsonValue::Null;
        m["fresh"] = json!(2u64);
        m["fresh"] = json!(3u64);
        assert_eq!(m["fresh"].as_u64(), Some(3));
        assert_eq!(m.as_array(), None);
    }

    #[test]
    fn cross_flavor_number_equality() {
        assert_eq!(JsonValue::UInt(5), JsonValue::Int(5));
        assert_eq!(JsonValue::UInt(5), JsonValue::Float(5.0));
        assert_ne!(JsonValue::UInt(5), JsonValue::Float(5.5));
        assert_ne!(JsonValue::Int(-1), JsonValue::UInt(u64::MAX));
    }

    #[test]
    fn str_equality() {
        let v = json!({"workload": "geomean"});
        assert!(v["workload"] == "geomean");
        assert!(v["workload"] != "other");
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = json!({"a": [1u64], "b": {}});
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn option_and_tuple_conventions() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(some.to_json().to_string(), "7");
        assert_eq!(none.to_json().to_string(), "null");
        let pair = ("scrubs".to_string(), 4u64);
        assert_eq!(pair.to_json().to_string(), r#"["scrubs",4]"#);
        let back: (String, u64) = FromJson::from_json(&pair.to_json()).unwrap();
        assert_eq!(back, pair);
    }

    #[test]
    fn from_json_reports_shape_errors() {
        assert!(u64::from_json(&json!(-1i64)).is_err());
        assert!(u16::from_json(&json!(70000u64)).is_err());
        assert!(String::from_json(&json!(1u64)).is_err());
        assert!(<[u64; 2]>::from_json(&json!([1u64])).is_err());
        assert!(JsonValue::parse("{}").unwrap().field("x").is_err());
    }
}
