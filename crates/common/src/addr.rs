//! Physical addresses and cache-line geometry.
//!
//! The simulator works at word granularity inside 64-byte cache lines:
//! an [`Addr`] is a byte address, a [`LineAddr`] is the address of the
//! containing line, and a [`WordIdx`] names one of the
//! [`LineGeometry::WORDS_PER_LINE`] 8-byte words within a line. Access
//! metadata (the heart of conflict detection) is kept as per-word
//! bitmasks ([`WordMask`]).

use crate::impl_json_newtype;

/// Cache-line geometry constants shared by every model in the workspace.
///
/// The paper (and essentially all of the coherence literature it builds
/// on) assumes 64-byte lines; access bits are tracked per 8-byte word,
/// which is the granularity CE's hardware proposal used for its
/// read/write bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineGeometry;

impl LineGeometry {
    /// Line size in bytes.
    pub const LINE_BYTES: u64 = 64;
    /// Word size in bytes (the access-bit granularity).
    pub const WORD_BYTES: u64 = 8;
    /// Words per line.
    pub const WORDS_PER_LINE: u32 = (Self::LINE_BYTES / Self::WORD_BYTES) as u32;
    /// log2(line size).
    pub const LINE_SHIFT: u32 = Self::LINE_BYTES.trailing_zeros();
    /// log2(word size).
    pub const WORD_SHIFT: u32 = Self::WORD_BYTES.trailing_zeros();
}

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl_json_newtype!(Addr, LineAddr, WordIdx, WordMask);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LineGeometry::LINE_SHIFT)
    }

    /// The word within the containing line.
    #[inline]
    pub fn word(self) -> WordIdx {
        WordIdx(
            ((self.0 >> LineGeometry::WORD_SHIFT) & (LineGeometry::WORDS_PER_LINE as u64 - 1))
                as u8,
        )
    }

    /// Byte offset within the line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 & (LineGeometry::LINE_BYTES - 1)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line-granularity address (the byte address shifted right by
/// [`LineGeometry::LINE_SHIFT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of this line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LineGeometry::LINE_SHIFT)
    }

    /// Byte address of a word within this line.
    #[inline]
    pub fn word_addr(self, w: WordIdx) -> Addr {
        Addr(self.base().0 + (w.0 as u64) * LineGeometry::WORD_BYTES)
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Index of an 8-byte word within a 64-byte line (0..8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordIdx(pub u8);

impl WordIdx {
    /// All word indices in a line, in order.
    pub fn all() -> impl Iterator<Item = WordIdx> {
        (0..LineGeometry::WORDS_PER_LINE as u8).map(WordIdx)
    }
}

/// A bitmask over the words of one line: bit `i` set means word `i` is
/// in the set. This is the unit of access metadata: CE keeps one read
/// mask and one write mask per line per core, ARC keeps them per region
/// at the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct WordMask(pub u8);

impl WordMask {
    /// The empty mask.
    pub const EMPTY: WordMask = WordMask(0);
    /// All words in the line.
    pub const FULL: WordMask = WordMask(0xff);

    /// A mask containing only `w`.
    #[inline]
    pub fn single(w: WordIdx) -> Self {
        WordMask(1u8 << w.0)
    }

    /// A mask covering `len` bytes starting at byte address `a`,
    /// clamped to the line containing `a`.
    pub fn span(a: Addr, len: u64) -> Self {
        debug_assert!(len > 0);
        let first = a.word().0 as u32;
        let last_byte = (a.line_offset() + len - 1).min(LineGeometry::LINE_BYTES - 1);
        let last = (last_byte >> LineGeometry::WORD_SHIFT) as u32;
        let mut m = 0u8;
        for w in first..=last {
            m |= 1 << w;
        }
        WordMask(m)
    }

    /// True if no words are set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of words set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if the two masks share any word.
    #[inline]
    pub fn intersects(self, other: WordMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Union.
    #[inline]
    pub fn union(self, other: WordMask) -> WordMask {
        WordMask(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersect(self, other: WordMask) -> WordMask {
        WordMask(self.0 & other.0)
    }

    /// Words in `self` but not `other`.
    #[inline]
    pub fn minus(self, other: WordMask) -> WordMask {
        WordMask(self.0 & !other.0)
    }

    /// True if word `w` is set.
    #[inline]
    pub fn contains(self, w: WordIdx) -> bool {
        self.0 & (1 << w.0) != 0
    }

    /// Iterate over set words.
    pub fn iter(self) -> impl Iterator<Item = WordIdx> {
        (0..LineGeometry::WORDS_PER_LINE as u8)
            .filter(move |w| self.0 & (1 << w) != 0)
            .map(WordIdx)
    }
}

impl std::ops::BitOr for WordMask {
    type Output = WordMask;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for WordMask {
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for WordMask {
    type Output = WordMask;
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_geometry_is_consistent() {
        assert_eq!(LineGeometry::LINE_BYTES, 64);
        assert_eq!(LineGeometry::WORDS_PER_LINE, 8);
        assert_eq!(LineGeometry::LINE_SHIFT, 6);
        assert_eq!(LineGeometry::WORD_SHIFT, 3);
    }

    #[test]
    fn addr_line_and_word_extraction() {
        let a = Addr(0x1234);
        assert_eq!(a.line(), LineAddr(0x48));
        assert_eq!(a.line_offset(), 0x34);
        assert_eq!(a.word(), WordIdx(6));
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr(7);
        assert_eq!(l.base(), Addr(7 * 64));
        assert_eq!(l.base().line(), l);
        assert_eq!(l.word_addr(WordIdx(3)), Addr(7 * 64 + 24));
    }

    #[test]
    fn word_mask_span_single_word() {
        let m = WordMask::span(Addr(8), 4);
        assert_eq!(m, WordMask::single(WordIdx(1)));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn word_mask_span_multi_word() {
        // 16 bytes starting at byte 4 covers words 0..=2.
        let m = WordMask::span(Addr(4), 16);
        assert_eq!(m.0, 0b0000_0111);
    }

    #[test]
    fn word_mask_span_clamps_to_line() {
        // A span that would run off the end of the line is clamped.
        let m = WordMask::span(Addr(60), 32);
        assert_eq!(m, WordMask::single(WordIdx(7)));
    }

    #[test]
    fn word_mask_set_ops() {
        let a = WordMask(0b0011);
        let b = WordMask(0b0110);
        assert!(a.intersects(b));
        assert_eq!(a.union(b).0, 0b0111);
        assert_eq!(a.intersect(b).0, 0b0010);
        assert_eq!(a.minus(b).0, 0b0001);
        assert!(!a.minus(b).intersects(b));
    }

    #[test]
    fn word_mask_iter_matches_contains() {
        let m = WordMask(0b1010_0001);
        let words: Vec<_> = m.iter().collect();
        assert_eq!(words, vec![WordIdx(0), WordIdx(5), WordIdx(7)]);
        for w in WordIdx::all() {
            assert_eq!(m.contains(w), words.contains(&w));
        }
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(WordMask::FULL.count(), 8);
        assert!(WordMask::EMPTY.is_empty());
        assert!(!WordMask::FULL.intersects(WordMask::EMPTY));
    }
}
