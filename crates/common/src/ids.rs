//! Identifiers for the entities of a simulated execution.
//!
//! All are thin newtypes over integers so they can be used as array
//! indices without allocation while staying type-distinct.

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        $crate::impl_json_newtype!($name);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A hardware core. The simulator pins thread `i` to core `i`, so
    /// `CoreId` doubles as the scheduling index.
    CoreId,
    u16,
    "c"
);

id_type!(
    /// A software thread of the traced program.
    ThreadId,
    u16,
    "t"
);

id_type!(
    /// A synchronization-free region (SFR) instance. Region IDs are
    /// globally unique and monotonically increasing per core, so
    /// `(core, region)` pairs totally order a core's regions.
    RegionId,
    u64,
    "r"
);

id_type!(
    /// A program lock object (models a mutex address).
    LockId,
    u32,
    "lk"
);

id_type!(
    /// A program barrier object.
    BarrierId,
    u32,
    "br"
);

impl CoreId {
    /// Enumerate `n` cores.
    pub fn first_n(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n as u16).map(CoreId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(CoreId(3).to_string(), "c3");
        assert_eq!(ThreadId(1).to_string(), "t1");
        assert_eq!(RegionId(9).to_string(), "r9");
        assert_eq!(LockId(0).to_string(), "lk0");
        assert_eq!(BarrierId(2).to_string(), "br2");
    }

    #[test]
    fn ids_index_and_order() {
        assert_eq!(CoreId(5).index(), 5);
        assert!(RegionId(1) < RegionId(2));
        let cores: Vec<_> = CoreId::first_n(3).collect();
        assert_eq!(cores, vec![CoreId(0), CoreId(1), CoreId(2)]);
    }
}
