//! Interned line identifiers and flat per-line storage.
//!
//! Every simulated access touches per-line metadata — access-bit
//! tables, sharer state, region classifications, heatmaps. Hashing the
//! sparse 64-bit line address into a `HashMap` on each of those
//! touches dominates the simulator's hot path. [`LineTable`] interns a
//! line address into a dense [`LineId`] exactly once per distinct
//! line; consumers then index plain vectors ([`LineMap`]) or bitsets
//! ([`LineFlags`], [`LineSet`]) by the dense id instead.
//!
//! Interning is insertion-ordered (the first line seen gets id 0, the
//! next new line id 1, ...) and never forgets a line, so a `LineId` is
//! valid for the lifetime of its table and the table's memory is
//! bounded by the number of *distinct* lines a run touches, not by the
//! address-space span. Nothing here is serialized: reports keep
//! speaking raw [`LineAddr`]es, which is what keeps them byte-identical
//! across the sparse-to-flat storage swap.

use crate::addr::LineAddr;

/// Dense identifier for an interned line address.
///
/// Ids are assigned contiguously from 0 in first-seen order by the
/// [`LineTable`] that produced them; they are meaningless across
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub u32);

impl LineId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Open-addressing intern table mapping [`LineAddr`] to dense
/// [`LineId`].
///
/// Insert-only: lines are never removed, so consumers can cache ids
/// and index flat arrays without tombstone or rehash invalidation
/// concerns. Lookup is a multiply-shift hash plus linear probing over
/// a power-of-two slot array kept below 7/8 load.
#[derive(Debug, Clone)]
pub struct LineTable {
    /// Each slot holds `line_index + 1`, or 0 for empty.
    slots: Vec<u32>,
    /// Interned raw line addresses, indexed by `LineId`.
    lines: Vec<u64>,
}

impl Default for LineTable {
    fn default() -> Self {
        LineTable::new()
    }
}

impl LineTable {
    /// New empty table.
    pub fn new() -> Self {
        LineTable {
            slots: vec![0; 64],
            lines: Vec::new(),
        }
    }

    /// SplitMix64-style finalizer; sequential line addresses must not
    /// cluster into the same probe run.
    #[inline]
    fn mix(key: u64) -> u64 {
        let mut x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^ (x >> 31)
    }

    /// Find `key`'s slot: (slot index, Some(id) if present).
    #[inline]
    fn probe(&self, key: u64) -> (usize, Option<LineId>) {
        let mask = self.slots.len() - 1;
        let mut i = (Self::mix(key) as usize) & mask;
        loop {
            let s = self.slots[i];
            if s == 0 {
                return (i, None);
            }
            let idx = (s - 1) as usize;
            if self.lines[idx] == key {
                return (i, Some(LineId(s - 1)));
            }
            i = (i + 1) & mask;
        }
    }

    /// Intern a line, returning its dense id. Stable: the same address
    /// always yields the same id.
    pub fn intern(&mut self, line: LineAddr) -> LineId {
        if (self.lines.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let (slot, found) = self.probe(line.0);
        if let Some(id) = found {
            return id;
        }
        let id = LineId(self.lines.len() as u32);
        self.lines.push(line.0);
        self.slots[slot] = id.0 + 1;
        id
    }

    /// Id for a line if it has been interned, without interning it.
    #[inline]
    pub fn lookup(&self, line: LineAddr) -> Option<LineId> {
        self.probe(line.0).1
    }

    /// The address a dense id was interned from.
    ///
    /// # Panics
    /// If `id` did not come from this table.
    #[inline]
    pub fn addr(&self, id: LineId) -> LineAddr {
        LineAddr(self.lines[id.index()])
    }

    /// Number of distinct lines interned.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no line has been interned.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// All ids in interning (first-seen) order.
    pub fn ids(&self) -> impl Iterator<Item = LineId> {
        (0..self.lines.len() as u32).map(LineId)
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let mask = cap - 1;
        let mut slots = vec![0u32; cap];
        for (idx, &key) in self.lines.iter().enumerate() {
            let mut i = (Self::mix(key) as usize) & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32 + 1;
        }
        self.slots = slots;
    }
}

/// Flat per-line value store indexed by [`LineId`].
///
/// Grows on demand with `T::default()`; "absent" is represented by the
/// default value (consumers pair this with an emptiness predicate such
/// as `MetaMap::is_empty`).
#[derive(Debug, Clone)]
pub struct LineMap<T> {
    vals: Vec<T>,
}

impl<T: Default> Default for LineMap<T> {
    fn default() -> Self {
        LineMap::new()
    }
}

impl<T: Default> LineMap<T> {
    /// New empty map.
    pub fn new() -> Self {
        LineMap { vals: Vec::new() }
    }

    /// Mutable access to `id`'s value, growing with defaults as
    /// needed.
    #[inline]
    pub fn slot(&mut self, id: LineId) -> &mut T {
        if id.index() >= self.vals.len() {
            self.vals.resize_with(id.index() + 1, T::default);
        }
        &mut self.vals[id.index()]
    }

    /// The value at `id`, if the map has grown that far.
    #[inline]
    pub fn get(&self, id: LineId) -> Option<&T> {
        self.vals.get(id.index())
    }

    /// Mutable value at `id` without growing.
    #[inline]
    pub fn get_mut(&mut self, id: LineId) -> Option<&mut T> {
        self.vals.get_mut(id.index())
    }

    /// All populated slots in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LineId, &T)> {
        self.vals
            .iter()
            .enumerate()
            .map(|(i, v)| (LineId(i as u32), v))
    }

    /// All populated slots in id order, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineId, &mut T)> {
        self.vals
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (LineId(i as u32), v))
    }
}

/// Growable bitset over [`LineId`]s: membership only, no iteration
/// order.
#[derive(Debug, Clone, Default)]
pub struct LineFlags {
    words: Vec<u64>,
}

impl LineFlags {
    /// New empty flag set.
    pub fn new() -> Self {
        LineFlags::default()
    }

    /// Set `id`'s flag; true if it was newly set.
    #[inline]
    pub fn insert(&mut self, id: LineId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Clear `id`'s flag; true if it was set.
    #[inline]
    pub fn remove(&mut self, id: LineId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Whether `id`'s flag is set.
    #[inline]
    pub fn contains(&self, id: LineId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }
}

/// Deduplicating set of [`LineId`]s that remembers its members for a
/// later bulk drain — the flat replacement for a `HashSet<u64>` that
/// is filled during a region and flushed at its boundary.
#[derive(Debug, Clone, Default)]
pub struct LineSet {
    flags: LineFlags,
    members: Vec<LineId>,
}

impl LineSet {
    /// New empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// Insert `id`; true if it was not already present.
    #[inline]
    pub fn insert(&mut self, id: LineId) -> bool {
        if self.flags.insert(id) {
            self.members.push(id);
            true
        } else {
            false
        }
    }

    /// Whether `id` is in the set.
    #[inline]
    pub fn contains(&self, id: LineId) -> bool {
        self.flags.contains(id)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Remove and return every member in insertion order, leaving the
    /// set empty. Callers that feed hardware models must sort the
    /// result by address themselves — insertion order is
    /// program-dependent, not canonical.
    pub fn take(&mut self) -> Vec<LineId> {
        let members = std::mem::take(&mut self.members);
        for &id in &members {
            self.flags.remove(id);
        }
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_n;
    use crate::{prop_assert, prop_assert_eq, Rng, SplitMix64};

    #[test]
    fn interning_is_stable_and_dense() {
        let mut t = LineTable::new();
        let a = t.intern(LineAddr(0x40));
        let b = t.intern(LineAddr(0x80));
        let a2 = t.intern(LineAddr(0x40));
        assert_eq!(a, LineId(0));
        assert_eq!(b, LineId(1));
        assert_eq!(a, a2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.addr(a), LineAddr(0x40));
        assert_eq!(t.addr(b), LineAddr(0x80));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = LineTable::new();
        assert_eq!(t.lookup(LineAddr(7)), None);
        let id = t.intern(LineAddr(7));
        assert_eq!(t.lookup(LineAddr(7)), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_preserves_ids() {
        let mut t = LineTable::new();
        let ids: Vec<LineId> = (0..10_000u64).map(|i| t.intern(LineAddr(i * 64))).collect();
        assert_eq!(t.len(), 10_000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(t.lookup(LineAddr(i as u64 * 64)), Some(*id));
            assert_eq!(t.addr(*id), LineAddr(i as u64 * 64));
        }
    }

    /// Property: ids are assigned densely in first-occurrence order,
    /// and re-interning any address is stable — on arbitrary address
    /// streams with duplicates.
    #[test]
    fn prop_interning_stable_and_dense() {
        check_n(
            "prop_interning_stable_and_dense",
            128,
            |rng: &mut SplitMix64| {
                let n = 1 + rng.gen_range(200) as usize;
                (0..n).map(|_| rng.gen_range(64) * 64).collect::<Vec<u64>>()
            },
            |addrs| {
                let mut t = LineTable::new();
                let mut first_seen: Vec<u64> = Vec::new();
                for &a in addrs {
                    let id = t.intern(LineAddr(a));
                    if !first_seen.contains(&a) {
                        prop_assert_eq!(id.index(), first_seen.len(), "dense in first-seen order");
                        first_seen.push(a);
                    } else {
                        let expect = first_seen.iter().position(|&x| x == a).unwrap();
                        prop_assert_eq!(id.index(), expect, "stable on re-intern");
                    }
                }
                prop_assert_eq!(t.len(), first_seen.len());
                for (i, &a) in first_seen.iter().enumerate() {
                    prop_assert_eq!(t.lookup(LineAddr(a)), Some(LineId(i as u32)));
                    prop_assert_eq!(t.addr(LineId(i as u32)), LineAddr(a));
                    prop_assert!(t.ids().any(|id| id.index() == i));
                }
                Ok(())
            },
        );
    }

    #[test]
    fn line_map_grows_with_defaults() {
        let mut m: LineMap<u64> = LineMap::new();
        assert_eq!(m.get(LineId(3)), None);
        *m.slot(LineId(3)) += 5;
        assert_eq!(m.get(LineId(3)), Some(&5));
        assert_eq!(m.get(LineId(0)), Some(&0));
        assert_eq!(m.iter().count(), 4);
    }

    #[test]
    fn flags_insert_remove_contains() {
        let mut f = LineFlags::new();
        assert!(!f.contains(LineId(70)));
        assert!(f.insert(LineId(70)));
        assert!(!f.insert(LineId(70)), "second insert is not fresh");
        assert!(f.contains(LineId(70)));
        assert!(f.remove(LineId(70)));
        assert!(!f.remove(LineId(70)));
        assert!(!f.contains(LineId(70)));
        assert!(!f.remove(LineId(9999)), "beyond-capacity remove is a no-op");
    }

    #[test]
    fn line_set_dedups_and_drains() {
        let mut s = LineSet::new();
        assert!(s.insert(LineId(2)));
        assert!(s.insert(LineId(0)));
        assert!(!s.insert(LineId(2)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(LineId(0)));
        let drained = s.take();
        assert_eq!(drained, vec![LineId(2), LineId(0)], "insertion order");
        assert!(s.is_empty());
        assert!(!s.contains(LineId(2)));
        assert!(s.insert(LineId(2)), "reusable after take");
    }
}
