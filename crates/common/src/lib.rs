//! Shared primitives for the region-conflict-exception (RCE) simulator.
//!
//! This crate holds the vocabulary types that every other crate in the
//! workspace speaks: physical addresses and cache-line geometry
//! ([`addr`]), identifiers for cores/threads/regions/locks ([`ids`]),
//! the machine configuration tree ([`config`]), counters and summary
//! statistics ([`stats`]), deterministic random number generation
//! ([`rng`]), ASCII table rendering for the benchmark harness
//! ([`table`]), the error/exception taxonomy ([`error`]), in-tree JSON
//! serialization ([`json`]), the property-test harness ([`check`]),
//! and the observability layer — event tracing and interval metrics —
//! ([`obs`]).
//!
//! The workspace builds fully offline with zero third-party crates;
//! [`json`] and [`check`] exist to keep it that way.
//!
//! Nothing in this crate models hardware behavior; it only provides the
//! data types the models are built from. Keeping these in one leaf crate
//! lets the substrate crates (`rce-noc`, `rce-dram`, `rce-cache`) stay
//! independent of each other.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod addr;
pub mod check;
pub mod config;
pub mod error;
pub mod ids;
pub mod json;
pub mod line;
pub mod obs;
pub mod rng;
pub mod stats;
pub mod table;
pub mod units;

pub use addr::{Addr, LineAddr, LineGeometry, WordIdx, WordMask};
pub use config::{
    AimConfig, CacheGeometry, DetectionGranularity, DramConfig, MachineConfig, MetaPlacement,
    NocConfig, ProtocolKind,
};
pub use error::{RceError, RceResult};
pub use ids::{BarrierId, CoreId, LockId, RegionId, ThreadId};
pub use json::{FromJson, JsonValue, ToJson};
pub use line::{LineFlags, LineId, LineMap, LineSet, LineTable};
pub use obs::{
    EventClass, EventKind, ForensicsConfig, GaugeSnapshot, IntervalSample, MetricsSampler,
    MetricsTimeline, ObsConfig, SharedTracer, SimEvent, TraceConfig, TraceFilter, TraceLog, Tracer,
};
pub use rng::{Rng, SplitMix64};
pub use stats::{geomean, Counter, Histogram, Summary};
pub use units::{Bytes, Cycles, PicoJoules};
