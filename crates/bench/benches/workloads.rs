//! Criterion microbenchmarks: workload generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rce_trace::WorkloadSpec;

fn generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    for w in [
        WorkloadSpec::Blackscholes,
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
        WorkloadSpec::Fluidanimate,
        WorkloadSpec::X264,
    ] {
        let ops = w.build(8, 1, 42).total_ops() as u64;
        g.throughput(Throughput::Elements(ops));
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, w| {
            b.iter(|| w.build(8, 1, 42));
        });
    }
    g.finish();
}

fn characterization(c: &mut Criterion) {
    let mut g = c.benchmark_group("characterize");
    let p = WorkloadSpec::Streamcluster.build(8, 2, 42);
    g.throughput(Throughput::Elements(p.total_ops() as u64));
    g.bench_function("streamcluster", |b| {
        b.iter(|| rce_trace::characterize(&p));
    });
    g.finish();
}

criterion_group!(benches, generation, characterization);
criterion_main!(benches);
