//! Microbenchmarks: workload generation throughput.

use rce_bench::Bencher;
use rce_trace::WorkloadSpec;

fn main() {
    let mut g = Bencher::group("trace_generation");
    for w in [
        WorkloadSpec::Blackscholes,
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
        WorkloadSpec::Fluidanimate,
        WorkloadSpec::X264,
    ] {
        let ops = w.build(8, 1, 42).total_ops() as u64;
        g.case(w.name(), Some(ops), move || w.build(8, 1, 42));
    }

    let mut g = Bencher::group("characterize");
    let p = WorkloadSpec::Streamcluster.build(8, 2, 42);
    g.case("streamcluster", Some(p.total_ops() as u64), || {
        rce_trace::characterize(&p)
    });
}
