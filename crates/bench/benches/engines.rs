//! Microbenchmarks: simulator throughput per engine.
//!
//! Measures how fast each design simulates a fixed workload — the
//! harness-side figure of merit (simulated events per wall-clock
//! second), not a claim about the simulated machines.

use rce_bench::Bencher;
use rce_common::{MachineConfig, ProtocolKind};
use rce_core::Machine;
use rce_trace::WorkloadSpec;

fn main() {
    let cores = 8;
    let program = WorkloadSpec::Fluidanimate.build(cores, 1, 42);
    let ops = program.total_ops() as u64;
    let mut g = Bencher::group("engine_throughput");
    for proto in ProtocolKind::ALL {
        let cfg = MachineConfig::paper_default(cores, proto);
        let m = Machine::new(&cfg).unwrap();
        g.case(proto.name(), Some(ops), || m.run(&program).unwrap());
    }

    let mut g = Bencher::group("ce_by_workload");
    for w in [
        WorkloadSpec::Swaptions,
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
    ] {
        let program = w.build(cores, 1, 42);
        let cfg = MachineConfig::paper_default(cores, ProtocolKind::Ce);
        let m = Machine::new(&cfg).unwrap();
        g.case(w.name(), Some(program.total_ops() as u64), || {
            m.run(&program).unwrap()
        });
    }
}
