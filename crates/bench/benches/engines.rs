//! Criterion microbenchmarks: simulator throughput per engine.
//!
//! Measures how fast each design simulates a fixed workload — the
//! harness-side figure of merit (simulated events per wall-clock
//! second), not a claim about the simulated machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rce_common::{MachineConfig, ProtocolKind};
use rce_core::Machine;
use rce_trace::WorkloadSpec;

fn engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    let cores = 8;
    let workload = WorkloadSpec::Fluidanimate;
    let program = workload.build(cores, 1, 42);
    g.throughput(Throughput::Elements(program.total_ops() as u64));
    for proto in ProtocolKind::ALL {
        let cfg = MachineConfig::paper_default(cores, proto);
        let m = Machine::new(&cfg).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(proto.name()), &m, |b, m| {
            b.iter(|| m.run(&program).unwrap());
        });
    }
    g.finish();
}

fn engine_by_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("ce_by_workload");
    let cores = 8;
    for w in [
        WorkloadSpec::Swaptions,
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
    ] {
        let program = w.build(cores, 1, 42);
        let cfg = MachineConfig::paper_default(cores, ProtocolKind::Ce);
        let m = Machine::new(&cfg).unwrap();
        g.throughput(Throughput::Elements(program.total_ops() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &m, |b, m| {
            b.iter(|| m.run(&program).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, engine_throughput, engine_by_workload);
criterion_main!(benches);
