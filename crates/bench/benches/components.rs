//! Criterion microbenchmarks: individual substrate components.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rce_cache::SetAssoc;
use rce_common::{Cycles, LineAddr, NocConfig, Rng, SplitMix64};
use rce_core::{Aim, Oracle};
use rce_dram::{AccessKind, Dram};
use rce_noc::{MsgClass, Noc, NodeId};

fn cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_assoc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hit_lookup", |b| {
        let mut a: SetAssoc<u64> = SetAssoc::new(64, 8);
        for k in 0..512u64 {
            a.insert(k, k);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            std::hint::black_box(a.get_mut(i));
        });
    });
    g.bench_function("insert_evict", |b| {
        let mut a: SetAssoc<u64> = SetAssoc::new(64, 8);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            if !a.contains(k) {
                std::hint::black_box(a.insert(k, k));
            }
        });
    });
    g.finish();
}

fn noc_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("send_cross_mesh", |b| {
        let mut n = Noc::new(64, NocConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 4;
            std::hint::black_box(n.send(NodeId(0), NodeId(63), 72, MsgClass::Data, Cycles(t)));
        });
    });
    g.finish();
}

fn dram_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(1));
    g.bench_function("access", |b| {
        let mut d = Dram::new(Default::default());
        let mut rng = SplitMix64::new(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            let line = LineAddr(rng.gen_range(1 << 20));
            std::hint::black_box(d.access(line, 64, AccessKind::DataRead, Cycles(t)));
        });
    });
    g.finish();
}

fn aim_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("aim");
    g.throughput(Throughput::Elements(1));
    g.bench_function("ensure", |b| {
        let mut aim = Aim::new(&Default::default());
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            let line = LineAddr(rng.gen_range(1 << 16));
            std::hint::black_box(aim.ensure(line));
        });
    });
    g.finish();
}

fn oracle_observe(c: &mut Criterion) {
    use rce_common::{Addr, CoreId, RegionId};
    use rce_core::AccessType;
    let mut g = c.benchmark_group("oracle");
    g.throughput(Throughput::Elements(1));
    g.bench_function("observe", |b| {
        let regions: Vec<RegionId> = (0..8).map(RegionId).collect();
        let mut o = Oracle::new(&regions);
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            let core = CoreId(rng.gen_range(8) as u16);
            let addr = Addr(rng.gen_range(1 << 14) * 8);
            let kind = if rng.gen_bool(0.3) {
                AccessType::Write
            } else {
                AccessType::Read
            };
            std::hint::black_box(o.observe(core, addr, kind, Cycles(0)));
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    cache_array,
    noc_send,
    dram_access,
    aim_ops,
    oracle_observe
);
criterion_main!(benches);
