//! Microbenchmarks: individual substrate components.
//!
//! Each case times a batch of `OPS` operations, so the reported
//! throughput is elements (operations) per second at the median.

use rce_bench::Bencher;
use rce_cache::SetAssoc;
use rce_common::{Cycles, LineAddr, NocConfig, Rng, SplitMix64};
use rce_core::{AimMeta, Oracle};
use rce_dram::{AccessKind, Dram};
use rce_noc::{MsgClass, Noc, NodeId};

const OPS: u64 = 100_000;

fn main() {
    let mut b = Bencher::group("components");

    let mut a: SetAssoc<u64> = SetAssoc::new(64, 8);
    for k in 0..512u64 {
        a.insert(k, k);
    }
    b.case("set_assoc/hit_lookup", Some(OPS), move || {
        let mut acc = 0u64;
        for i in 0..OPS {
            if a.get_mut(i % 512).is_some() {
                acc += 1;
            }
        }
        acc
    });

    let mut a: SetAssoc<u64> = SetAssoc::new(64, 8);
    let mut k = 0u64;
    b.case("set_assoc/insert_evict", Some(OPS), move || {
        for _ in 0..OPS {
            k += 1;
            if !a.contains(k) {
                a.insert(k, k);
            }
        }
        k
    });

    let mut n = Noc::new(64, NocConfig::default());
    let mut t = 0u64;
    b.case("noc/send_cross_mesh", Some(OPS), move || {
        let mut last = Cycles(0);
        for _ in 0..OPS {
            t += 4;
            last = n.send(NodeId(0), NodeId(63), 72, MsgClass::Data, Cycles(t));
        }
        last
    });

    let mut d = Dram::new(Default::default());
    let mut rng = SplitMix64::new(1);
    let mut t = 0u64;
    b.case("dram/access", Some(OPS), move || {
        let mut last = Cycles(0);
        for _ in 0..OPS {
            t += 10;
            let line = LineAddr(rng.gen_range(1 << 20));
            last = d.access(line, 64, AccessKind::DataRead, Cycles(t));
        }
        last
    });

    let mut aim = AimMeta::new(&Default::default());
    let mut rng = SplitMix64::new(2);
    b.case("aim/ensure", Some(OPS), move || {
        for _ in 0..OPS {
            let line = LineAddr(rng.gen_range(1 << 16));
            aim.ensure(line);
        }
    });

    {
        use rce_common::{Addr, CoreId, RegionId};
        use rce_core::AccessType;
        let regions: Vec<RegionId> = (0..8).map(RegionId).collect();
        let mut o = Oracle::new(&regions);
        let mut rng = SplitMix64::new(3);
        b.case("oracle/observe", Some(OPS), move || {
            for _ in 0..OPS {
                let core = CoreId(rng.gen_range(8) as u16);
                let addr = Addr(rng.gen_range(1 << 14) * 8);
                let kind = if rng.gen_bool(0.3) {
                    AccessType::Write
                } else {
                    AccessType::Read
                };
                o.observe(core, addr, kind, Cycles(0));
            }
        });
    }
}
