//! Structural report diffing: compare two report JSON documents and
//! list every out-of-tolerance drift.
//!
//! `paper diff a.json b.json [--tolerance pct]` walks both documents
//! in lockstep. Numbers (any flavor: signed, unsigned, float) compare
//! by relative delta against the tolerance percentage — a tolerance of
//! zero demands exact equality. Everything else (strings, booleans,
//! nulls, object key sets, array lengths) must match exactly; arrays
//! recurse element-wise, which is how two metrics timelines align
//! sample by sample. The walk is total: every drift is reported with
//! its JSON path, not just the first.

use rce_common::json::JsonValue;

/// One out-of-tolerance difference between the documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// JSON path to the differing node, e.g. `$.rows[3].cycles`.
    pub path: String,
    /// What differs, human-readable.
    pub detail: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Compare two documents. `tolerance_pct` is the allowed relative
/// drift for numeric leaves, in percent (0 = exact).
pub fn diff_values(a: &JsonValue, b: &JsonValue, tolerance_pct: f64) -> Vec<Drift> {
    let mut out = Vec::new();
    walk("$", a, b, tolerance_pct, &mut out);
    out
}

fn num(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Int(i) => Some(*i as f64),
        JsonValue::UInt(u) => Some(*u as f64),
        JsonValue::Float(f) => Some(*f),
        _ => None,
    }
}

fn kind(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "bool",
        JsonValue::Int(_) | JsonValue::UInt(_) | JsonValue::Float(_) => "number",
        JsonValue::Str(_) => "string",
        JsonValue::Array(_) => "array",
        JsonValue::Object(_) => "object",
    }
}

fn walk(path: &str, a: &JsonValue, b: &JsonValue, tol: f64, out: &mut Vec<Drift>) {
    if let (Some(x), Some(y)) = (num(a), num(b)) {
        if x == y {
            return;
        }
        // A zero baseline has no meaningful relative delta: a counter
        // that was 0 and became nonzero (or vice versa) is a behavior
        // change, not drift, so it compares exactly no matter how
        // generous the tolerance is.
        if x == 0.0 || y == 0.0 {
            out.push(Drift {
                path: path.to_string(),
                detail: format!("{x} vs {y} (zero baseline compares exactly)"),
            });
            return;
        }
        let rel = (x - y).abs() / x.abs().max(y.abs()) * 100.0;
        if rel > tol {
            out.push(Drift {
                path: path.to_string(),
                detail: format!("{x} vs {y} ({rel:.3}% > {tol}% tolerance)"),
            });
        }
        return;
    }
    match (a, b) {
        (JsonValue::Null, JsonValue::Null) => {}
        (JsonValue::Bool(x), JsonValue::Bool(y)) if x == y => {}
        (JsonValue::Str(x), JsonValue::Str(y)) if x == y => {}
        (JsonValue::Bool(_), JsonValue::Bool(_)) | (JsonValue::Str(_), JsonValue::Str(_)) => {
            out.push(Drift {
                path: path.to_string(),
                detail: format!(
                    "{} vs {}",
                    rce_common::json::to_string(a),
                    rce_common::json::to_string(b)
                ),
            });
        }
        (JsonValue::Array(x), JsonValue::Array(y)) => {
            if x.len() != y.len() {
                out.push(Drift {
                    path: path.to_string(),
                    detail: format!("array length {} vs {}", x.len(), y.len()),
                });
            }
            for (i, (xa, yb)) in x.iter().zip(y.iter()).enumerate() {
                walk(&format!("{path}[{i}]"), xa, yb, tol, out);
            }
        }
        (JsonValue::Object(x), JsonValue::Object(y)) => {
            for (k, xv) in x {
                match y.iter().find(|(yk, _)| yk == k) {
                    Some((_, yv)) => walk(&format!("{path}.{k}"), xv, yv, tol, out),
                    None => out.push(Drift {
                        path: format!("{path}.{k}"),
                        detail: "key only in first document".to_string(),
                    }),
                }
            }
            for (k, _) in y {
                if !x.iter().any(|(xk, _)| xk == k) {
                    out.push(Drift {
                        path: format!("{path}.{k}"),
                        detail: "key only in second document".to_string(),
                    });
                }
            }
        }
        _ => out.push(Drift {
            path: path.to_string(),
            detail: format!("type {} vs {}", kind(a), kind(b)),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::json;

    fn v(s: &str) -> JsonValue {
        JsonValue::parse(s).unwrap()
    }

    #[test]
    fn self_diff_is_empty() {
        let a = v(r#"{"cycles": 100, "rows": [{"x": 1.5}, {"x": null}], "name": "ce"}"#);
        assert!(diff_values(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn counter_drift_is_reported_with_its_path() {
        let a = v(r#"{"data": {"rows": [{"cycles": 100}, {"cycles": 200}]}}"#);
        let b = v(r#"{"data": {"rows": [{"cycles": 100}, {"cycles": 230}]}}"#);
        let d = diff_values(&a, &b, 0.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "$.data.rows[1].cycles");
        assert!(d[0].detail.contains("200"), "{}", d[0].detail);
    }

    #[test]
    fn tolerance_absorbs_small_numeric_drift_only() {
        let a = v(r#"{"t": 1000, "u": 1000}"#);
        let b = v(r#"{"t": 1010, "u": 1200}"#);
        // 1% drift passes at 2% tolerance; 20% does not.
        let d = diff_values(&a, &b, 2.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "$.u");
        // Zero tolerance means exact.
        assert_eq!(diff_values(&a, &b, 0.0).len(), 2);
    }

    #[test]
    fn zero_baseline_mismatch_ignores_tolerance() {
        let a = v(r#"{"exceptions": 0, "cycles": 1000}"#);
        let b = v(r#"{"exceptions": 3, "cycles": 1000}"#);
        // Even an absurdly generous tolerance cannot absorb a counter
        // appearing out of nothing — 0 vs 3 is a behavior change.
        for tol in [0.0, 50.0, 100.0, 1e6] {
            let d = diff_values(&a, &b, tol);
            assert_eq!(d.len(), 1, "tolerance {tol}");
            assert_eq!(d[0].path, "$.exceptions");
            assert!(d[0].detail.contains("zero baseline"), "{}", d[0].detail);
        }
        // Symmetric: nonzero baseline dropping to zero drifts too.
        assert_eq!(diff_values(&b, &a, 1e6).len(), 1);
        // Both zero is equal, not a drift.
        assert!(diff_values(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn signed_unsigned_and_float_flavors_compare_by_value() {
        let a = JsonValue::Object(vec![("n".into(), JsonValue::UInt(5))]);
        let b = JsonValue::Object(vec![("n".into(), JsonValue::Float(5.0))]);
        assert!(diff_values(&a, &b, 0.0).is_empty());
    }

    #[test]
    fn key_set_and_shape_changes_always_drift() {
        let a = v(r#"{"x": 1, "gone": 2, "arr": [1, 2, 3], "s": "a"}"#);
        let b = v(r#"{"x": 1, "added": 2, "arr": [1, 2], "s": "b"}"#);
        let d = diff_values(&a, &b, 100.0);
        let paths: Vec<&str> = d.iter().map(|x| x.path.as_str()).collect();
        assert!(paths.contains(&"$.gone"));
        assert!(paths.contains(&"$.added"));
        assert!(paths.contains(&"$.arr"));
        assert!(paths.contains(&"$.s"), "strings never tolerate drift");
        // Type mismatches drift too.
        let d = diff_values(&v("[1]"), &v(r#"{"a": 1}"#), 0.0);
        assert_eq!(d[0].detail, "type array vs object");
    }

    #[test]
    fn timelines_align_sample_by_sample() {
        let a =
            v(r#"{"samples": [{"cycle": 4096, "noc_msgs": 10}, {"cycle": 8192, "noc_msgs": 12}]}"#);
        let b =
            v(r#"{"samples": [{"cycle": 4096, "noc_msgs": 10}, {"cycle": 8192, "noc_msgs": 50}]}"#);
        let d = diff_values(&a, &b, 5.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "$.samples[1].noc_msgs");
    }

    #[test]
    fn drift_on_a_real_report_roundtrip_is_caught() {
        // A report self-diffs clean; bump one counter and it drifts.
        let text = json::to_string(&JsonValue::Object(vec![
            ("mem_ops".into(), JsonValue::UInt(400)),
            ("noc".into(), v(r#"{"bytes": 12345}"#)),
        ]));
        let a = JsonValue::parse(&text).unwrap();
        let mut b = a.clone();
        if let JsonValue::Object(fields) = &mut b {
            fields[0].1 = JsonValue::UInt(401);
        }
        assert!(diff_values(&a, &a, 0.0).is_empty());
        let d = diff_values(&a, &b, 0.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "$.mem_ops");
    }
}
