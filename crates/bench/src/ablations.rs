//! Ablation studies: quantify the design choices DESIGN.md calls out.
//!
//! Each ablation varies exactly one knob of one design and reports the
//! headline metrics against the default. These are the experiments a
//! reviewer asks for: *why* word granularity, *why* a 16-byte
//! piggyback, *what if* ARC skipped self-invalidating read-only data.

use crate::figures::FigureOutput;
use crate::runner::{run_one, run_one_cfg, EvalParams};
use rce_common::{json, table::Table, DetectionGranularity, MachineConfig, ProtocolKind};
use rce_trace::WorkloadSpec;

/// The ablation catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Word- vs line-granularity detection: false-sharing exceptions.
    Granularity,
    /// ARC with/without read-only sharing classification.
    Readonly,
    /// CE+ metadata piggyback size sweep.
    Piggyback,
    /// CE under L1 capacity sweep (metadata displacement pressure).
    L1Size,
    /// ARC region-end signature size sweep.
    Signature,
    /// MESI vs MOESI substrate under the baseline and CE+.
    Moesi,
    /// AIM capacity x latency sensitivity for the AIM-backed designs.
    AimSweep,
}

impl Ablation {
    /// All ablations.
    pub const ALL: [Ablation; 7] = [
        Ablation::Granularity,
        Ablation::Readonly,
        Ablation::Piggyback,
        Ablation::L1Size,
        Ablation::Signature,
        Ablation::Moesi,
        Ablation::AimSweep,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Ablation::Granularity => "ablate-granularity",
            Ablation::Readonly => "ablate-readonly",
            Ablation::Piggyback => "ablate-piggyback",
            Ablation::L1Size => "ablate-l1",
            Ablation::Signature => "ablate-signature",
            Ablation::Moesi => "ablate-moesi",
            Ablation::AimSweep => "ablate-aim",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Ablation> {
        Ablation::ALL.iter().copied().find(|a| a.name() == s)
    }

    /// Run the ablation.
    pub fn run(self, params: &EvalParams) -> FigureOutput {
        match self {
            Ablation::Granularity => granularity(params),
            Ablation::Readonly => readonly(params),
            Ablation::Piggyback => piggyback(params),
            Ablation::L1Size => l1_size(params),
            Ablation::Signature => signature(params),
            Ablation::Moesi => moesi(params),
            Ablation::AimSweep => aim_sweep(params),
        }
    }
}

/// Word vs line granularity: exception counts and run time.
fn granularity(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "Detection granularity ablation (CE+, exceptions & runtime vs word-granularity)",
        &["workload", "word ex", "line ex", "word time", "line time"],
    );
    let mut rows = Vec::new();
    for w in [
        WorkloadSpec::FalseSharing,
        WorkloadSpec::Fluidanimate,
        WorkloadSpec::Canneal,
        WorkloadSpec::X264,
    ] {
        let cores = params.cores.min(16);
        let mut cells = vec![w.name().to_string()];
        let mut row = json!({ "workload": w.name() });
        let mut times = Vec::new();
        for g in [DetectionGranularity::Word, DetectionGranularity::Line] {
            let mut cfg = MachineConfig::paper_default(cores, ProtocolKind::CePlus);
            cfg.granularity = g;
            let r = run_one_cfg(w, &cfg, params.scale, params.seed);
            cells.push(r.exceptions.len().to_string());
            times.push(r.cycles.0);
            row[format!("{g:?}")] = json!({
                "exceptions": r.exceptions.len(),
                "cycles": r.cycles.0,
            });
        }
        cells.push(times[0].to_string());
        cells.push(times[1].to_string());
        t.row(cells);
        rows.push(row);
    }
    FigureOutput {
        id: "R-A1",
        title: "Detection granularity",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// ARC read-only sharing classification on/off.
fn readonly(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "ARC read-only sharing ablation (normalized to MESI)",
        &[
            "workload",
            "ARC runtime",
            "ARC+ro runtime",
            "ARC L1 miss%",
            "ARC+ro L1 miss%",
            "ro retained",
        ],
    );
    let mut rows = Vec::new();
    for w in [
        WorkloadSpec::Raytrace,
        WorkloadSpec::Bodytrack,
        WorkloadSpec::Ferret,
        WorkloadSpec::Streamcluster,
        WorkloadSpec::Canneal,
    ] {
        let base = run_one(
            w,
            ProtocolKind::MesiBaseline,
            params.cores,
            params.scale,
            params.seed,
        );
        let mut cells = vec![w.name().to_string()];
        let mut row = json!({ "workload": w.name() });
        let mut retained = 0;
        for ro in [false, true] {
            let mut cfg = MachineConfig::paper_default(params.cores, ProtocolKind::Arc);
            cfg.arc_readonly_sharing = ro;
            let r = run_one_cfg(w, &cfg, params.scale, params.seed);
            let norm = r.cycles.0 as f64 / base.cycles.0 as f64;
            cells.push(format!("{norm:.3}"));
            row[if ro { "with_ro" } else { "without_ro" }] = json!({
                "runtime": norm,
                "l1_miss_rate": r.l1_miss_rate(),
            });
            if ro {
                retained = r
                    .engine_counters
                    .iter()
                    .find(|(k, _)| k == "ro_retained_lines")
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
            }
        }
        // Re-run for the miss-rate columns (cheap; reports are cached
        // in row JSON above for the curious).
        let miss = |ro: bool| {
            let mut cfg = MachineConfig::paper_default(params.cores, ProtocolKind::Arc);
            cfg.arc_readonly_sharing = ro;
            run_one_cfg(w, &cfg, params.scale, params.seed).l1_miss_rate() * 100.0
        };
        cells.push(format!("{:.1}", miss(false)));
        cells.push(format!("{:.1}", miss(true)));
        cells.push(retained.to_string());
        t.row(cells);
        rows.push(row);
    }
    FigureOutput {
        id: "R-A2",
        title: "ARC read-only sharing",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// CE+ piggyback size sweep.
fn piggyback(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "CE+ metadata piggyback size (geomean over sharing-heavy workloads, vs MESI)",
        &["piggyback B", "runtime", "noc traffic"],
    );
    let workloads = [
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
        WorkloadSpec::Bodytrack,
        WorkloadSpec::Streamcluster,
    ];
    let bases: Vec<_> = workloads
        .iter()
        .map(|w| {
            run_one(
                *w,
                ProtocolKind::MesiBaseline,
                params.cores,
                params.scale,
                params.seed,
            )
        })
        .collect();
    let mut rows = Vec::new();
    for bytes in [0u64, 8, 16, 32, 64] {
        let mut rt = Vec::new();
        let mut noc = Vec::new();
        for (w, base) in workloads.iter().zip(&bases) {
            let mut cfg = MachineConfig::paper_default(params.cores, ProtocolKind::CePlus);
            cfg.metadata_piggyback_bytes = bytes;
            let r = run_one_cfg(*w, &cfg, params.scale, params.seed);
            rt.push((r.cycles.0 as f64 / base.cycles.0 as f64).max(1e-9));
            noc.push((r.noc_bytes().as_f64() / base.noc_bytes().as_f64()).max(1e-9));
        }
        let g = rce_common::geomean(&rt);
        let gn = rce_common::geomean(&noc);
        t.row(vec![
            bytes.to_string(),
            format!("{g:.3}"),
            format!("{gn:.3}"),
        ]);
        rows.push(json!({ "bytes": bytes, "runtime": g, "noc": gn }));
    }
    FigureOutput {
        id: "R-A3",
        title: "CE+ piggyback size",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// CE under L1 size sweep: smaller L1s displace more metadata.
fn l1_size(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "CE vs L1 capacity (canneal + swaptions, vs same-L1 MESI)",
        &["L1 KiB", "CE runtime", "CE meta DRAM KiB"],
    );
    let mut rows = Vec::new();
    for kib in [4u64, 8, 16, 32] {
        let mut rt = Vec::new();
        let mut meta = 0u64;
        for w in [WorkloadSpec::Canneal, WorkloadSpec::Swaptions] {
            let mut base_cfg =
                MachineConfig::paper_default(params.cores, ProtocolKind::MesiBaseline);
            base_cfg.l1.capacity = rce_common::Bytes::kib(kib);
            let base = run_one_cfg(w, &base_cfg, params.scale, params.seed);
            let mut cfg = MachineConfig::paper_default(params.cores, ProtocolKind::Ce);
            cfg.l1.capacity = rce_common::Bytes::kib(kib);
            let r = run_one_cfg(w, &cfg, params.scale, params.seed);
            rt.push((r.cycles.0 as f64 / base.cycles.0 as f64).max(1e-9));
            meta += r.dram.metadata_bytes().0;
        }
        let g = rce_common::geomean(&rt);
        t.row(vec![
            kib.to_string(),
            format!("{g:.3}"),
            format!("{}", meta / 1024),
        ]);
        rows.push(json!({ "l1_kib": kib, "runtime": g, "meta_dram_bytes": meta }));
    }
    FigureOutput {
        id: "R-A4",
        title: "CE vs L1 capacity",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// ARC signature size sweep.
fn signature(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "ARC region-end signature size (sync-dense workloads, vs MESI)",
        &["sig B/line", "runtime", "metadata noc KiB"],
    );
    let workloads = [
        WorkloadSpec::Fluidanimate,
        WorkloadSpec::Dedup,
        WorkloadSpec::X264,
    ];
    let bases: Vec<_> = workloads
        .iter()
        .map(|w| {
            run_one(
                *w,
                ProtocolKind::MesiBaseline,
                params.cores,
                params.scale,
                params.seed,
            )
        })
        .collect();
    let mut rows = Vec::new();
    for bytes in [2u64, 4, 8, 16, 32] {
        let mut rt = Vec::new();
        let mut meta = 0u64;
        for (w, base) in workloads.iter().zip(&bases) {
            let mut cfg = MachineConfig::paper_default(params.cores, ProtocolKind::Arc);
            cfg.signature_bytes_per_line = bytes;
            let r = run_one_cfg(*w, &cfg, params.scale, params.seed);
            rt.push((r.cycles.0 as f64 / base.cycles.0 as f64).max(1e-9));
            meta += r.noc.metadata_bytes().0;
        }
        let g = rce_common::geomean(&rt);
        t.row(vec![
            bytes.to_string(),
            format!("{g:.3}"),
            format!("{}", meta / 1024),
        ]);
        rows.push(json!({ "sig_bytes": bytes, "runtime": g, "meta_noc_bytes": meta }));
    }
    FigureOutput {
        id: "R-A5",
        title: "ARC signature size",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// AIM capacity x latency sweep over both AIM-backed designs.
///
/// The paper sizes the AIM once (Table III) and never reports how
/// sensitive CE+ and ARC are to that choice. This sweep fills the gap:
/// geomean runtime vs MESI as the AIM shrinks from "effectively
/// infinite" down to thrash territory, crossed with the AIM access
/// latency. ARC leans on the AIM for *every* LLC registration, so it
/// should degrade faster than CE+ (which only touches the AIM on
/// displacement and scrub).
fn aim_sweep(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "AIM capacity x latency (CE+/ARC, geomean runtime vs MESI)",
        &[
            "design", "entries", "latency", "runtime", "AIM hit%", "spills",
        ],
    );
    let workloads = [WorkloadSpec::Canneal, WorkloadSpec::Bodytrack];
    let bases: Vec<_> = workloads
        .iter()
        .map(|w| {
            run_one(
                *w,
                ProtocolKind::MesiBaseline,
                params.cores,
                params.scale,
                params.seed,
            )
        })
        .collect();
    let mut rows = Vec::new();
    for proto in [ProtocolKind::CePlus, ProtocolKind::Arc] {
        for entries in [256u64, 1024, 8192, 65536] {
            for latency in [2u64, 4, 8] {
                let mut rt = Vec::new();
                let (mut accesses, mut hits, mut spills) = (0u64, 0u64, 0u64);
                for (w, base) in workloads.iter().zip(&bases) {
                    let cfg = MachineConfig::paper_default(params.cores, proto)
                        .with_aim_entries(entries)
                        .with_aim_latency(latency);
                    let r = run_one_cfg(*w, &cfg, params.scale, params.seed);
                    rt.push((r.cycles.0 as f64 / base.cycles.0 as f64).max(1e-9));
                    if let Some(a) = &r.aim {
                        accesses += a.accesses;
                        hits += a.hits;
                        spills += a.spills;
                    }
                }
                let g = rce_common::geomean(&rt);
                let hit_pct = if accesses == 0 {
                    0.0
                } else {
                    100.0 * hits as f64 / accesses as f64
                };
                t.row(vec![
                    proto.name().to_string(),
                    entries.to_string(),
                    latency.to_string(),
                    format!("{g:.3}"),
                    format!("{hit_pct:.1}"),
                    spills.to_string(),
                ]);
                rows.push(json!({
                    "design": proto.name(), "entries": entries,
                    "latency": latency, "runtime": g,
                    "aim_hit_rate": hit_pct / 100.0, "spills": spills
                }));
            }
        }
    }
    FigureOutput {
        id: "R-A7",
        title: "AIM capacity x latency sensitivity",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// MESI vs MOESI: writeback elision on migratory sharing.
fn moesi(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "MESI vs MOESI substrate (migratory-sharing workloads)",
        &[
            "workload",
            "design",
            "runtime ratio (MOESI/MESI)",
            "writeback ratio",
            "O downgrades",
        ],
    );
    let mut rows = Vec::new();
    for w in [
        WorkloadSpec::Migratory,
        WorkloadSpec::Dedup,
        WorkloadSpec::Canneal,
        WorkloadSpec::PingPong,
    ] {
        for proto in [ProtocolKind::MesiBaseline, ProtocolKind::CePlus] {
            let run = |owned: bool| {
                let mut cfg = MachineConfig::paper_default(params.cores, proto);
                cfg.use_owned_state = owned;
                run_one_cfg(w, &cfg, params.scale, params.seed)
            };
            let mesi = run(false);
            let moesi = run(true);
            let wb = |r: &rce_core::SimReport| {
                r.noc.bytes[rce_noc::MsgClass::Writeback.index()].0.max(1)
            };
            let downgrades = moesi
                .engine_counters
                .iter()
                .find(|(k, _)| k == "owned_downgrades")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            let rt = moesi.cycles.0 as f64 / mesi.cycles.0 as f64;
            let wbr = wb(&moesi) as f64 / wb(&mesi) as f64;
            t.row(vec![
                w.name().to_string(),
                proto.name().to_string(),
                format!("{rt:.3}"),
                format!("{wbr:.3}"),
                downgrades.to_string(),
            ]);
            rows.push(json!({
                "workload": w.name(), "design": proto.name(),
                "runtime_ratio": rt, "writeback_ratio": wbr,
                "owned_downgrades": downgrades
            }));
        }
    }
    FigureOutput {
        id: "R-A6",
        title: "MESI vs MOESI",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for a in Ablation::ALL {
            assert_eq!(Ablation::parse(a.name()), Some(a));
        }
        assert_eq!(Ablation::parse("ablate-nothing"), None);
    }

    #[test]
    fn granularity_ablation_runs_small() {
        let params = EvalParams {
            cores: 4,
            scale: 1,
            seed: 1,
            jobs: 0,
        };
        let f = granularity(&params);
        assert!(f.table.contains("false_sharing"));
        // Line granularity flags false sharing; word does not.
        let rows = f.json["rows"].as_array().unwrap();
        let fs = &rows[0];
        assert_eq!(fs["Word"]["exceptions"].as_u64(), Some(0));
        assert!(fs["Line"]["exceptions"].as_u64().unwrap() > 0);
    }
}
