//! The claims checker: read generated results and verify the paper's
//! three headline claims automatically.
//!
//! `paper summary` loads `results/R-*.json` (produced by `paper all`)
//! and evaluates:
//!
//! - **C1** — CE+ improves run time and energy over CE, by removing
//!   CE's off-chip metadata accesses.
//! - **C2** — CE+ keeps stressing the on-chip network (its traffic
//!   stays CE-like and its relative run time does not improve as cores
//!   grow).
//! - **C3** — ARC outperforms CE, is competitive with CE+ on average,
//!   and loads the NoC and memory network much less.
//!
//! Each claim is reported with the measured evidence and a PASS/FAIL
//! verdict, so a regression in the models that silently broke a
//! headline result is caught by reading one table (and by the unit
//! tests that run the checker on synthetic inputs).

use rce_common::json::JsonValue as Value;
use rce_common::table::Table;
use std::path::Path;

/// One evaluated claim.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    /// Claim ID ("C1", "C2", "C3").
    pub id: &'static str,
    /// What the paper asserts.
    pub claim: &'static str,
    /// The measured evidence, human-readable.
    pub evidence: String,
    /// Did the measurements support the claim?
    pub pass: bool,
}

fn load(dir: &Path, id: &str) -> Option<Value> {
    let text = std::fs::read_to_string(dir.join(format!("{id}.json"))).ok()?;
    Value::parse(&text).ok()
}

fn geomean_row(fig: &Value, design: &str) -> Option<f64> {
    fig["data"]["rows"]
        .as_array()?
        .iter()
        .find(|r| r["workload"] == "geomean")?[design]
        .as_f64()
}

/// Evaluate the claims against a results directory. Returns `None` if
/// the required files are missing (run `paper all` first).
pub fn evaluate(dir: &Path) -> Option<Vec<ClaimResult>> {
    let f1 = load(dir, "R-F1")?;
    let f3 = load(dir, "R-F3")?;
    let f4 = load(dir, "R-F4")?;
    let f5 = load(dir, "R-F5")?;

    let rt = |d: &str| geomean_row(&f1, d);
    let noc = |d: &str| geomean_row(&f3, d);
    let dram = |d: &str| geomean_row(&f4, d);

    let (ce_rt, cep_rt, arc_rt) = (rt("CE")?, rt("CE+")?, rt("ARC")?);
    let (ce_noc, cep_noc, arc_noc) = (noc("CE")?, noc("CE+")?, noc("ARC")?);
    let (ce_dram, cep_dram, arc_dram) = (dram("CE")?, dram("CE+")?, dram("ARC")?);

    // Scaling rows: CE+ and ARC run-time trend from min to max cores.
    let scaling = f5["data"]["rows"].as_array()?;
    let first = scaling.first()?;
    let last = scaling.last()?;
    let cep_trend = (first["CE+"].as_f64()?, last["CE+"].as_f64()?);
    let arc_trend = (first["ARC"].as_f64()?, last["ARC"].as_f64()?);

    let mut out = Vec::new();

    // C1: CE+ < CE in run time, and CE's off-chip overhead disappears.
    let c1 = cep_rt < ce_rt && ce_dram > 1.1 && cep_dram < 1.1;
    out.push(ClaimResult {
        id: "C1",
        claim: "CE+ improves run time over CE by keeping metadata on-chip",
        evidence: format!(
            "runtime geomean CE {ce_rt:.3} -> CE+ {cep_rt:.3}; off-chip traffic CE \
             {ce_dram:.3}x vs CE+ {cep_dram:.3}x"
        ),
        pass: c1,
    });

    // C2: CE+'s NoC load stays CE-like (high), and its relative run
    // time does not improve with core count.
    let c2 = cep_noc > 1.05 && (cep_noc - ce_noc).abs() < 0.1 && cep_trend.1 >= cep_trend.0 - 0.01;
    out.push(ClaimResult {
        id: "C2",
        claim: "CE+ still stresses the on-chip interconnect (eager invalidation + piggybacks)",
        evidence: format!(
            "NoC geomean CE {ce_noc:.3}x, CE+ {cep_noc:.3}x; CE+ runtime trend {:.3} -> {:.3} \
             (min -> max cores)",
            cep_trend.0, cep_trend.1
        ),
        pass: c2,
    });

    // C3: ARC beats CE, is competitive with CE+ (within 10% or
    // better), and loads both networks much less.
    let c3 = arc_rt < ce_rt
        && arc_rt <= cep_rt * 1.1
        && arc_noc < cep_noc - 0.1
        && arc_dram <= cep_dram + 0.05
        && arc_trend.1 <= arc_trend.0;
    out.push(ClaimResult {
        id: "C3",
        claim: "ARC outperforms CE, is competitive with CE+, with far less network stress",
        evidence: format!(
            "runtime ARC {arc_rt:.3} vs CE {ce_rt:.3} / CE+ {cep_rt:.3}; NoC ARC {arc_noc:.3}x \
             vs CE+ {cep_noc:.3}x; off-chip ARC {arc_dram:.3}x; ARC trend {:.3} -> {:.3}",
            arc_trend.0, arc_trend.1
        ),
        pass: c3,
    });

    Some(out)
}

/// Render the claims table.
pub fn render(claims: &[ClaimResult]) -> String {
    let mut t = Table::new(
        "Headline claims vs measurements",
        &["claim", "verdict", "evidence"],
    );
    for c in claims {
        t.row(vec![
            format!("{}: {}", c.id, c.claim),
            if c.pass { "PASS" } else { "FAIL" }.to_string(),
            c.evidence.clone(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::json;

    fn write_fig(dir: &Path, id: &str, data: Value) {
        std::fs::write(
            dir.join(format!("{id}.json")),
            json::to_string(&json!({"id": id, "data": data})),
        )
        .unwrap();
    }

    fn synthetic_results(dir: &Path, ce: f64, cep: f64, arc: f64) {
        let rows = |a: f64, b: f64, c: f64| {
            json!({"rows": [
                {"workload": "w1", "CE": a, "CE+": b, "ARC": c},
                {"workload": "geomean", "CE": a, "CE+": b, "ARC": c},
            ]})
        };
        write_fig(dir, "R-F1", rows(ce, cep, arc));
        write_fig(dir, "R-F3", rows(1.13, 1.13, 0.94));
        write_fig(dir, "R-F4", rows(1.68, 1.00, 0.99));
        write_fig(
            dir,
            "R-F5",
            json!({"rows": [
                {"cores": 8, "CE": ce, "CE+": cep, "ARC": 1.05},
                {"cores": 64, "CE": ce, "CE+": cep + 0.01, "ARC": 0.86},
            ]}),
        );
    }

    #[test]
    fn healthy_results_pass_all_claims() {
        let dir = std::env::temp_dir().join("rce_summary_ok");
        std::fs::create_dir_all(&dir).unwrap();
        synthetic_results(&dir, 1.105, 1.034, 0.932);
        let claims = evaluate(&dir).expect("results present");
        assert_eq!(claims.len(), 3);
        for c in &claims {
            assert!(c.pass, "{}: {}", c.id, c.evidence);
        }
        let rendered = render(&claims);
        assert!(rendered.contains("PASS"));
        assert!(!rendered.contains("FAIL"));
    }

    #[test]
    fn regressions_fail_the_right_claim() {
        let dir = std::env::temp_dir().join("rce_summary_bad");
        std::fs::create_dir_all(&dir).unwrap();
        // CE+ slower than CE: C1 must fail.
        synthetic_results(&dir, 1.0, 1.3, 0.95);
        let claims = evaluate(&dir).unwrap();
        assert!(!claims[0].pass, "C1 should fail");
    }

    #[test]
    fn missing_results_yield_none() {
        let dir = std::env::temp_dir().join("rce_summary_missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(evaluate(&dir).is_none());
    }
}
