//! Process-wide profiling hooks for the bench harness.
//!
//! The harness runs hundreds of simulations per invocation. When
//! profiling is on ([`enable`]), every simulation the runner executes
//! records its wall time plus the simulated work it represented
//! (operations and cycles) into the current named *phase* — typically
//! one phase per experiment. The rendered summary answers the two
//! questions a profiling session actually asks: where did the harness
//! spend its wall time, and how fast was the simulator going while it
//! was there (simulated events per second)?
//!
//! Off by default: [`record_run`] takes one uncontended mutex lock and
//! returns when profiling is disabled, so ordinary sweeps pay nothing
//! measurable. Phases are set by the driving thread between sweeps;
//! recording is safe from sweep worker threads, and per-run wall times
//! from parallel workers simply sum (the "wall s" column is therefore
//! CPU-seconds of simulation, not elapsed time, when `--jobs > 1`).

use rce_common::table::Table;
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated profile of one named phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    /// Phase name (usually an experiment's CLI name).
    pub name: String,
    /// Simulation runs recorded in this phase.
    pub runs: u64,
    /// Summed per-run wall time (CPU-seconds when runs were parallel).
    pub wall: Duration,
    /// Simulated operations (memory + sync) those runs committed.
    pub sim_ops: u64,
    /// Simulated cycles those runs covered.
    pub sim_cycles: u64,
}

impl PhaseProfile {
    /// Simulated operations per second of simulation time.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.sim_ops as f64 / s
        }
    }

    /// Simulated cycles per second of simulation time.
    pub fn cycles_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / s
        }
    }
}

struct Profiler {
    phases: Vec<PhaseProfile>,
    current: usize,
}

static PROFILER: Mutex<Option<Profiler>> = Mutex::new(None);

fn with<R>(f: impl FnOnce(&mut Profiler) -> R) -> Option<R> {
    PROFILER
        .lock()
        .expect("profiler lock poisoned")
        .as_mut()
        .map(f)
}

/// Turn profiling on, resetting any previous profile. Runs recorded
/// before the first [`set_phase`] land in a phase named `"-"`.
pub fn enable() {
    *PROFILER.lock().expect("profiler lock poisoned") = Some(Profiler {
        phases: vec![PhaseProfile {
            name: "-".into(),
            ..PhaseProfile::default()
        }],
        current: 0,
    });
}

/// True once [`enable`] has been called.
pub fn is_enabled() -> bool {
    PROFILER.lock().expect("profiler lock poisoned").is_some()
}

/// Enter a named phase (find-or-create). No-op while disabled.
pub fn set_phase(name: &str) {
    with(|p| match p.phases.iter().position(|ph| ph.name == name) {
        Some(i) => p.current = i,
        None => {
            p.phases.push(PhaseProfile {
                name: name.to_string(),
                ..PhaseProfile::default()
            });
            p.current = p.phases.len() - 1;
        }
    });
}

/// Record one finished simulation into the current phase. The runner
/// calls this for every run; it is a no-op while profiling is off.
pub fn record_run(wall: Duration, sim_ops: u64, sim_cycles: u64) {
    with(|p| {
        let ph = &mut p.phases[p.current];
        ph.runs += 1;
        ph.wall += wall;
        ph.sim_ops += sim_ops;
        ph.sim_cycles += sim_cycles;
    });
}

/// Snapshot all non-empty phases in first-entered order.
pub fn snapshot() -> Vec<PhaseProfile> {
    with(|p| p.phases.iter().filter(|ph| ph.runs > 0).cloned().collect()).unwrap_or_default()
}

/// Render the profile as a text table; empty string when profiling is
/// disabled or nothing was recorded.
pub fn render() -> String {
    let phases = snapshot();
    if phases.is_empty() {
        return String::new();
    }
    fn cells(ph: &PhaseProfile) -> Vec<String> {
        vec![
            ph.name.clone(),
            ph.runs.to_string(),
            format!("{:.2}", ph.wall.as_secs_f64()),
            format!("{:.2}", ph.ops_per_sec() / 1e6),
            format!("{:.2}", ph.cycles_per_sec() / 1e6),
        ]
    }
    let mut t = Table::new(
        "Profile: per-phase wall time and simulation throughput",
        &["phase", "runs", "wall s", "sim Mops/s", "sim Mcyc/s"],
    );
    let mut total = PhaseProfile {
        name: "total".into(),
        ..PhaseProfile::default()
    };
    for ph in &phases {
        total.runs += ph.runs;
        total.wall += ph.wall;
        total.sim_ops += ph.sim_ops;
        total.sim_cycles += ph.sim_cycles;
        t.row(cells(ph));
    }
    if phases.len() > 1 {
        t.row(cells(&total));
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    // One combined test: the profiler is process-global, and the test
    // binary runs tests on parallel threads — splitting this up would
    // let enable() calls race each other.
    #[test]
    fn profile_lifecycle() {
        enable();
        assert!(is_enabled());
        set_phase("alpha");
        record_run(Duration::from_millis(500), 1_000_000, 2_000_000);
        set_phase("beta");
        record_run(Duration::from_millis(250), 300, 400);
        set_phase("alpha"); // re-entry accumulates, not duplicates
        record_run(Duration::from_millis(500), 1_000_000, 2_000_000);

        let snap = snapshot();
        let alpha = snap.iter().find(|p| p.name == "alpha").unwrap();
        assert_eq!(alpha.runs, 2);
        assert_eq!(alpha.sim_ops, 2_000_000);
        // 2M ops over ~1s of recorded wall time.
        assert!((alpha.ops_per_sec() - 2_000_000.0).abs() < 1.0);
        assert!((alpha.cycles_per_sec() - 4_000_000.0).abs() < 1.0);

        let table = render();
        assert!(table.contains("alpha"));
        assert!(table.contains("beta"));
        assert!(table.contains("total"));

        let zero = PhaseProfile::default();
        assert_eq!(zero.ops_per_sec(), 0.0);
    }
}
