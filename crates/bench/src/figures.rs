//! Experiment implementations: one function per reconstructed table
//! or figure (see DESIGN.md for the experiment index).

use crate::runner::{
    run_one, run_one_cfg, run_one_obs, run_suite, EvalParams, RunKey, SweepResults,
};
use rce_common::json;
use rce_common::json::JsonValue as Value;
use rce_common::{geomean, table::Table, Histogram, MachineConfig, ObsConfig, ProtocolKind};
use rce_core::SimReport;
use rce_trace::{characterize, inject_races, WorkloadSpec};
use std::collections::HashMap;

/// A rendered experiment: the text table plus machine-readable rows.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Experiment ID (e.g. "R-F1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered text table.
    pub table: String,
    /// Machine-readable rows (written to `results/` by the binary).
    pub json: Value,
}

/// The experiment catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// R-T1: system configuration.
    Table1,
    /// R-T2: workload characteristics.
    Table2,
    /// R-F1: normalized run time.
    FigRuntime,
    /// R-F2: normalized energy with breakdown.
    FigEnergy,
    /// R-F3: normalized on-chip traffic.
    FigNoc,
    /// R-F4: normalized off-chip traffic.
    FigDram,
    /// R-F5: run time scaling with core count.
    FigScaling,
    /// R-F6: AIM size sensitivity.
    FigAim,
    /// R-T3: conflict detection vs the oracle.
    Table3,
    /// R-F7: NoC saturation.
    FigSaturation,
    /// R-F8: seed sensitivity of the headline geomeans.
    FigSeeds,
    /// R-F9: per-interval NoC utilization timeline (CE+ vs ARC).
    FigSaturationTimeline,
    /// R-F10: conflict heatmap (hottest lines / core pairs) from the
    /// forensics layer, CE+ vs ARC on racy workloads.
    FigConflictHeatmap,
}

impl Experiment {
    /// All experiments in presentation order.
    pub const ALL: [Experiment; 13] = [
        Experiment::Table1,
        Experiment::Table2,
        Experiment::FigRuntime,
        Experiment::FigEnergy,
        Experiment::FigNoc,
        Experiment::FigDram,
        Experiment::FigScaling,
        Experiment::FigAim,
        Experiment::Table3,
        Experiment::FigSaturation,
        Experiment::FigSeeds,
        Experiment::FigSaturationTimeline,
        Experiment::FigConflictHeatmap,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Table2 => "table2",
            Experiment::FigRuntime => "fig-runtime",
            Experiment::FigEnergy => "fig-energy",
            Experiment::FigNoc => "fig-noc",
            Experiment::FigDram => "fig-dram",
            Experiment::FigScaling => "fig-scaling",
            Experiment::FigAim => "fig-aim",
            Experiment::Table3 => "table3",
            Experiment::FigSaturation => "fig-saturation",
            Experiment::FigSeeds => "fig-seeds",
            Experiment::FigSaturationTimeline => "fig-saturation-timeline",
            Experiment::FigConflictHeatmap => "fig-conflict-heatmap",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Experiment> {
        Experiment::ALL.iter().copied().find(|e| e.name() == s)
    }

    /// Run the experiment. `sweep` is an optional pre-computed base
    /// sweep (all PARSEC workloads × all protocols at `params.cores`),
    /// reused by the four per-workload figures.
    pub fn run(self, params: &EvalParams, sweep: Option<&SweepResults>) -> FigureOutput {
        match self {
            Experiment::Table1 => table1(params),
            Experiment::Table2 => table2(params),
            Experiment::FigRuntime
            | Experiment::FigEnergy
            | Experiment::FigNoc
            | Experiment::FigDram => {
                let owned;
                let s = match sweep {
                    Some(s) => s,
                    None => {
                        owned = base_sweep(params);
                        &owned
                    }
                };
                match self {
                    Experiment::FigRuntime => fig_runtime(params, s),
                    Experiment::FigEnergy => fig_energy(params, s),
                    Experiment::FigNoc => fig_noc(params, s),
                    Experiment::FigDram => fig_dram(params, s),
                    _ => unreachable!(),
                }
            }
            Experiment::FigScaling => fig_scaling(params),
            Experiment::FigAim => fig_aim(params),
            Experiment::Table3 => table3(params),
            Experiment::FigSaturation => fig_saturation(params),
            Experiment::FigSeeds => fig_seeds(params),
            Experiment::FigSaturationTimeline => fig_saturation_timeline(params),
            Experiment::FigConflictHeatmap => fig_conflict_heatmap(params),
        }
    }
}

/// The base sweep every per-workload figure consumes.
pub fn base_sweep(params: &EvalParams) -> SweepResults {
    run_suite(
        &WorkloadSpec::PARSEC,
        &ProtocolKind::ALL,
        &[params.cores],
        params,
    )
}

fn get(sweep: &SweepResults, w: WorkloadSpec, p: ProtocolKind, cores: usize) -> &SimReport {
    sweep
        .get(&RunKey {
            workload: w,
            protocol: p,
            cores,
        })
        .expect("sweep must contain every (workload, protocol) pair")
}

/// R-T1: the simulated system's parameters.
fn table1(params: &EvalParams) -> FigureOutput {
    let cfg = MachineConfig::paper_default(params.cores, ProtocolKind::MesiBaseline);
    let mut t = Table::new(
        "Table I: simulated system configuration",
        &["parameter", "value"],
    );
    let rows: Vec<(String, String)> = vec![
        ("cores".into(), format!("{}", cfg.cores)),
        (
            "L1 (private)".into(),
            format!(
                "{} / {}-way / {} cyc",
                cfg.l1.capacity, cfg.l1.ways, cfg.l1.latency
            ),
        ),
        (
            "LLC (shared, banked)".into(),
            format!(
                "{} / {}-way / {} cyc",
                cfg.llc.capacity, cfg.llc.ways, cfg.llc.latency
            ),
        ),
        (
            "NoC".into(),
            format!(
                "2D mesh, {} cyc/hop, {} B/cyc/link, {} B flits",
                cfg.noc.hop_latency, cfg.noc.link_bandwidth, cfg.noc.flit_bytes
            ),
        ),
        (
            "DRAM".into(),
            format!(
                "{} ch x {} banks, {}/{} cyc hit/miss, {} B/cyc/ch",
                cfg.dram.channels,
                cfg.dram.banks_per_channel,
                cfg.dram.row_hit_latency,
                cfg.dram.row_miss_latency,
                cfg.dram.channel_bandwidth
            ),
        ),
        (
            "AIM".into(),
            format!(
                "{} entries / {}-way / {} cyc / {} B entries",
                cfg.aim.entries, cfg.aim.ways, cfg.aim.latency, cfg.aim.entry_bytes
            ),
        ),
        (
            "CE/CE+ piggyback".into(),
            format!("{} B per coherence message", cfg.metadata_piggyback_bytes),
        ),
        (
            "ARC signature".into(),
            format!("{} B per touched line", cfg.signature_bytes_per_line),
        ),
        ("workload scale".into(), format!("{}", params.scale)),
        ("seed".into(), format!("{}", params.seed)),
    ];
    for (k, v) in &rows {
        t.row(vec![k.clone(), v.clone()]);
    }
    FigureOutput {
        id: "R-T1",
        title: "System configuration",
        table: t.render(),
        json: json!(rows),
    }
}

/// R-T2: workload characteristics.
fn table2(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "Table II: workload characteristics",
        &[
            "workload",
            "mem ops",
            "sync ops",
            "regions",
            "ops/region",
            "lines",
            "shared lines",
            "shared acc %",
            "write %",
        ],
    );
    let mut rows = Vec::new();
    for w in WorkloadSpec::PARSEC {
        let p = w.build(params.cores, params.scale, params.seed);
        let c = characterize(&p);
        t.row(vec![
            c.name.clone(),
            c.mem_ops.to_string(),
            c.sync_ops.to_string(),
            c.regions.to_string(),
            format!("{:.1}", c.mean_region_len),
            c.footprint_lines.to_string(),
            c.shared_lines.to_string(),
            format!("{:.1}", c.shared_access_frac * 100.0),
            format!("{:.1}", c.write_frac * 100.0),
        ]);
        rows.push(json::to_value(&c));
    }
    FigureOutput {
        id: "R-T2",
        title: "Workload characteristics",
        table: t.render(),
        json: Value::Array(rows),
    }
}

/// Shared scaffolding for the four normalized-metric figures.
fn normalized_figure(
    params: &EvalParams,
    sweep: &SweepResults,
    id: &'static str,
    title: &'static str,
    metric_name: &str,
    metric: impl Fn(&SimReport) -> f64,
) -> FigureOutput {
    let mut t = Table::new(
        format!("{title} (normalized to MESI, {} cores)", params.cores),
        &["workload", "CE", "CE+", "ARC"],
    );
    let mut per_proto: HashMap<ProtocolKind, Vec<f64>> = HashMap::new();
    let mut rows = Vec::new();
    for w in WorkloadSpec::PARSEC {
        let base = metric(get(sweep, w, ProtocolKind::MesiBaseline, params.cores));
        let mut cells = vec![w.name().to_string()];
        let mut row = json!({ "workload": w.name() });
        for p in ProtocolKind::DETECTORS {
            let v = metric(get(sweep, w, p, params.cores));
            let norm = if base == 0.0 { 1.0 } else { v / base };
            per_proto.entry(p).or_default().push(norm.max(1e-9));
            cells.push(format!("{norm:.3}"));
            row[p.name()] = json!(norm);
        }
        t.row(cells);
        rows.push(row);
    }
    let mut cells = vec!["geomean".to_string()];
    let mut row = json!({ "workload": "geomean" });
    for p in ProtocolKind::DETECTORS {
        let g = geomean(&per_proto[&p]);
        cells.push(format!("{g:.3}"));
        row[p.name()] = json!(g);
    }
    t.row(cells);
    rows.push(row);
    FigureOutput {
        id,
        title,
        table: t.render(),
        json: json!({ "metric": metric_name, "cores": params.cores, "rows": rows }),
    }
}

/// R-F1: normalized run time.
fn fig_runtime(params: &EvalParams, sweep: &SweepResults) -> FigureOutput {
    normalized_figure(params, sweep, "R-F1", "Run time", "runtime", |r| {
        r.cycles.0 as f64
    })
}

/// R-F2: normalized energy, with component breakdown per design.
fn fig_energy(params: &EvalParams, sweep: &SweepResults) -> FigureOutput {
    let mut out = normalized_figure(params, sweep, "R-F2", "Energy", "energy", |r| {
        r.energy_total().0
    });
    // Append a geomean component-share table.
    let mut t = Table::new(
        "Energy breakdown (% of each design's total, geomean workload)",
        &["design", "L1", "LLC", "AIM", "Dir", "NoC", "DRAM", "Static"],
    );
    let mut breakdown_rows = Vec::new();
    for p in ProtocolKind::ALL {
        let mut shares = [0.0f64; 7];
        let mut n = 0;
        for w in WorkloadSpec::PARSEC {
            let r = get(sweep, w, p, params.cores);
            let total = r.energy_total().0.max(1e-12);
            for (i, (_, v)) in r.energy.components().iter().enumerate() {
                shares[i] += v.0 / total;
            }
            n += 1;
        }
        let mut cells = vec![p.name().to_string()];
        let mut row = json!({ "design": p.name() });
        let names = ["L1", "LLC", "AIM", "Dir", "NoC", "DRAM", "Static"];
        for (i, s) in shares.iter().enumerate() {
            let pct = s / n as f64 * 100.0;
            cells.push(format!("{pct:.1}"));
            row[names[i]] = json!(pct);
        }
        t.row(cells);
        breakdown_rows.push(row);
    }
    out.table.push('\n');
    out.table.push_str(&t.render());
    out.json["breakdown"] = Value::Array(breakdown_rows);
    out
}

/// R-F3: normalized on-chip traffic, plus the metadata/invalidation
/// decomposition that explains it.
fn fig_noc(params: &EvalParams, sweep: &SweepResults) -> FigureOutput {
    let mut out = normalized_figure(
        params,
        sweep,
        "R-F3",
        "On-chip network traffic",
        "noc_bytes",
        |r| r.noc_bytes().as_f64(),
    );
    let mut t = Table::new(
        "NoC traffic composition (total MiB across PARSEC suite)",
        &["design", "total", "data", "inv+ack", "metadata"],
    );
    let mut comp_rows = Vec::new();
    for p in ProtocolKind::ALL {
        let (mut total, mut data, mut inv, mut meta) = (0u64, 0u64, 0u64, 0u64);
        for w in WorkloadSpec::PARSEC {
            let r = get(sweep, w, p, params.cores);
            total += r.noc.total_bytes().0;
            data += r.noc.bytes[rce_noc::MsgClass::Data.index()].0
                + r.noc.bytes[rce_noc::MsgClass::Writeback.index()].0;
            inv += r.noc.invalidation_bytes().0;
            meta += r.noc.metadata_bytes().0;
        }
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        t.row(vec![
            p.name().to_string(),
            format!("{:.1}", mib(total)),
            format!("{:.1}", mib(data)),
            format!("{:.1}", mib(inv)),
            format!("{:.1}", mib(meta)),
        ]);
        comp_rows.push(json!({
            "design": p.name(), "total": total, "data": data,
            "inv_ack": inv, "metadata": meta
        }));
    }
    out.table.push('\n');
    out.table.push_str(&t.render());
    out.json["composition"] = Value::Array(comp_rows);
    out
}

/// R-F4: normalized off-chip traffic, with the metadata share.
fn fig_dram(params: &EvalParams, sweep: &SweepResults) -> FigureOutput {
    let mut out = normalized_figure(
        params,
        sweep,
        "R-F4",
        "Off-chip memory traffic",
        "dram_bytes",
        |r| r.dram_bytes().as_f64(),
    );
    let mut t = Table::new(
        "Off-chip metadata share (MiB across PARSEC suite)",
        &["design", "data", "metadata"],
    );
    let mut comp_rows = Vec::new();
    for p in ProtocolKind::ALL {
        let (mut data, mut meta) = (0u64, 0u64);
        for w in WorkloadSpec::PARSEC {
            let r = get(sweep, w, p, params.cores);
            meta += r.dram.metadata_bytes().0;
            data += r.dram.total_bytes().0 - r.dram.metadata_bytes().0;
        }
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        t.row(vec![
            p.name().to_string(),
            format!("{:.1}", mib(data)),
            format!("{:.1}", mib(meta)),
        ]);
        comp_rows.push(json!({ "design": p.name(), "data": data, "metadata": meta }));
    }
    out.table.push('\n');
    out.table.push_str(&t.render());
    out.json["composition"] = Value::Array(comp_rows);
    out
}

/// Core counts used by the scaling and saturation figures.
const SCALING_CORES: [usize; 4] = [8, 16, 32, 64];

/// R-F5: geomean normalized run time vs core count.
fn fig_scaling(params: &EvalParams) -> FigureOutput {
    let sweep = run_suite(
        &WorkloadSpec::PARSEC,
        &ProtocolKind::ALL,
        &SCALING_CORES,
        params,
    );
    let mut t = Table::new(
        "Run time vs core count (geomean over PARSEC, normalized to MESI at each count)",
        &["cores", "CE", "CE+", "ARC"],
    );
    let mut rows = Vec::new();
    for c in SCALING_CORES {
        let mut cells = vec![c.to_string()];
        let mut row = json!({ "cores": c });
        for p in ProtocolKind::DETECTORS {
            let norms: Vec<f64> = WorkloadSpec::PARSEC
                .iter()
                .map(|w| {
                    let base = get(&sweep, *w, ProtocolKind::MesiBaseline, c).cycles.0 as f64;
                    let v = get(&sweep, *w, p, c).cycles.0 as f64;
                    (v / base).max(1e-9)
                })
                .collect();
            let g = geomean(&norms);
            cells.push(format!("{g:.3}"));
            row[p.name()] = json!(g);
        }
        t.row(cells);
        rows.push(row);
    }
    FigureOutput {
        id: "R-F5",
        title: "Scaling with core count",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// AIM entry counts for the sensitivity sweep. The interesting knee
/// is where the AIM stops covering the metadata working set, so the
/// sweep reaches well below the default (8K entries).
const AIM_SIZES: [u64; 5] = [256, 1024, 4 * 1024, 16 * 1024, 64 * 1024];

/// Workloads with enough metadata pressure to exercise the AIM.
const AIM_WORKLOADS: [WorkloadSpec; 4] = [
    WorkloadSpec::Canneal,
    WorkloadSpec::Ferret,
    WorkloadSpec::Streamcluster,
    WorkloadSpec::Bodytrack,
];

/// R-F6: AIM size sensitivity for CE+ and ARC.
fn fig_aim(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "AIM sensitivity (geomean over metadata-heavy workloads)",
        &[
            "entries",
            "CE+ hit%",
            "CE+ runtime",
            "ARC hit%",
            "ARC runtime",
        ],
    );
    let mut rows = Vec::new();
    // Baselines (per workload, at default AIM) for normalization.
    let base: HashMap<WorkloadSpec, f64> = AIM_WORKLOADS
        .iter()
        .map(|w| {
            let r = run_one(
                *w,
                ProtocolKind::MesiBaseline,
                params.cores,
                params.scale,
                params.seed,
            );
            (*w, r.cycles.0 as f64)
        })
        .collect();
    for entries in AIM_SIZES {
        let mut cells = vec![entries.to_string()];
        let mut row = json!({ "entries": entries });
        for p in [ProtocolKind::CePlus, ProtocolKind::Arc] {
            let mut hits = Vec::new();
            let mut norms = Vec::new();
            for w in AIM_WORKLOADS {
                let cfg = MachineConfig::paper_default(params.cores, p).with_aim_entries(entries);
                let r = run_one_cfg(w, &cfg, params.scale, params.seed);
                if let Some(a) = r.aim {
                    hits.push(a.hit_rate());
                }
                norms.push((r.cycles.0 as f64 / base[&w]).max(1e-9));
            }
            let hit = if hits.is_empty() {
                0.0
            } else {
                hits.iter().sum::<f64>() / hits.len() as f64
            };
            let g = geomean(&norms);
            cells.push(format!("{:.1}", hit * 100.0));
            cells.push(format!("{g:.3}"));
            row[p.name()] = json!({ "hit_rate": hit, "runtime": g });
        }
        t.row(cells);
        rows.push(row);
    }
    FigureOutput {
        id: "R-F6",
        title: "AIM size sensitivity",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// R-T3: exception delivery — every design must agree with the oracle.
fn table3(params: &EvalParams) -> FigureOutput {
    let mut t = Table::new(
        "Table III: region conflicts detected (vs oracle ground truth)",
        &["workload", "oracle", "CE", "CE+", "ARC", "all match"],
    );
    let mut rows = Vec::new();
    // Naturally racy workloads plus race-injected race-free ones.
    let mut cases: Vec<(String, rce_trace::Program)> = vec![
        (
            "canneal".into(),
            WorkloadSpec::Canneal.build(params.cores, params.scale.min(2), params.seed),
        ),
        (
            "racy_pair".into(),
            WorkloadSpec::RacyPair.build(params.cores, params.scale, params.seed),
        ),
    ];
    for (w, n) in [
        (WorkloadSpec::Blackscholes, 4usize),
        (WorkloadSpec::Streamcluster, 8),
    ] {
        let mut p = w.build(params.cores, 1, params.seed);
        inject_races(&mut p, n, params.seed);
        cases.push((p.name.clone(), p));
    }
    for (name, program) in &cases {
        let mut counts = Vec::new();
        let mut oracle_count = 0;
        let mut all_match = true;
        for proto in ProtocolKind::DETECTORS {
            let cfg = MachineConfig::paper_default(params.cores, proto);
            let r = rce_core::Machine::new(&cfg)
                .expect("valid config")
                .run(program)
                .expect("valid program");
            oracle_count = r.oracle_conflicts.len();
            all_match &= r.matches_oracle();
            counts.push(r.exceptions.len());
        }
        t.row(vec![
            name.clone(),
            oracle_count.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            if all_match { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(json!({
            "workload": name, "oracle": oracle_count,
            "CE": counts[0], "CE+": counts[1], "ARC": counts[2],
            "all_match": all_match
        }));
    }
    FigureOutput {
        id: "R-T3",
        title: "Conflict detection vs oracle",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// Workloads whose writes hit widely-shared lines — the invalidation
/// storms that make eager coherence stress the NoC as cores grow.
const SATURATION_WORKLOADS: [WorkloadSpec; 4] = [
    WorkloadSpec::Canneal,
    WorkloadSpec::Bodytrack,
    WorkloadSpec::Streamcluster,
    WorkloadSpec::FalseSharing,
];

/// R-F7: NoC saturation vs core count.
fn fig_saturation(params: &EvalParams) -> FigureOutput {
    let sweep = run_suite(
        &SATURATION_WORKLOADS,
        &ProtocolKind::ALL,
        &SCALING_CORES,
        params,
    );
    let mut t = Table::new(
        "NoC load vs core count (totals over invalidation-heavy workloads)",
        &[
            "cores",
            "design",
            "NoC MiB",
            "inv+ack MiB",
            "peak link util %",
            "mean queue delay (cyc)",
            "qdelay p50/p95/p99 (cyc)",
        ],
    );
    let mut rows = Vec::new();
    for c in SCALING_CORES {
        for p in ProtocolKind::ALL {
            let (mut util, mut delay, mut bytes, mut inv) = (0.0f64, 0.0, 0u64, 0u64);
            // A mean hides saturation onset; merge the per-message
            // queue-delay histograms so the tail is visible too.
            let mut qhist = Histogram::new();
            for w in SATURATION_WORKLOADS {
                let r = get(&sweep, w, p, c);
                util = util.max(r.noc.peak_link_utilization);
                delay += r.noc.mean_queue_delay();
                bytes += r.noc.total_bytes().0;
                inv += r.noc.invalidation_bytes().0;
                qhist.merge(&r.noc.queue_delay_hist);
            }
            let (p50, p95, p99) = (
                qhist.percentile(50.0),
                qhist.percentile(95.0),
                qhist.percentile(99.0),
            );
            let n = SATURATION_WORKLOADS.len() as f64;
            let mib = |b: u64| b as f64 / (1 << 20) as f64;
            t.row(vec![
                c.to_string(),
                p.name().to_string(),
                format!("{:.1}", mib(bytes)),
                format!("{:.2}", mib(inv)),
                format!("{:.1}", util * 100.0),
                format!("{:.1}", delay / n),
                format!("{p50}/{p95}/{p99}"),
            ]);
            rows.push(json!({
                "cores": c, "design": p.name(),
                "noc_bytes": bytes, "inv_ack_bytes": inv,
                "peak_util": util, "mean_queue_delay": delay / n,
                "queue_delay_p50": p50, "queue_delay_p95": p95,
                "queue_delay_p99": p99
            }));
        }
    }
    FigureOutput {
        id: "R-F7",
        title: "NoC saturation",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

/// Metrics-sampling interval (cycles) for the R-F9 timeline and the
/// `paper trace` subcommand.
pub const TIMELINE_INTERVAL: u64 = 4096;

/// At most this many timeline rows in the rendered text table (the
/// JSON keeps every sample; long runs are strided for display).
const TIMELINE_TABLE_ROWS: usize = 48;

/// R-F9: per-interval NoC load on a saturating workload. Where R-F7
/// reports end-of-run totals, this shows the *shape* over time: CE+'s
/// eager invalidation storms spike per-interval link utilization and
/// queue delay around conflicting phases, while ARC — which replaces
/// invalidation traffic with self-invalidation at region boundaries —
/// stays comparatively flat.
fn fig_saturation_timeline(params: &EvalParams) -> FigureOutput {
    const DESIGNS: [ProtocolKind; 2] = [ProtocolKind::CePlus, ProtocolKind::Arc];
    let w = WorkloadSpec::FalseSharing;
    let obs = ObsConfig {
        trace: None,
        sample_interval: Some(TIMELINE_INTERVAL),
        forensics: None,
    };
    let timelines: Vec<(ProtocolKind, rce_common::MetricsTimeline)> = DESIGNS
        .iter()
        .map(|&p| {
            let cfg = MachineConfig::paper_default(params.cores, p);
            let r = run_one_obs(w, &cfg, params.scale, params.seed, obs.clone());
            (p, r.timeline.expect("sampling was requested"))
        })
        .collect();

    let mut t = Table::new(
        "NoC utilization timeline on false_sharing (one row per sampling interval)",
        &[
            "cycle",
            "CE+ peak util %",
            "CE+ mean util %",
            "CE+ qdelay (cyc)",
            "ARC peak util %",
            "ARC mean util %",
            "ARC qdelay (cyc)",
        ],
    );
    let n = timelines
        .iter()
        .map(|(_, tl)| tl.samples.len())
        .max()
        .unwrap_or(0);
    let stride = n.div_ceil(TIMELINE_TABLE_ROWS).max(1);
    for i in (0..n).step_by(stride) {
        // Runs end at different cycles; label the row with whichever
        // design still has a sample at this interval index.
        let cycle = timelines
            .iter()
            .find_map(|(_, tl)| tl.samples.get(i).map(|s| s.cycle))
            .unwrap_or(0);
        let mut cells = vec![cycle.to_string()];
        for (_, tl) in &timelines {
            match tl.samples.get(i) {
                Some(s) => {
                    cells.push(format!("{:.1}", s.noc_peak_link_util * 100.0));
                    cells.push(format!("{:.1}", s.noc_mean_link_util * 100.0));
                    cells.push(s.noc_queue_delay.to_string());
                }
                None => cells.extend(["-".to_string(), "-".to_string(), "-".to_string()]),
            }
        }
        t.row(cells);
    }

    let series: Vec<Value> = timelines
        .iter()
        .map(|(p, tl)| {
            json!({
                "design": p.name(),
                "interval": tl.interval,
                "samples": tl.samples,
            })
        })
        .collect();
    FigureOutput {
        id: "R-F9",
        title: "NoC saturation timeline (CE+ vs ARC)",
        table: t.render(),
        json: json!({
            "workload": w.name(),
            "interval": TIMELINE_INTERVAL,
            "series": series
        }),
    }
}

/// Hottest heatmap entries shown per row of R-F10.
const HEATMAP_TOP_K: usize = 5;

/// R-F10: conflict heatmap from the forensics layer. For the racy
/// workloads, which lines and which core pairs carry the conflicts,
/// and do CE+ (eager invalidation detection) and ARC (LLC-side
/// registration) agree on where the heat is? The detection *sites*
/// differ by design; the hot lines must not.
fn fig_conflict_heatmap(params: &EvalParams) -> FigureOutput {
    const DESIGNS: [ProtocolKind; 2] = [ProtocolKind::CePlus, ProtocolKind::Arc];
    let mut t = Table::new(
        "Conflict heatmap (forensics): hottest lines and core pairs",
        &[
            "workload",
            "design",
            "detections",
            "delivered",
            "hottest lines (line:count)",
            "hottest pairs (a-b:count)",
        ],
    );
    let mut rows = Vec::new();
    for (w, scale) in [
        (WorkloadSpec::RacyPair, params.scale),
        (WorkloadSpec::Canneal, params.scale.min(2)),
    ] {
        for p in DESIGNS {
            let cfg = MachineConfig::paper_default(params.cores, p);
            let r = run_one_obs(w, &cfg, scale, params.seed, ObsConfig::forensics_only());
            let f = r.forensics.expect("forensics was requested");
            let lines = f
                .hottest_lines(HEATMAP_TOP_K)
                .iter()
                .map(|h| format!("{}:{}", h.line, h.conflicts))
                .collect::<Vec<_>>()
                .join(" ");
            let pairs = f
                .hottest_pairs(HEATMAP_TOP_K)
                .iter()
                .map(|h| format!("{}-{}:{}", h.core_a, h.core_b, h.conflicts))
                .collect::<Vec<_>>()
                .join(" ");
            t.row(vec![
                w.name().to_string(),
                p.name().to_string(),
                f.total_detections.to_string(),
                f.delivered.to_string(),
                if lines.is_empty() { "-".into() } else { lines },
                if pairs.is_empty() { "-".into() } else { pairs },
            ]);
            rows.push(json!({
                "workload": w.name(),
                "design": p.name(),
                "total_detections": f.total_detections,
                "delivered": f.delivered,
                "lines": f.hottest_lines(HEATMAP_TOP_K).to_vec(),
                "core_pairs": f.hottest_pairs(HEATMAP_TOP_K).to_vec(),
                "region_lifetime_mean": f.region_lifetime.mean(),
            }));
        }
    }
    FigureOutput {
        id: "R-F10",
        title: "Conflict heatmap (CE+ vs ARC)",
        table: t.render(),
        json: json!({ "top_k": HEATMAP_TOP_K, "rows": rows }),
    }
}

/// R-F8: are the headline geomeans artifacts of one seed? Re-run the
/// runtime figure's geomean at several seeds and report the spread.
fn fig_seeds(params: &EvalParams) -> FigureOutput {
    const SEEDS: [u64; 3] = [42, 1337, 90210];
    let mut t = Table::new(
        "Seed sensitivity (runtime geomean normalized to MESI)",
        &["seed", "CE", "CE+", "ARC"],
    );
    let mut rows = Vec::new();
    let mut per_design: HashMap<ProtocolKind, Vec<f64>> = HashMap::new();
    for seed in SEEDS {
        let mut p = *params;
        p.seed = seed;
        let sweep = base_sweep(&p);
        let mut cells = vec![seed.to_string()];
        let mut row = json!({ "seed": seed });
        for proto in ProtocolKind::DETECTORS {
            let norms: Vec<f64> = WorkloadSpec::PARSEC
                .iter()
                .map(|w| {
                    let base = get(&sweep, *w, ProtocolKind::MesiBaseline, p.cores)
                        .cycles
                        .0 as f64;
                    let v = get(&sweep, *w, proto, p.cores).cycles.0 as f64;
                    (v / base).max(1e-9)
                })
                .collect();
            let g = geomean(&norms);
            per_design.entry(proto).or_default().push(g);
            cells.push(format!("{g:.3}"));
            row[proto.name()] = json!(g);
        }
        t.row(cells);
        rows.push(row);
    }
    let mut cells = vec!["spread".to_string()];
    let mut row = json!({ "seed": "spread" });
    for proto in ProtocolKind::DETECTORS {
        let v = &per_design[&proto];
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        cells.push(format!("{:.3}", max - min));
        row[proto.name()] = json!(max - min);
    }
    t.row(cells);
    rows.push(row);
    FigureOutput {
        id: "R-F8",
        title: "Seed sensitivity",
        table: t.render(),
        json: json!({ "rows": rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> EvalParams {
        EvalParams {
            cores: 4,
            scale: 1,
            seed: 1,
            jobs: 0,
        }
    }

    #[test]
    fn conflict_heatmap_localizes_the_racy_pair_race() {
        let f = Experiment::FigConflictHeatmap.run(&tiny_params(), None);
        let rows = f.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 4, "two workloads x CE+/ARC");
        let racy: Vec<_> = rows
            .iter()
            .filter(|r| r["workload"] == json!("racy_pair"))
            .collect();
        assert_eq!(racy.len(), 2);
        let mut hottest = Vec::new();
        for r in &racy {
            assert!(r["total_detections"].as_f64().unwrap() > 0.0);
            assert!(r["delivered"].as_f64().unwrap() > 0.0);
            let lines = r["lines"].as_array().unwrap();
            assert!(!lines.is_empty());
            hottest.push(lines[0]["line"].clone());
        }
        // CE+ and ARC detect at different sites but must agree on
        // where the heat is.
        assert_eq!(hottest[0], hottest[1]);
    }

    #[test]
    fn table1_renders() {
        let f = Experiment::Table1.run(&tiny_params(), None);
        assert!(f.table.contains("cores"));
        assert!(f.table.contains("AIM"));
        assert_eq!(f.id, "R-T1");
    }

    #[test]
    fn table2_covers_suite() {
        let f = Experiment::Table2.run(&tiny_params(), None);
        for w in WorkloadSpec::PARSEC {
            assert!(f.table.contains(w.name()), "{} missing", w.name());
        }
        assert_eq!(f.json.as_array().unwrap().len(), 13);
    }

    #[test]
    fn runtime_figure_has_geomean() {
        let params = tiny_params();
        let sweep = base_sweep(&params);
        let f = Experiment::FigRuntime.run(&params, Some(&sweep));
        assert!(f.table.contains("geomean"));
        let rows = f.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 14); // 13 workloads + geomean
                                    // All normalized values are positive and finite.
        for r in rows {
            for p in ["CE", "CE+", "ARC"] {
                let v = r[p].as_f64().unwrap();
                assert!(v.is_finite() && v > 0.0, "{p}: {v}");
            }
        }
    }

    #[test]
    fn figure_json_payload_parse_roundtrip() {
        // The `paper` binary writes results/<id>.json in exactly this
        // shape; assert the emitted text parses back to the same value.
        let f = Experiment::Table2.run(&tiny_params(), None);
        let payload = json!({
            "id": f.id,
            "title": f.title,
            "cores": 4,
            "scale": 1,
            "seed": 1,
            "data": f.json,
        });
        let text = json::to_string_pretty(&payload);
        let back = Value::parse(&text).expect("emitted JSON must parse");
        assert_eq!(back, payload);
        assert_eq!(back["id"], f.id);
        assert_eq!(back["data"].as_array().unwrap().len(), 13);
        // Compact form round-trips too.
        let compact = json::to_string(&payload);
        assert_eq!(Value::parse(&compact).unwrap(), payload);
    }

    #[test]
    fn saturation_timeline_covers_both_designs() {
        let f = Experiment::FigSaturationTimeline.run(&tiny_params(), None);
        assert_eq!(f.id, "R-F9");
        assert!(f.table.contains("CE+ peak util %"));
        assert!(f.table.contains("ARC peak util %"));
        let series = f.json["series"].as_array().unwrap();
        let designs: Vec<&str> = series
            .iter()
            .map(|s| s["design"].as_str().unwrap())
            .collect();
        assert_eq!(designs, ["CE+", "ARC"]);
        for s in series {
            assert_eq!(s["interval"].as_u64().unwrap(), TIMELINE_INTERVAL);
            let samples = s["samples"].as_array().unwrap();
            assert!(!samples.is_empty(), "{}: empty timeline", s["design"]);
            let mut prev = 0u64;
            for smp in samples {
                let cycle = smp["cycle"].as_u64().unwrap();
                assert!(cycle > prev, "sample cycles must be increasing");
                prev = cycle;
                for key in ["noc_peak_link_util", "noc_mean_link_util"] {
                    let u = smp[key].as_f64().unwrap();
                    assert!((0.0..=1.0).contains(&u), "{key} out of range: {u}");
                }
            }
        }
    }

    #[test]
    fn experiment_names_roundtrip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::parse(e.name()), Some(e));
        }
        assert_eq!(Experiment::parse("nope"), None);
    }

    #[test]
    fn table3_all_engines_match_their_oracles() {
        let f = Experiment::Table3.run(&tiny_params(), None);
        let rows = f.json["rows"].as_array().unwrap();
        assert!(rows.len() >= 4);
        for r in rows {
            assert_eq!(
                r["all_match"],
                json!(true),
                "engine/oracle mismatch in {}",
                r["workload"]
            );
        }
        assert!(!f.table.contains("NO"));
    }

    #[test]
    fn aim_sweep_hit_rates_monotone_nondecreasing() {
        let f = Experiment::FigAim.run(&tiny_params(), None);
        let rows = f.json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 5);
        for design in ["CE+", "ARC"] {
            let hits: Vec<f64> = rows
                .iter()
                .map(|r| r[design]["hit_rate"].as_f64().unwrap())
                .collect();
            for w in hits.windows(2) {
                assert!(
                    w[1] >= w[0] - 0.02,
                    "{design}: hit rate should not fall as the AIM grows: {hits:?}"
                );
            }
        }
    }

    #[test]
    fn energy_breakdown_shares_sum_to_one() {
        let params = tiny_params();
        let sweep = base_sweep(&params);
        let f = Experiment::FigEnergy.run(&params, Some(&sweep));
        for row in f.json["breakdown"].as_array().unwrap() {
            let total: f64 = ["L1", "LLC", "AIM", "Dir", "NoC", "DRAM", "Static"]
                .iter()
                .map(|k| row[*k].as_f64().unwrap())
                .sum();
            assert!(
                (total - 100.0).abs() < 0.5,
                "{}: breakdown sums to {total}",
                row["design"]
            );
        }
    }
}
