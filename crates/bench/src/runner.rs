//! Parallel sweep execution.

use parking_lot::Mutex;
use rce_common::{MachineConfig, ProtocolKind};
use rce_core::{Machine, SimReport};
use rce_trace::WorkloadSpec;
use std::collections::HashMap;

/// Evaluation parameters shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct EvalParams {
    /// Core count (threads are pinned 1:1).
    pub cores: usize,
    /// Workload scale factor (linear in trace length).
    pub scale: u32,
    /// Workload seed.
    pub seed: u64,
    /// OS threads for the sweep (0 = all available).
    pub jobs: usize,
}

impl Default for EvalParams {
    fn default() -> Self {
        EvalParams {
            cores: 32,
            scale: 3,
            seed: 42,
            jobs: 0,
        }
    }
}

/// Identifies one simulation run of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload.
    pub workload: WorkloadSpec,
    /// Design.
    pub protocol: ProtocolKind,
    /// Core count.
    pub cores: usize,
}

/// Run one simulation.
pub fn run_one(
    workload: WorkloadSpec,
    protocol: ProtocolKind,
    cores: usize,
    scale: u32,
    seed: u64,
) -> SimReport {
    run_one_cfg(
        workload,
        &MachineConfig::paper_default(cores, protocol),
        scale,
        seed,
    )
}

/// Run one simulation with an explicit machine configuration.
pub fn run_one_cfg(
    workload: WorkloadSpec,
    cfg: &MachineConfig,
    scale: u32,
    seed: u64,
) -> SimReport {
    let program = workload.build(cfg.cores, scale, seed);
    Machine::new(cfg)
        .expect("paper_default configs are valid")
        .run(&program)
        .expect("generated workloads are valid programs")
}

/// Run a full sweep in parallel; returns reports keyed by run.
pub fn run_suite(
    workloads: &[WorkloadSpec],
    protocols: &[ProtocolKind],
    core_counts: &[usize],
    params: &EvalParams,
) -> HashMap<RunKey, SimReport> {
    let mut keys = Vec::new();
    for &w in workloads {
        for &p in protocols {
            for &c in core_counts {
                keys.push(RunKey {
                    workload: w,
                    protocol: p,
                    cores: c,
                });
            }
        }
    }
    let jobs = if params.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        params.jobs
    }
    .min(keys.len().max(1));

    let work = Mutex::new(keys);
    let results = Mutex::new(HashMap::new());
    crossbeam::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|_| loop {
                let key = {
                    let mut w = work.lock();
                    match w.pop() {
                        Some(k) => k,
                        None => break,
                    }
                };
                let report = run_one(
                    key.workload,
                    key.protocol,
                    key.cores,
                    params.scale,
                    params.seed,
                );
                results.lock().insert(key, report);
            });
        }
    })
    .expect("sweep threads must not panic");
    results.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_produces_report() {
        let r = run_one(WorkloadSpec::PingPong, ProtocolKind::MesiBaseline, 2, 1, 1);
        assert_eq!(r.cores, 2);
        assert!(r.cycles.0 > 0);
    }

    #[test]
    fn suite_covers_cross_product() {
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 1,
            jobs: 2,
        };
        let out = run_suite(
            &[WorkloadSpec::PingPong, WorkloadSpec::PrivateOnly],
            &[ProtocolKind::MesiBaseline, ProtocolKind::Arc],
            &[2],
            &params,
        );
        assert_eq!(out.len(), 4);
        for (k, r) in &out {
            assert_eq!(r.protocol, k.protocol);
            assert_eq!(r.workload.as_str(), k.workload.name());
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = run_one(WorkloadSpec::PingPong, ProtocolKind::Ce, 2, 1, 7);
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 7,
            jobs: 4,
        };
        let out = run_suite(
            &[WorkloadSpec::PingPong],
            &[ProtocolKind::Ce],
            &[2],
            &params,
        );
        let parallel = out.values().next().unwrap();
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.noc.total_bytes(), parallel.noc.total_bytes());
    }
}
