//! Parallel sweep execution.
//!
//! Built on `std::thread::scope` and `std::sync::Mutex` only: workers
//! claim work-queue indices through a shared counter (FIFO), and each
//! finished report lands in its key's pre-assigned slot, so the
//! returned [`SweepResults`] is always in cross-product order no
//! matter how the OS schedules the workers.

use rce_common::{MachineConfig, ObsConfig, ProtocolKind, RceError, RceResult};
use rce_core::{Machine, SimReport};
use rce_trace::WorkloadSpec;
use std::panic::AssertUnwindSafe;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Lock acquisition that survives poisoning. Every mutex in the sweep
/// guards plain data (a cursor integer, a result slot) that is valid
/// at every sequence point, so a worker that panicked while holding
/// one leaves nothing half-updated — recover the guard instead of
/// cascading the panic into every other worker and losing the whole
/// sweep's results.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Evaluation parameters shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct EvalParams {
    /// Core count (threads are pinned 1:1).
    pub cores: usize,
    /// Workload scale factor (linear in trace length).
    pub scale: u32,
    /// Workload seed.
    pub seed: u64,
    /// OS threads for the sweep (0 = all available).
    pub jobs: usize,
}

impl Default for EvalParams {
    fn default() -> Self {
        EvalParams {
            cores: 32,
            scale: 3,
            seed: 42,
            jobs: 0,
        }
    }
}

/// Identifies one simulation run of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Workload.
    pub workload: WorkloadSpec,
    /// Design.
    pub protocol: ProtocolKind,
    /// Core count.
    pub cores: usize,
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{:?}/{}c",
            self.workload.name(),
            self.protocol,
            self.cores
        )
    }
}

/// Sweep reports in deterministic cross-product order
/// (workload-major, then protocol, then core count) — the order
/// [`run_suite`] enqueued them.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    entries: Vec<(RunKey, SimReport)>,
}

impl SweepResults {
    /// The report for `key`, if the sweep ran it.
    pub fn get(&self, key: &RunKey) -> Option<&SimReport> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, r)| r)
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys in sweep order.
    pub fn keys(&self) -> impl Iterator<Item = &RunKey> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Reports in sweep order.
    pub fn values(&self) -> impl Iterator<Item = &SimReport> {
        self.entries.iter().map(|(_, r)| r)
    }

    /// `(key, report)` pairs in sweep order.
    pub fn iter(&self) -> impl Iterator<Item = &(RunKey, SimReport)> {
        self.entries.iter()
    }
}

impl IntoIterator for SweepResults {
    type Item = (RunKey, SimReport);
    type IntoIter = std::vec::IntoIter<(RunKey, SimReport)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a SweepResults {
    type Item = &'a (RunKey, SimReport);
    type IntoIter = std::slice::Iter<'a, (RunKey, SimReport)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Run one simulation.
pub fn run_one(
    workload: WorkloadSpec,
    protocol: ProtocolKind,
    cores: usize,
    scale: u32,
    seed: u64,
) -> SimReport {
    run_one_cfg(
        workload,
        &MachineConfig::paper_default(cores, protocol),
        scale,
        seed,
    )
}

/// Run one simulation with an explicit machine configuration.
pub fn run_one_cfg(
    workload: WorkloadSpec,
    cfg: &MachineConfig,
    scale: u32,
    seed: u64,
) -> SimReport {
    run_one_obs(workload, cfg, scale, seed, ObsConfig::default())
}

/// Run one simulation with explicit configuration *and* observability
/// (event trace and/or interval metrics timeline — see
/// `rce_common::obs`). This is also the harness's profiling
/// choke-point: every run's wall time and simulated work are recorded
/// into the current [`crate::profile`] phase (a no-op unless profiling
/// was enabled).
pub fn run_one_obs(
    workload: WorkloadSpec,
    cfg: &MachineConfig,
    scale: u32,
    seed: u64,
    obs: ObsConfig,
) -> SimReport {
    let program = workload.build(cfg.cores, scale, seed);
    let t0 = Instant::now();
    let report = Machine::new(cfg)
        .expect("paper_default configs are valid")
        .with_observability(obs)
        .run(&program)
        .expect("generated workloads are valid programs");
    crate::profile::record_run(
        t0.elapsed(),
        report.mem_ops + report.sync_ops,
        report.cycles.0,
    );
    report
}

/// Run a full sweep in parallel; returns reports in cross-product
/// (FIFO) key order regardless of worker scheduling. Panics if any
/// run fails — paper workloads always simulate cleanly, so a failure
/// here is a harness bug (use [`run_suite_with`] for fallible runs).
pub fn run_suite(
    workloads: &[WorkloadSpec],
    protocols: &[ProtocolKind],
    core_counts: &[usize],
    params: &EvalParams,
) -> SweepResults {
    let outcomes = run_suite_with(workloads, protocols, core_counts, params, |key| {
        Ok(run_one(
            key.workload,
            key.protocol,
            key.cores,
            params.scale,
            params.seed,
        ))
    });
    SweepResults {
        entries: outcomes
            .into_iter()
            .map(|(k, r)| match r {
                Ok(report) => (k, report),
                Err(e) => panic!("sweep run {k} failed: {e}"),
            })
            .collect(),
    }
}

/// Fallible parallel sweep over an arbitrary per-key runner.
///
/// Each key's outcome comes back in enqueue (cross-product) order. One
/// run failing — or even panicking — never takes down the rest of the
/// sweep: a panic inside `run` is caught and surfaced as
/// [`RceError::InvariantViolated`] naming the offending sweep key,
/// poisoned queue/slot locks are recovered (see [`lock_unpoisoned`]),
/// and every other queued run still executes and reports.
pub fn run_suite_with<F>(
    workloads: &[WorkloadSpec],
    protocols: &[ProtocolKind],
    core_counts: &[usize],
    params: &EvalParams,
    run: F,
) -> Vec<(RunKey, RceResult<SimReport>)>
where
    F: Fn(RunKey) -> RceResult<SimReport> + Sync,
{
    let mut keys = Vec::new();
    for &w in workloads {
        for &p in protocols {
            for &c in core_counts {
                keys.push(RunKey {
                    workload: w,
                    protocol: p,
                    cores: c,
                });
            }
        }
    }
    let jobs = if params.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        params.jobs
    }
    .min(keys.len().max(1));

    // FIFO work queue: a shared cursor into `keys`; per-key result
    // slots keep the output in enqueue order.
    let next = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<RceResult<SimReport>>>> =
        keys.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = {
                    let mut n = lock_unpoisoned(&next);
                    if *n >= keys.len() {
                        break;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let key = keys[i];
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run(key)))
                    .unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(RceError::InvariantViolated(format!(
                            "sweep run {key} panicked: {msg}"
                        )))
                    });
                *lock_unpoisoned(&slots[i]) = Some(outcome);
            });
        }
    });
    keys.into_iter()
        .zip(slots)
        .map(|(k, slot)| {
            let r = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .unwrap_or_else(|| {
                    Err(RceError::InvariantViolated(format!(
                        "sweep run {k} was claimed but never reported"
                    )))
                });
            (k, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_produces_report() {
        let r = run_one(WorkloadSpec::PingPong, ProtocolKind::MesiBaseline, 2, 1, 1);
        assert_eq!(r.cores, 2);
        assert!(r.cycles.0 > 0);
    }

    #[test]
    fn suite_covers_cross_product() {
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 1,
            jobs: 2,
        };
        let out = run_suite(
            &[WorkloadSpec::PingPong, WorkloadSpec::PrivateOnly],
            &[ProtocolKind::MesiBaseline, ProtocolKind::Arc],
            &[2],
            &params,
        );
        assert_eq!(out.len(), 4);
        for (k, r) in &out {
            assert_eq!(r.protocol, k.protocol);
            assert_eq!(r.workload.as_str(), k.workload.name());
        }
    }

    #[test]
    fn suite_results_are_in_cross_product_order() {
        let workloads = [WorkloadSpec::PingPong, WorkloadSpec::PrivateOnly];
        let protocols = [ProtocolKind::MesiBaseline, ProtocolKind::Ce];
        let core_counts = [2usize, 4];
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 1,
            jobs: 3,
        };
        let out = run_suite(&workloads, &protocols, &core_counts, &params);
        let mut expected = Vec::new();
        for w in workloads {
            for p in protocols {
                for c in core_counts {
                    expected.push(RunKey {
                        workload: w,
                        protocol: p,
                        cores: c,
                    });
                }
            }
        }
        let got: Vec<RunKey> = out.keys().copied().collect();
        assert_eq!(got, expected, "results must come back in enqueue order");
        for (k, r) in &out {
            assert_eq!(r.cores, k.cores);
        }
    }

    #[test]
    fn observability_does_not_perturb_the_simulation() {
        let cfg = MachineConfig::paper_default(2, ProtocolKind::CePlus);
        let plain = run_one_cfg(WorkloadSpec::PingPong, &cfg, 1, 3);
        let obs = run_one_obs(WorkloadSpec::PingPong, &cfg, 1, 3, ObsConfig::full(256));
        assert_eq!(plain.cycles, obs.cycles);
        assert_eq!(plain.noc.total_bytes(), obs.noc.total_bytes());
        assert_eq!(plain.exceptions.len(), obs.exceptions.len());
        assert!(obs.trace.is_some() && obs.timeline.is_some());
        assert!(plain.trace.is_none() && plain.timeline.is_none());
    }

    #[test]
    fn failed_run_does_not_sink_the_sweep() {
        let workloads = [WorkloadSpec::PingPong, WorkloadSpec::PrivateOnly];
        let protocols = [ProtocolKind::MesiBaseline, ProtocolKind::Ce];
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 1,
            jobs: 2,
        };
        // The second enqueued run (PingPong/Ce) fails; the rest must
        // still execute and come back in enqueue order.
        let out = run_suite_with(&workloads, &protocols, &[2], &params, |key| {
            if key.protocol == ProtocolKind::Ce && key.workload == WorkloadSpec::PingPong {
                Err(RceError::LimitExceeded("injected mid-sweep failure".into()))
            } else {
                Ok(run_one(key.workload, key.protocol, key.cores, 1, 1))
            }
        });
        assert_eq!(out.len(), 4);
        let expected: Vec<RunKey> = workloads
            .iter()
            .flat_map(|&w| {
                protocols.iter().map(move |&p| RunKey {
                    workload: w,
                    protocol: p,
                    cores: 2,
                })
            })
            .collect();
        let got: Vec<RunKey> = out.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expected, "outcomes stay in enqueue order");
        for (i, (key, r)) in out.iter().enumerate() {
            if i == 1 {
                assert!(
                    matches!(r, Err(RceError::LimitExceeded(_))),
                    "injected failure surfaces as its own error"
                );
            } else {
                let report = r.as_ref().expect("other queued runs still complete");
                assert_eq!(report.cores, key.cores);
                assert_eq!(report.protocol, key.protocol);
            }
        }
    }

    #[test]
    fn panicking_run_surfaces_as_error_with_its_key() {
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 1,
            jobs: 2,
        };
        // Keep the worker's caught panic out of the test log.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_suite_with(
            &[WorkloadSpec::PingPong, WorkloadSpec::PrivateOnly],
            &[ProtocolKind::MesiBaseline],
            &[2],
            &params,
            |key| {
                if key.workload == WorkloadSpec::PingPong {
                    panic!("worker died mid-run");
                }
                Ok(run_one(key.workload, key.protocol, key.cores, 1, 1))
            },
        );
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 2);
        match &out[0].1 {
            Err(RceError::InvariantViolated(m)) => {
                assert!(m.contains("ping_pong"), "names the offending key: {m}");
                assert!(m.contains("worker died mid-run"), "{m}");
            }
            other => panic!("expected InvariantViolated, got {other:?}"),
        }
        assert!(out[1].1.is_ok(), "the other queued run still completes");
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = run_one(WorkloadSpec::PingPong, ProtocolKind::Ce, 2, 1, 7);
        let params = EvalParams {
            cores: 2,
            scale: 1,
            seed: 7,
            jobs: 4,
        };
        let out = run_suite(
            &[WorkloadSpec::PingPong],
            &[ProtocolKind::Ce],
            &[2],
            &params,
        );
        let parallel = out.values().next().unwrap();
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.noc.total_bytes(), parallel.noc.total_bytes());
    }
}
