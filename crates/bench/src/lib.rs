//! Benchmark harness: regenerates every table and figure of the
//! paper's (reconstructed) evaluation.
//!
//! The `paper` binary is the entry point:
//!
//! ```text
//! cargo run -p rce-bench --release --bin paper -- all
//! cargo run -p rce-bench --release --bin paper -- fig-runtime --cores 32 --scale 4
//! ```
//!
//! [`runner`] executes (workload × protocol × core-count) sweeps in
//! parallel across OS threads — each simulation is single-threaded and
//! deterministic, so the sweep is embarrassingly parallel.
//! [`figures`] renders each experiment as an aligned text table plus a
//! machine-readable JSON row set (consumed by EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod ablations;
pub mod bencher;
pub mod diff;
pub mod figures;
pub mod hotpath;
pub mod profile;
pub mod runner;
pub mod summary;

pub use ablations::Ablation;
pub use bencher::Bencher;
pub use figures::{Experiment, FigureOutput};
pub use runner::{
    run_one, run_one_obs, run_suite, run_suite_with, EvalParams, RunKey, SweepResults,
};
