//! Hot-path microbenchmarks (`paper bench-hot`).
//!
//! The simulator's per-access path is dominated by metadata and
//! sharer-state lookups. This module times the three structures that
//! carry that load — the interned flat access-bit tables, the
//! region-boundary flush sets, and the AIM spill/refill path — plus
//! one end-to-end simulation to anchor wall time per simulated access.
//! The flat-table cases run against a `std::collections` reference
//! implementation doing the identical work, which is what backs the
//! "flat storage is ≥2x a hash map on the raw access path" claim in
//! EXPERIMENTS.md; [`MIN_SPEEDUP_X`] pins that floor and `paper
//! bench-hot` exits nonzero below it, so a hot-path regression fails
//! CI even when reports stay byte-identical.
//!
//! Everything here is deterministic in *work* (fixed seeds, fixed op
//! streams); only the measured wall times vary by machine, which is
//! why `results/bench_trajectory.json` keeps them in a `measured`
//! section that the CI diff ignores.

use crate::bencher::Bencher;
use crate::runner::run_one;
use rce_common::{
    AimConfig, CoreId, Cycles, LineAddr, LineFlags, LineMap, LineSet, LineTable, MachineConfig,
    ProtocolKind, RegionId, Rng, SplitMix64, WordIdx, WordMask,
};
use rce_core::{AccessFilter, AccessType, AimMeta, Machine, ReadyQueue};
use rce_trace::{Builder, Program, WorkloadSpec};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::time::Instant;

/// Hard floor for flat-vs-hashmap raw access throughput. `paper
/// bench-hot` fails below this, and the pinned section of the
/// trajectory baseline records it so it cannot be lowered silently.
pub const MIN_SPEEDUP_X: f64 = 2.0;

/// Hard floor for the end-to-end speedup the access-filter fast path
/// buys on a repeat-heavy workload (filter on vs the same machine with
/// `with_fastpath(false)`). `paper bench-hot` fails below this.
pub const MIN_FASTPATH_SPEEDUP_X: f64 = 1.5;

/// Seed for every synthetic op stream (arbitrary, fixed).
const STREAM_SEED: u64 = 0x5EED_C0FF_EE11_D00D;

/// Distinct lines in the synthetic working set — roughly the per-run
/// footprint of the paper's micro workloads.
const WORKING_SET_LINES: u64 = 4096;

/// The measured half of the hot-path summary: machine-dependent
/// numbers that CI tracks but never gates exactly.
#[derive(Debug, Clone, Copy)]
pub struct HotPathMeasurement {
    /// Simulator wall time per simulated memory access (nanoseconds),
    /// from one pinned end-to-end run.
    pub ns_per_access: f64,
    /// Raw access-table throughput of the interned flat path relative
    /// to the `HashMap` reference doing identical work.
    pub speedup_vs_hashmap: f64,
    /// End-to-end speedup of the access-filter fast path on the
    /// repeat-heavy pinned workload (filter on vs off, same machine).
    pub fastpath_speedup_x: f64,
}

/// One deterministic pseudo-random line stream. Re-created per timing
/// closure so every implementation sees the identical sequence.
fn line_stream(ops: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(STREAM_SEED);
    (0..ops)
        .map(|_| (rng.next_u64() % WORKING_SET_LINES) * 64)
        .collect()
}

/// Cores in the synthetic access mix (the trajectory core count).
const MIX_CORES: usize = 4;

/// The reference raw access path: what one engine access did before
/// interning — a displaced-line `HashSet` probe, an access-bit
/// `HashMap` `entry().or_default()` merge, and a per-core touched-set
/// `HashSet` insert. Three independent hashes of the same address.
fn raw_access_hashmap(stream: &[u64]) -> u64 {
    let mut displaced: HashSet<u64> = HashSet::new();
    let mut bits_by_line: HashMap<u64, u64> = HashMap::new();
    let mut touched: Vec<HashSet<u64>> = (0..MIX_CORES).map(|_| HashSet::new()).collect();
    let mut acc = 0u64;
    for (i, &line) in stream.iter().enumerate() {
        if displaced.contains(&line) {
            acc = acc.wrapping_add(1);
        }
        let bits = bits_by_line.entry(line).or_default();
        *bits |= 1 << (i % 64);
        acc = acc.wrapping_add(*bits);
        touched[i % MIX_CORES].insert(line);
        // Every 16th access displaces its line (eviction pressure).
        if i % 16 == 0 {
            displaced.insert(line);
        }
    }
    acc.wrapping_add(touched.iter().map(|t| t.len() as u64).sum())
}

/// The flat raw access path doing identical work: intern the address
/// once, then the displaced probe, bit merge, and touched insert are
/// all dense bitset/vector ops on the same id.
fn raw_access_flat(stream: &[u64]) -> u64 {
    let mut table = LineTable::new();
    let mut displaced = LineFlags::new();
    let mut bits_by_line: LineMap<u64> = LineMap::new();
    let mut touched: Vec<LineSet> = (0..MIX_CORES).map(|_| LineSet::new()).collect();
    let mut acc = 0u64;
    for (i, &line) in stream.iter().enumerate() {
        let id = table.intern(LineAddr(line));
        if displaced.contains(id) {
            acc = acc.wrapping_add(1);
        }
        let bits = bits_by_line.slot(id);
        *bits |= 1 << (i % 64);
        acc = acc.wrapping_add(*bits);
        touched[i % MIX_CORES].insert(id);
        if i % 16 == 0 {
            displaced.insert(id);
        }
    }
    acc.wrapping_add(touched.iter().map(|t| t.len() as u64).sum())
}

/// Reference region-boundary flush: accumulate touched lines in a
/// `HashSet`, then drain and address-sort (what the engines did before
/// [`LineSet`]).
fn region_flush_hashset(stream: &[u64], region_len: usize) -> u64 {
    let mut touched: HashSet<u64> = HashSet::new();
    let mut acc = 0u64;
    for chunk in stream.chunks(region_len) {
        for &line in chunk {
            touched.insert(line);
        }
        let mut drained: Vec<u64> = touched.drain().collect();
        drained.sort_unstable();
        acc = acc.wrapping_add(drained.len() as u64);
    }
    acc
}

/// Flat region-boundary flush: [`LineSet`] insert-dedup, then the
/// engines' actual drain path (take ids, map back to addresses, sort).
fn region_flush_flat(stream: &[u64], region_len: usize) -> u64 {
    let mut table = LineTable::new();
    let mut touched = LineSet::new();
    let mut acc = 0u64;
    for chunk in stream.chunks(region_len) {
        for &line in chunk {
            let id = table.intern(LineAddr(line));
            touched.insert(id);
        }
        let mut drained: Vec<u64> = touched
            .take()
            .into_iter()
            .map(|id| table.addr(id).0)
            .collect();
        drained.sort_unstable();
        acc = acc.wrapping_add(drained.len() as u64);
    }
    acc
}

/// AIM spill/refill churn: a working set several times the AIM's
/// capacity, so nearly every `ensure` misses, spills a victim to the
/// flat overflow table, and later refills it.
fn aim_spill_refill(stream: &[u64]) -> u64 {
    let mut aim = AimMeta::new(&AimConfig {
        entries: 64,
        ways: 4,
        latency: 4,
        entry_bytes: 16,
    });
    let mut acc = 0u64;
    for &line in stream {
        let o = aim.ensure(LineAddr(line));
        aim.entry(LineAddr(line)).record(
            CoreId(0),
            RegionId(1),
            AccessType::Write,
            WordMask::single(WordIdx(0)),
        );
        acc = acc.wrapping_add(u64::from(o.spilled) + u64::from(o.refilled));
    }
    acc
}

/// Lines each core loops over in the repeat-heavy pinned workload.
/// Small enough to stay resident in every core's L1 (and far under the
/// access filter's slot count), so after the first pass every access
/// is a same-region repeat — the fast path's target shape.
const FILTER_LINES_PER_CORE: usize = 32;

/// The pinned repeat-heavy program for the fast-path pair: each core
/// sweeps its own [`FILTER_LINES_PER_CORE`]-line slice `iters` times
/// with a full-line write+read per line, no synchronization — one
/// long region per core, so the filter is never epoch-invalidated.
/// Full-line masks make each covered repeat skip the full per-word
/// detection and oracle work, the shape the filter is built for.
fn repeat_heavy_program(iters: usize) -> Program {
    let mut b = Builder::new("repeat-heavy", MIX_CORES);
    let arena = b.shared((MIX_CORES * FILTER_LINES_PER_CORE * 64) as u64);
    for t in 0..MIX_CORES {
        for _ in 0..iters {
            for l in 0..FILTER_LINES_PER_CORE {
                let w = arena.word(((t * FILTER_LINES_PER_CORE + l) * 8) as u64);
                b.write_n(t, w, 64);
                b.read_n(t, w, 64);
            }
        }
    }
    b.finish()
}

/// One end-to-end run of the repeat-heavy program with the fast path
/// forced on or off. Returns end cycles (for `black_box`).
fn repeat_heavy_run(p: &Program, fastpath: bool) -> u64 {
    let cfg = MachineConfig::paper_default(MIX_CORES, ProtocolKind::CePlus);
    Machine::new(&cfg)
        .unwrap()
        .with_fastpath(fastpath)
        .run(p)
        .unwrap()
        .cycles
        .0
}

/// Drive the access filter directly with the repeat-heavy line stream:
/// arm on miss, count hits. The returned count is the accumulator; the
/// stream is all repeats after the first sweep, so the hit rate must
/// approach 1.
fn filter_hit_stream(ops: usize) -> u64 {
    let mut f = AccessFilter::with_enabled(1, true);
    let core = CoreId(0);
    let region = RegionId(1);
    let mask = WordMask::single(WordIdx(0));
    let mut acc = 0u64;
    for i in 0..ops {
        let line = LineAddr((i % FILTER_LINES_PER_CORE) as u64);
        if f.hit(core, line, region, AccessType::Write, mask) {
            acc = acc.wrapping_add(1);
        } else {
            f.arm(core, line, region, AccessType::Write, mask);
        }
    }
    acc
}

/// Cores in the scheduler microbench — the paper's largest sweep
/// point, where the old linear scan hurt most.
const SCHED_CORES: usize = 64;

/// The reference scheduler: scan all cores for the minimum clock
/// (strict `<`, so ties resolve to the lowest ID) every step. This is
/// what `Machine::run_with_policy` did before the index-min queue.
fn sched_linear(steps: usize) -> u64 {
    let mut rng = SplitMix64::new(STREAM_SEED);
    let mut clock = vec![0u64; SCHED_CORES];
    let mut acc = 0u64;
    for _ in 0..steps {
        let mut pick = 0usize;
        for c in 1..SCHED_CORES {
            if clock[c] < clock[pick] {
                pick = c;
            }
        }
        acc = acc.wrapping_add(pick as u64);
        clock[pick] += 1 + rng.gen_range(8);
    }
    acc
}

/// The index-min queue doing identical work: pop the (clock, core)
/// minimum, advance it by the same pseudo-random stride, re-push.
fn sched_heap(steps: usize) -> u64 {
    let mut rng = SplitMix64::new(STREAM_SEED);
    let mut ready = ReadyQueue::with_capacity(SCHED_CORES);
    for c in 0..SCHED_CORES {
        ready.push(Cycles::ZERO, c);
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let (t, c) = ready.pop().expect("queue never drains");
        acc = acc.wrapping_add(c as u64);
        ready.push(Cycles(t.0 + 1 + rng.gen_range(8)), c);
    }
    acc
}

/// Median wall time of `samples` runs of `f`, in seconds.
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("bench times are finite"));
    times[times.len() / 2]
}

/// Silent measurement of the two headline hot-path numbers, sized for
/// a CI gate. Used by `paper trajectory` (which embeds them in the
/// baseline's `measured` section) and by [`run`].
pub fn measure(smoke: bool) -> HotPathMeasurement {
    let ops = if smoke { 200_000 } else { 2_000_000 };
    let stream = line_stream(ops);
    let samples = if smoke { 3 } else { 5 };
    let t_hash = median_secs(samples, || raw_access_hashmap(&stream));
    let t_flat = median_secs(samples, || raw_access_flat(&stream));

    // One pinned end-to-end run anchors simulated-access wall cost.
    let t0 = Instant::now();
    let r = run_one(WorkloadSpec::PingPong, ProtocolKind::CePlus, 4, 1, 42);
    let wall = t0.elapsed().as_secs_f64();
    let accesses = (r.mem_ops + r.sync_ops).max(1);

    // The fast-path pair: the identical repeat-heavy run with the
    // access filter on and off.
    let iters = if smoke { 60 } else { 300 };
    let program = repeat_heavy_program(iters);
    let t_on = median_secs(samples, || repeat_heavy_run(&program, true));
    let t_off = median_secs(samples, || repeat_heavy_run(&program, false));

    HotPathMeasurement {
        ns_per_access: wall * 1e9 / accesses as f64,
        speedup_vs_hashmap: t_hash / t_flat.max(f64::MIN_POSITIVE),
        fastpath_speedup_x: t_off / t_on.max(f64::MIN_POSITIVE),
    }
}

/// Run the full printed suite (`paper bench-hot`). Returns the
/// headline measurement so the caller can enforce [`MIN_SPEEDUP_X`].
pub fn run(smoke: bool) -> HotPathMeasurement {
    let ops = if smoke { 200_000 } else { 2_000_000 };
    let stream = line_stream(ops);
    let elements = Some(ops as u64);

    let mut b = Bencher::group("hot-path");
    b.case("raw-access/hashmap", elements, || {
        raw_access_hashmap(&stream)
    });
    b.case("raw-access/flat", elements, || raw_access_flat(&stream));
    b.case("region-flush/hashset", elements, || {
        region_flush_hashset(&stream, 256)
    });
    b.case("region-flush/flat", elements, || {
        region_flush_flat(&stream, 256)
    });
    b.case("aim-spill-refill/flat", elements, || {
        aim_spill_refill(&stream)
    });
    b.case("access-filter/hit-stream", elements, || {
        filter_hit_stream(ops)
    });
    let sched_steps = ops;
    b.case(
        "scheduler-64c/linear-scan",
        Some(sched_steps as u64),
        || sched_linear(sched_steps),
    );
    b.case("scheduler-64c/index-min", Some(sched_steps as u64), || {
        sched_heap(sched_steps)
    });
    b.case("sim/end-to-end", None, || {
        run_one(WorkloadSpec::PingPong, ProtocolKind::CePlus, 4, 1, 42).cycles
    });

    // Filter hit rate on the pinned stream, for the printed summary.
    let mut f = AccessFilter::with_enabled(1, true);
    let mask = WordMask::single(WordIdx(0));
    for i in 0..ops {
        let line = LineAddr((i % FILTER_LINES_PER_CORE) as u64);
        if !f.hit(CoreId(0), line, RegionId(1), AccessType::Write, mask) {
            f.arm(CoreId(0), line, RegionId(1), AccessType::Write, mask);
        }
    }

    let m = measure(smoke);
    println!(
        "hot-path summary: {:.1} ns per simulated access, flat raw-access path {:.2}x the \
         HashMap reference (floor {MIN_SPEEDUP_X}x), access-filter fast path {:.2}x end-to-end \
         (floor {MIN_FASTPATH_SPEEDUP_X}x) at {:.1}% filter hit rate",
        m.ns_per_access,
        m.speedup_vs_hashmap,
        m.fastpath_speedup_x,
        f.hit_rate() * 100.0
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implementations_agree_on_the_work() {
        // The timed closures must do identical logical work, or the
        // comparison is meaningless: same accumulator on the same
        // stream, same drain counts at every region boundary.
        let stream = line_stream(10_000);
        assert_eq!(raw_access_hashmap(&stream), raw_access_flat(&stream));
        assert_eq!(
            region_flush_hashset(&stream, 128),
            region_flush_flat(&stream, 128)
        );
    }

    #[test]
    fn aim_churn_actually_spills_and_refills() {
        let stream = line_stream(20_000);
        assert!(
            aim_spill_refill(&stream) > 0,
            "the working set must exceed AIM capacity"
        );
    }

    #[test]
    fn measure_reports_positive_numbers() {
        let m = measure(true);
        assert!(m.ns_per_access > 0.0);
        assert!(m.speedup_vs_hashmap > 0.0);
        assert!(m.fastpath_speedup_x > 0.0);
    }

    #[test]
    fn schedulers_agree_on_the_schedule() {
        // Identical strides, identical min-(clock, id) semantics: the
        // linear scan and the index-min queue must pick the same core
        // at every step.
        assert_eq!(sched_linear(50_000), sched_heap(50_000));
    }

    #[test]
    fn filter_stream_is_all_hits_after_first_sweep() {
        let ops = 10_000;
        let hits = filter_hit_stream(ops);
        assert_eq!(hits, (ops - FILTER_LINES_PER_CORE) as u64);
    }

    #[test]
    fn repeat_heavy_pair_is_cycle_identical() {
        // The fast-path pair only makes sense if both runs simulate
        // the same machine: identical end cycles, filter on or off.
        let p = repeat_heavy_program(8);
        assert_eq!(repeat_heavy_run(&p, true), repeat_heavy_run(&p, false));
    }
}
