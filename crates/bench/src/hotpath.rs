//! Hot-path microbenchmarks (`paper bench-hot`).
//!
//! The simulator's per-access path is dominated by metadata and
//! sharer-state lookups. This module times the three structures that
//! carry that load — the interned flat access-bit tables, the
//! region-boundary flush sets, and the AIM spill/refill path — plus
//! one end-to-end simulation to anchor wall time per simulated access.
//! The flat-table cases run against a `std::collections` reference
//! implementation doing the identical work, which is what backs the
//! "flat storage is ≥2x a hash map on the raw access path" claim in
//! EXPERIMENTS.md; [`MIN_SPEEDUP_X`] pins that floor and `paper
//! bench-hot` exits nonzero below it, so a hot-path regression fails
//! CI even when reports stay byte-identical.
//!
//! Everything here is deterministic in *work* (fixed seeds, fixed op
//! streams); only the measured wall times vary by machine, which is
//! why `results/bench_trajectory.json` keeps them in a `measured`
//! section that the CI diff ignores.

use crate::bencher::Bencher;
use crate::runner::run_one;
use rce_common::{
    AimConfig, CoreId, LineAddr, LineFlags, LineMap, LineSet, LineTable, ProtocolKind, RegionId,
    Rng, SplitMix64, WordIdx, WordMask,
};
use rce_core::{AccessType, AimMeta};
use rce_trace::WorkloadSpec;
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::time::Instant;

/// Hard floor for flat-vs-hashmap raw access throughput. `paper
/// bench-hot` fails below this, and the pinned section of the
/// trajectory baseline records it so it cannot be lowered silently.
pub const MIN_SPEEDUP_X: f64 = 2.0;

/// Seed for every synthetic op stream (arbitrary, fixed).
const STREAM_SEED: u64 = 0x5EED_C0FF_EE11_D00D;

/// Distinct lines in the synthetic working set — roughly the per-run
/// footprint of the paper's micro workloads.
const WORKING_SET_LINES: u64 = 4096;

/// The measured half of the hot-path summary: machine-dependent
/// numbers that CI tracks but never gates exactly.
#[derive(Debug, Clone, Copy)]
pub struct HotPathMeasurement {
    /// Simulator wall time per simulated memory access (nanoseconds),
    /// from one pinned end-to-end run.
    pub ns_per_access: f64,
    /// Raw access-table throughput of the interned flat path relative
    /// to the `HashMap` reference doing identical work.
    pub speedup_vs_hashmap: f64,
}

/// One deterministic pseudo-random line stream. Re-created per timing
/// closure so every implementation sees the identical sequence.
fn line_stream(ops: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(STREAM_SEED);
    (0..ops)
        .map(|_| (rng.next_u64() % WORKING_SET_LINES) * 64)
        .collect()
}

/// Cores in the synthetic access mix (the trajectory core count).
const MIX_CORES: usize = 4;

/// The reference raw access path: what one engine access did before
/// interning — a displaced-line `HashSet` probe, an access-bit
/// `HashMap` `entry().or_default()` merge, and a per-core touched-set
/// `HashSet` insert. Three independent hashes of the same address.
fn raw_access_hashmap(stream: &[u64]) -> u64 {
    let mut displaced: HashSet<u64> = HashSet::new();
    let mut bits_by_line: HashMap<u64, u64> = HashMap::new();
    let mut touched: Vec<HashSet<u64>> = (0..MIX_CORES).map(|_| HashSet::new()).collect();
    let mut acc = 0u64;
    for (i, &line) in stream.iter().enumerate() {
        if displaced.contains(&line) {
            acc = acc.wrapping_add(1);
        }
        let bits = bits_by_line.entry(line).or_default();
        *bits |= 1 << (i % 64);
        acc = acc.wrapping_add(*bits);
        touched[i % MIX_CORES].insert(line);
        // Every 16th access displaces its line (eviction pressure).
        if i % 16 == 0 {
            displaced.insert(line);
        }
    }
    acc.wrapping_add(touched.iter().map(|t| t.len() as u64).sum())
}

/// The flat raw access path doing identical work: intern the address
/// once, then the displaced probe, bit merge, and touched insert are
/// all dense bitset/vector ops on the same id.
fn raw_access_flat(stream: &[u64]) -> u64 {
    let mut table = LineTable::new();
    let mut displaced = LineFlags::new();
    let mut bits_by_line: LineMap<u64> = LineMap::new();
    let mut touched: Vec<LineSet> = (0..MIX_CORES).map(|_| LineSet::new()).collect();
    let mut acc = 0u64;
    for (i, &line) in stream.iter().enumerate() {
        let id = table.intern(LineAddr(line));
        if displaced.contains(id) {
            acc = acc.wrapping_add(1);
        }
        let bits = bits_by_line.slot(id);
        *bits |= 1 << (i % 64);
        acc = acc.wrapping_add(*bits);
        touched[i % MIX_CORES].insert(id);
        if i % 16 == 0 {
            displaced.insert(id);
        }
    }
    acc.wrapping_add(touched.iter().map(|t| t.len() as u64).sum())
}

/// Reference region-boundary flush: accumulate touched lines in a
/// `HashSet`, then drain and address-sort (what the engines did before
/// [`LineSet`]).
fn region_flush_hashset(stream: &[u64], region_len: usize) -> u64 {
    let mut touched: HashSet<u64> = HashSet::new();
    let mut acc = 0u64;
    for chunk in stream.chunks(region_len) {
        for &line in chunk {
            touched.insert(line);
        }
        let mut drained: Vec<u64> = touched.drain().collect();
        drained.sort_unstable();
        acc = acc.wrapping_add(drained.len() as u64);
    }
    acc
}

/// Flat region-boundary flush: [`LineSet`] insert-dedup, then the
/// engines' actual drain path (take ids, map back to addresses, sort).
fn region_flush_flat(stream: &[u64], region_len: usize) -> u64 {
    let mut table = LineTable::new();
    let mut touched = LineSet::new();
    let mut acc = 0u64;
    for chunk in stream.chunks(region_len) {
        for &line in chunk {
            let id = table.intern(LineAddr(line));
            touched.insert(id);
        }
        let mut drained: Vec<u64> = touched
            .take()
            .into_iter()
            .map(|id| table.addr(id).0)
            .collect();
        drained.sort_unstable();
        acc = acc.wrapping_add(drained.len() as u64);
    }
    acc
}

/// AIM spill/refill churn: a working set several times the AIM's
/// capacity, so nearly every `ensure` misses, spills a victim to the
/// flat overflow table, and later refills it.
fn aim_spill_refill(stream: &[u64]) -> u64 {
    let mut aim = AimMeta::new(&AimConfig {
        entries: 64,
        ways: 4,
        latency: 4,
        entry_bytes: 16,
    });
    let mut acc = 0u64;
    for &line in stream {
        let o = aim.ensure(LineAddr(line));
        aim.entry(LineAddr(line)).record(
            CoreId(0),
            RegionId(1),
            AccessType::Write,
            WordMask::single(WordIdx(0)),
        );
        acc = acc.wrapping_add(u64::from(o.spilled) + u64::from(o.refilled));
    }
    acc
}

/// Median wall time of `samples` runs of `f`, in seconds.
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("bench times are finite"));
    times[times.len() / 2]
}

/// Silent measurement of the two headline hot-path numbers, sized for
/// a CI gate. Used by `paper trajectory` (which embeds them in the
/// baseline's `measured` section) and by [`run`].
pub fn measure(smoke: bool) -> HotPathMeasurement {
    let ops = if smoke { 200_000 } else { 2_000_000 };
    let stream = line_stream(ops);
    let samples = if smoke { 3 } else { 5 };
    let t_hash = median_secs(samples, || raw_access_hashmap(&stream));
    let t_flat = median_secs(samples, || raw_access_flat(&stream));

    // One pinned end-to-end run anchors simulated-access wall cost.
    let t0 = Instant::now();
    let r = run_one(WorkloadSpec::PingPong, ProtocolKind::CePlus, 4, 1, 42);
    let wall = t0.elapsed().as_secs_f64();
    let accesses = (r.mem_ops + r.sync_ops).max(1);

    HotPathMeasurement {
        ns_per_access: wall * 1e9 / accesses as f64,
        speedup_vs_hashmap: t_hash / t_flat.max(f64::MIN_POSITIVE),
    }
}

/// Run the full printed suite (`paper bench-hot`). Returns the
/// headline measurement so the caller can enforce [`MIN_SPEEDUP_X`].
pub fn run(smoke: bool) -> HotPathMeasurement {
    let ops = if smoke { 200_000 } else { 2_000_000 };
    let stream = line_stream(ops);
    let elements = Some(ops as u64);

    let mut b = Bencher::group("hot-path");
    b.case("raw-access/hashmap", elements, || {
        raw_access_hashmap(&stream)
    });
    b.case("raw-access/flat", elements, || raw_access_flat(&stream));
    b.case("region-flush/hashset", elements, || {
        region_flush_hashset(&stream, 256)
    });
    b.case("region-flush/flat", elements, || {
        region_flush_flat(&stream, 256)
    });
    b.case("aim-spill-refill/flat", elements, || {
        aim_spill_refill(&stream)
    });
    b.case("sim/end-to-end", None, || {
        run_one(WorkloadSpec::PingPong, ProtocolKind::CePlus, 4, 1, 42).cycles
    });

    let m = measure(smoke);
    println!(
        "hot-path summary: {:.1} ns per simulated access, flat raw-access path {:.2}x the \
         HashMap reference (floor {MIN_SPEEDUP_X}x)",
        m.ns_per_access, m.speedup_vs_hashmap
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implementations_agree_on_the_work() {
        // The timed closures must do identical logical work, or the
        // comparison is meaningless: same accumulator on the same
        // stream, same drain counts at every region boundary.
        let stream = line_stream(10_000);
        assert_eq!(raw_access_hashmap(&stream), raw_access_flat(&stream));
        assert_eq!(
            region_flush_hashset(&stream, 128),
            region_flush_flat(&stream, 128)
        );
    }

    #[test]
    fn aim_churn_actually_spills_and_refills() {
        let stream = line_stream(20_000);
        assert!(
            aim_spill_refill(&stream) > 0,
            "the working set must exceed AIM capacity"
        );
    }

    #[test]
    fn measure_reports_positive_numbers() {
        let m = measure(true);
        assert!(m.ns_per_access > 0.0);
        assert!(m.speedup_vs_hashmap > 0.0);
    }
}
