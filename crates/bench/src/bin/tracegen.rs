//! `tracegen` — inspect, export, and replay workload traces.
//!
//! ```text
//! tracegen list
//! tracegen info  canneal --cores 8 --scale 2 --seed 42
//! tracegen dump  canneal --cores 8 --out canneal.json [--races 4]
//! tracegen run   canneal.json --protocol ARC
//! ```
//!
//! `dump` writes the full program (every operation of every thread) as
//! JSON; `run` loads such a file and simulates it, printing the
//! report's headline metrics. This is the interchange path for
//! replaying externally-produced traces through the engines: any tool
//! that emits the same JSON shape can drive the simulator.

use rce_common::{json, MachineConfig, ProtocolKind};
use rce_core::Machine;
use rce_trace::{characterize, inject_races, Program, WorkloadSpec};

fn usage() -> ! {
    eprintln!(
        "usage:\n  tracegen list\n  tracegen info <workload> [opts]\n  \
         tracegen dump <workload> --out FILE [opts] [--races N]\n  \
         tracegen run <file.json> [--protocol MESI|CE|CE+|ARC]\n\
         opts: --cores N --scale N --seed N"
    );
    std::process::exit(2);
}

struct Opts {
    cores: usize,
    scale: u32,
    seed: u64,
    out: Option<String>,
    races: usize,
    protocol: ProtocolKind,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        cores: 8,
        scale: 1,
        seed: 42,
        out: None,
        races: 0,
        protocol: ProtocolKind::Arc,
    };
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--cores" => o.cores = val(i).parse().unwrap_or_else(|_| usage()),
            "--scale" => o.scale = val(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val(i).parse().unwrap_or_else(|_| usage()),
            "--races" => o.races = val(i).parse().unwrap_or_else(|_| usage()),
            "--out" => o.out = Some(val(i)),
            "--protocol" => {
                o.protocol = ProtocolKind::ALL
                    .into_iter()
                    .find(|p| p.name() == val(i))
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
        i += 2;
    }
    o
}

fn build(name: &str, o: &Opts) -> Program {
    let w = WorkloadSpec::parse(name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'; try `tracegen list`");
        std::process::exit(2);
    });
    let mut p = w.build(o.cores, o.scale, o.seed);
    if o.races > 0 {
        inject_races(&mut p, o.races, o.seed);
    }
    p
}

fn print_info(p: &Program) {
    let c = characterize(p);
    println!("workload:        {}", c.name);
    println!("threads:         {}", c.threads);
    println!("memory ops:      {}", c.mem_ops);
    println!("sync ops:        {}", c.sync_ops);
    println!("regions:         {}", c.regions);
    println!("ops/region:      {:.1}", c.mean_region_len);
    println!("footprint lines: {}", c.footprint_lines);
    println!("shared lines:    {}", c.shared_lines);
    println!("shared access:   {:.1}%", c.shared_access_frac * 100.0);
    println!("write fraction:  {:.1}%", c.write_frac * 100.0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "list" => {
            for w in WorkloadSpec::PARSEC
                .iter()
                .chain(WorkloadSpec::MICRO.iter())
            {
                println!("{}{}", w.name(), if w.is_racy() { "  (racy)" } else { "" });
            }
        }
        "info" => {
            if args.len() < 2 {
                usage();
            }
            let o = parse_opts(&args[2..]);
            print_info(&build(&args[1], &o));
        }
        "dump" => {
            if args.len() < 2 {
                usage();
            }
            let o = parse_opts(&args[2..]);
            let p = build(&args[1], &o);
            let out = o.out.clone().unwrap_or_else(|| format!("{}.json", p.name));
            std::fs::write(&out, json::to_string(&p)).expect("write trace file");
            eprintln!(
                "wrote {out}: {} threads, {} ops",
                p.n_threads(),
                p.total_ops()
            );
        }
        "run" => {
            if args.len() < 2 {
                usage();
            }
            let o = parse_opts(&args[2..]);
            let text = std::fs::read_to_string(&args[1]).expect("read trace file");
            let p: Program = json::from_str(&text).expect("parse trace file");
            rce_trace::validate(&p).expect("trace must be structurally valid");
            let cfg = MachineConfig::paper_default(p.n_threads(), o.protocol);
            let r = Machine::new(&cfg).expect("config").run(&p).expect("run");
            println!("protocol:   {}", r.protocol.name());
            println!("cycles:     {}", r.cycles.0);
            println!("mem ops:    {}", r.mem_ops);
            println!("L1 miss:    {:.1}%", r.l1_miss_rate() * 100.0);
            println!("NoC bytes:  {}", r.noc_bytes());
            println!("DRAM bytes: {}", r.dram_bytes());
            println!("energy:     {}", r.energy_total());
            println!(
                "conflicts:  {} (oracle agrees: {})",
                r.exceptions.len(),
                r.matches_oracle()
            );
            for ex in r.exceptions.iter().take(10) {
                println!("  {ex}");
            }
        }
        _ => usage(),
    }
}
