//! `paper` — regenerate the paper's tables and figures.
//!
//! ```text
//! paper all                      # every experiment
//! paper fig-runtime              # one experiment
//! paper table2 --cores 16 --scale 2 --seed 7 --jobs 8
//! paper list                     # experiment catalog
//! ```
//!
//! Each experiment prints its text table and writes machine-readable
//! rows to `results/<id>.json` (used by EXPERIMENTS.md).

use rce_bench::{figures::base_sweep, Ablation, EvalParams, Experiment};
use rce_common::json;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: paper <experiment|all|ablations|summary|list> [--cores N] [--scale N] [--seed N] \
         [--jobs N] [--out DIR]\nexperiments: {}\nablations: {}",
        Experiment::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", "),
        Ablation::ALL
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut params = EvalParams::default();
    let mut out_dir = "results".to_string();
    let mut i = 1;
    while i < args.len() {
        let need_val = |i: usize| args.get(i + 1).unwrap_or_else(|| usage()).clone();
        match args[i].as_str() {
            "--cores" => {
                params.cores = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--scale" => {
                params.scale = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                params.seed = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--jobs" => {
                params.jobs = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--out" => {
                out_dir = need_val(i);
                i += 2;
            }
            _ => usage(),
        }
    }

    if command == "summary" {
        match rce_bench::summary::evaluate(std::path::Path::new(&out_dir)) {
            Some(claims) => {
                println!("{}", rce_bench::summary::render(&claims));
                if claims.iter().any(|c| !c.pass) {
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("missing results in '{out_dir}/' — run `paper all` first");
                std::process::exit(2);
            }
        }
        return;
    }

    if command == "list" {
        for e in Experiment::ALL {
            println!("{:<20} {}", e.name(), e.run_description());
        }
        for a in Ablation::ALL {
            println!("{:<20} ablation", a.name());
        }
        return;
    }

    // Ablations: one or all.
    let ablations: Vec<Ablation> = if command == "ablations" {
        Ablation::ALL.to_vec()
    } else {
        Ablation::parse(&command).into_iter().collect()
    };
    if !ablations.is_empty() {
        std::fs::create_dir_all(&out_dir).expect("create results directory");
        for a in ablations {
            eprintln!("== {} ==", a.name());
            let start = std::time::Instant::now();
            let fig = a.run(&params);
            eprintln!("   done in {:.1}s", start.elapsed().as_secs_f64());
            println!("{}", fig.table);
            write_result(&out_dir, &fig, &params);
        }
        return;
    }

    let experiments: Vec<Experiment> = if command == "all" {
        Experiment::ALL.to_vec()
    } else {
        match Experiment::parse(&command) {
            Some(e) => vec![e],
            None => usage(),
        }
    };

    std::fs::create_dir_all(&out_dir).expect("create results directory");
    // The four per-workload figures share one sweep.
    let needs_sweep = experiments.iter().any(|e| {
        matches!(
            e,
            Experiment::FigRuntime
                | Experiment::FigEnergy
                | Experiment::FigNoc
                | Experiment::FigDram
        )
    });
    let sweep = if needs_sweep && experiments.len() > 1 {
        eprintln!(
            "running base sweep: 13 workloads x 4 designs at {} cores, scale {} ...",
            params.cores, params.scale
        );
        Some(base_sweep(&params))
    } else {
        None
    };

    for e in experiments {
        eprintln!("== {} ({}) ==", e.name(), e.run_description());
        let start = std::time::Instant::now();
        let fig = e.run(&params, sweep.as_ref());
        eprintln!("   done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", fig.table);
        write_result(&out_dir, &fig, &params);
    }
}

fn write_result(out_dir: &str, fig: &rce_bench::FigureOutput, params: &EvalParams) {
    let path = format!("{out_dir}/{}.json", fig.id);
    let mut f = std::fs::File::create(&path).expect("write results file");
    let payload = json!({
        "id": fig.id,
        "title": fig.title,
        "cores": params.cores,
        "scale": params.scale,
        "seed": params.seed,
        "data": fig.json,
    });
    writeln!(f, "{}", json::to_string_pretty(&payload)).unwrap();
    eprintln!("   wrote {path}");
}

/// Human descriptions for `paper list`.
trait Describe {
    fn run_description(&self) -> &'static str;
}

impl Describe for Experiment {
    fn run_description(&self) -> &'static str {
        match self {
            Experiment::Table1 => "simulated system configuration",
            Experiment::Table2 => "workload characteristics",
            Experiment::FigRuntime => "run time normalized to MESI",
            Experiment::FigEnergy => "energy normalized to MESI + breakdown",
            Experiment::FigNoc => "on-chip traffic normalized to MESI",
            Experiment::FigDram => "off-chip traffic normalized to MESI",
            Experiment::FigScaling => "geomean run time vs core count",
            Experiment::FigAim => "AIM size sensitivity",
            Experiment::Table3 => "conflicts detected vs oracle",
            Experiment::FigSaturation => "NoC saturation vs core count",
            Experiment::FigSeeds => "seed sensitivity of headline geomeans",
        }
    }
}
