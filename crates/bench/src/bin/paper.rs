//! `paper` — regenerate the paper's tables and figures.
//!
//! ```text
//! paper all                      # every experiment
//! paper fig-runtime              # one experiment
//! paper table2 --cores 16 --scale 2 --seed 7 --jobs 8
//! paper trace ping_pong CE+      # one traced run -> Chrome trace JSON
//! paper report canneal CE+ideal  # one run -> SimReport JSON on stdout
//! paper list                     # experiment catalog
//! ```
//!
//! Each experiment prints its text table and writes machine-readable
//! rows to `results/<id>.json` (used by EXPERIMENTS.md). `trace` runs
//! one simulation with full observability on and writes
//! `results/trace-<workload>-<engine>.json` (Chrome `trace_event`
//! format, loadable in Perfetto / `chrome://tracing`) plus a `.ndjson`
//! event log, then re-runs with observability off and fails loudly if
//! instrumentation perturbed the simulation.

use rce_bench::runner::run_one_cfg;
use rce_bench::{
    diff::diff_values,
    figures::{base_sweep, TIMELINE_INTERVAL},
    profile, run_one_obs, Ablation, EvalParams, Experiment,
};
use rce_common::{json, ObsConfig};
use rce_core::{find_variant, AccessType, EngineVariant, REGISTRY};
use rce_trace::WorkloadSpec;
use std::io::Write;

fn engine_names() -> String {
    REGISTRY
        .iter()
        .map(|v| v.cli_name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn ablation_names() -> String {
    Ablation::ALL
        .iter()
        .map(|a| a.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn usage() -> ! {
    eprintln!(
        "usage: paper <experiment|all|ablations|summary|list> [--cores N] [--scale N] [--seed N] \
         [--jobs N] [--out DIR]\n       paper trace <workload> <engine> [--cores N] [--scale N] \
         [--seed N] [--out DIR]\n       paper report <workload> <engine> [--cores N] [--scale N] \
         [--seed N]\n       paper explain <workload> <engine> [--cores N] [--scale N] [--seed N] \
         [--top K]\n       paper diff <a.json> <b.json> [--tolerance PCT] [--ignore PATHSUBSTR]...\n       \
         paper trajectory [--out DIR]\n       paper bench-hot [--smoke]\nexperiments: {}\n\
         ablations: {}\nengines: {}",
        Experiment::ALL
            .iter()
            .map(|e| e.name())
            .collect::<Vec<_>>()
            .join(", "),
        ablation_names(),
        engine_names()
    );
    std::process::exit(2);
}

/// Resolve an engine name against the registry, or exit 2 after
/// listing every valid name.
fn engine_or_exit(name: &str) -> &'static EngineVariant {
    find_variant(name).unwrap_or_else(|| {
        eprintln!("unknown engine '{name}'; valid engines: {}", engine_names());
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut params = EvalParams::default();
    let mut out_dir = "results".to_string();
    let mut top = 5usize;
    let mut tolerance = 0.0f64;
    let mut ignores: Vec<String> = Vec::new();
    let mut smoke = false;
    // `trace`, `report`, `explain` (workload + engine) and `diff`
    // (two report files) take two positional operands before the flags.
    let has_operands =
        command == "trace" || command == "report" || command == "explain" || command == "diff";
    let mut i = if has_operands { 3 } else { 1 };
    if has_operands && args.len() < 3 {
        usage();
    }
    while i < args.len() {
        let need_val = |i: usize| args.get(i + 1).unwrap_or_else(|| usage()).clone();
        match args[i].as_str() {
            "--cores" => {
                params.cores = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--scale" => {
                params.scale = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                params.seed = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--jobs" => {
                params.jobs = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--out" => {
                out_dir = need_val(i);
                i += 2;
            }
            "--top" => {
                top = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--tolerance" => {
                tolerance = need_val(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--ignore" => {
                ignores.push(need_val(i));
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    if command == "trace" {
        run_trace(&args[1], &args[2], &params, &out_dir);
        return;
    }

    if command == "report" {
        run_report(&args[1], &args[2], &params);
        return;
    }

    if command == "explain" {
        run_explain(&args[1], &args[2], &params, top);
        return;
    }

    if command == "diff" {
        run_diff(&args[1], &args[2], tolerance, &ignores);
        return;
    }

    if command == "trajectory" {
        run_trajectory(&out_dir);
        return;
    }

    if command == "bench-hot" {
        run_bench_hot(smoke);
        return;
    }

    if command == "summary" {
        match rce_bench::summary::evaluate(std::path::Path::new(&out_dir)) {
            Some(claims) => {
                println!("{}", rce_bench::summary::render(&claims));
                if claims.iter().any(|c| !c.pass) {
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("missing results in '{out_dir}/' — run `paper all` first");
                std::process::exit(2);
            }
        }
        return;
    }

    if command == "list" {
        for e in Experiment::ALL {
            println!("{:<20} {}", e.name(), e.run_description());
        }
        for a in Ablation::ALL {
            println!("{:<20} ablation", a.name());
        }
        return;
    }

    // Ablations: one or all.
    let ablations: Vec<Ablation> = if command == "ablations" {
        Ablation::ALL.to_vec()
    } else {
        let parsed = Ablation::parse(&command);
        if parsed.is_none() && command.starts_with("ablate-") {
            eprintln!(
                "unknown ablation '{command}'; valid ablations: {}",
                ablation_names()
            );
            std::process::exit(2);
        }
        parsed.into_iter().collect()
    };
    if !ablations.is_empty() {
        std::fs::create_dir_all(&out_dir).expect("create results directory");
        profile::enable();
        for a in ablations {
            eprintln!("== {} ==", a.name());
            profile::set_phase(a.name());
            let start = std::time::Instant::now();
            let fig = a.run(&params);
            eprintln!("   done in {:.1}s", start.elapsed().as_secs_f64());
            println!("{}", fig.table);
            write_result(&out_dir, &fig, &params);
        }
        eprintln!("{}", profile::render());
        return;
    }

    let experiments: Vec<Experiment> = if command == "all" {
        Experiment::ALL.to_vec()
    } else {
        match Experiment::parse(&command) {
            Some(e) => vec![e],
            None => usage(),
        }
    };

    std::fs::create_dir_all(&out_dir).expect("create results directory");
    profile::enable();
    // The four per-workload figures share one sweep.
    let needs_sweep = experiments.iter().any(|e| {
        matches!(
            e,
            Experiment::FigRuntime
                | Experiment::FigEnergy
                | Experiment::FigNoc
                | Experiment::FigDram
        )
    });
    let sweep = if needs_sweep && experiments.len() > 1 {
        eprintln!(
            "running base sweep: 13 workloads x 4 designs at {} cores, scale {} ...",
            params.cores, params.scale
        );
        profile::set_phase("base-sweep");
        Some(base_sweep(&params))
    } else {
        None
    };

    for e in experiments {
        eprintln!("== {} ({}) ==", e.name(), e.run_description());
        profile::set_phase(e.name());
        let start = std::time::Instant::now();
        let fig = e.run(&params, sweep.as_ref());
        eprintln!("   done in {:.1}s", start.elapsed().as_secs_f64());
        println!("{}", fig.table);
        write_result(&out_dir, &fig, &params);
    }
    eprintln!("{}", profile::render());
}

/// `paper trace <workload> <engine>`: one fully-observed run.
///
/// Writes the Chrome `trace_event` export and an NDJSON event log to
/// `<out>/trace-<workload>-<engine>.{json,ndjson}`, prints a summary
/// of what the tracer captured, and then re-runs the same simulation
/// with observability off — exiting nonzero if the two reports differ
/// (the zero-perturbation contract of `rce_common::obs`).
fn run_trace(workload: &str, engine: &str, params: &EvalParams, out_dir: &str) {
    let w = match WorkloadSpec::parse(workload) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload '{workload}'");
            std::process::exit(2);
        }
    };
    let v = engine_or_exit(engine);
    profile::enable();
    profile::set_phase("trace");
    let cfg = v.config(params.cores);
    let r = run_one_obs(
        w,
        &cfg,
        params.scale,
        params.seed,
        ObsConfig::full(TIMELINE_INTERVAL),
    );
    let log = r.trace.as_ref().expect("tracing was requested");
    let timeline = r.timeline.as_ref().expect("sampling was requested");

    std::fs::create_dir_all(out_dir).expect("create results directory");
    let slug = v.cli_name.replace('+', "plus").to_lowercase();
    let base = format!("{out_dir}/trace-{}-{slug}", w.name());

    let chrome = log.to_chrome_trace();
    let chrome_text = json::to_string_pretty(&chrome);
    // Self-check: what we hand to Perfetto must at least be JSON.
    json::JsonValue::parse(&chrome_text).expect("emitted Chrome trace must parse");
    std::fs::write(format!("{base}.json"), &chrome_text).expect("write Chrome trace");
    // The NDJSON log ends with a summary footer so consumers can tell
    // a complete capture from one that overflowed the ring.
    let ndjson = format!("{}{}", log.to_ndjson(), log.ndjson_footer());
    std::fs::write(format!("{base}.ndjson"), ndjson).expect("write NDJSON log");

    eprintln!(
        "traced {} on {}: {} events emitted, {} kept (capacity {}), {} dropped; \
         {} timeline samples every {} cycles",
        w.name(),
        v.cli_name,
        log.emitted,
        log.events.len(),
        log.capacity,
        log.drops,
        timeline.samples.len(),
        timeline.interval,
    );
    if log.drops > 0 {
        eprintln!(
            "WARNING: ring overflow dropped {} of {} events — the exports are incomplete; \
             raise the trace capacity to keep them all",
            log.drops, log.emitted
        );
    }
    eprintln!("   wrote {base}.json (Chrome trace_event; open in Perfetto)");
    eprintln!("   wrote {base}.ndjson");

    // Zero-perturbation check: strip the obs fields and compare with a
    // plain run of the exact same simulation.
    profile::set_phase("verify");
    let mut stripped = r.clone();
    stripped.timeline = None;
    stripped.trace = None;
    stripped.forensics = None;
    let plain = run_one_cfg(w, &cfg, params.scale, params.seed);
    if json::to_string(&stripped) != json::to_string(&plain) {
        eprintln!("ERROR: observability perturbed the simulation (reports differ)");
        std::process::exit(1);
    }
    eprintln!("   verified: report is byte-identical with observability off");
    eprintln!("{}", profile::render());
}

/// `paper report <workload> <engine>`: run one simulation at the
/// registry configuration and print the `SimReport` JSON to stdout.
///
/// The output is byte-identical to the matching `tests/goldens/*.json`
/// file (pretty JSON plus a trailing newline), which is exactly what
/// `scripts/ci.sh` diffs against.
fn run_report(workload: &str, engine: &str, params: &EvalParams) {
    let w = match WorkloadSpec::parse(workload) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload '{workload}'");
            std::process::exit(2);
        }
    };
    let v = engine_or_exit(engine);
    let cfg = v.config(params.cores);
    let r = run_one_cfg(w, &cfg, params.scale, params.seed);
    println!("{}", json::to_string_pretty(&r));
}

/// `paper explain <workload> <engine>`: replay one run with the
/// forensics layer on and print a human-readable root-cause report for
/// every delivered exception, plus the hottest conflict lines and core
/// pairs.
fn run_explain(workload: &str, engine: &str, params: &EvalParams, top: usize) {
    let w = match WorkloadSpec::parse(workload) {
        Some(w) => w,
        None => {
            eprintln!("unknown workload '{workload}'");
            std::process::exit(2);
        }
    };
    let v = engine_or_exit(engine);
    let cfg = v.config(params.cores);
    let r = run_one_obs(
        w,
        &cfg,
        params.scale,
        params.seed,
        ObsConfig::forensics_only(),
    );
    let f = r.forensics.expect("forensics was requested");
    println!(
        "{} on {} ({} cores, scale {}, seed {}):",
        w.name(),
        v.cli_name,
        params.cores,
        params.scale,
        params.seed
    );
    println!(
        "  {} conflict detections materialized, {} exceptions delivered\n",
        f.total_detections, f.delivered
    );
    if f.records.is_empty() {
        println!("no exceptions delivered: nothing to explain");
        return;
    }
    let rw = |k: AccessType| {
        if k == AccessType::Write {
            "write"
        } else {
            "read"
        }
    };
    for (i, rec) in f.records.iter().enumerate() {
        let ex = &rec.exception;
        println!(
            "#{}: word 0x{:x} (line {}) @ cycle {}",
            i + 1,
            ex.word_addr.0,
            ex.word_addr.line().0,
            ex.detected_at.0
        );
        println!(
            "    core {} {} in region {}  x  core {} {} in region {}",
            ex.a.core.0,
            rw(ex.a.kind),
            ex.a.region.0,
            ex.b.core.0,
            rw(ex.b.kind),
            ex.b.region.0
        );
        println!("    found via: {}", rec.path.describe());
        if rec.recent.is_empty() {
            println!("    no earlier events on the line in the window");
        } else {
            println!("    recent events on the line:");
            for e in &rec.recent {
                let who = e.core.map_or("-".to_string(), |c| c.to_string());
                println!("      cycle {:<8} core {:<3} {:?}", e.cycle, who, e.kind);
            }
        }
        println!();
    }
    if f.truncated_records > 0 {
        println!(
            "({} more delivered exceptions truncated from the record list)\n",
            f.truncated_records
        );
    }
    println!("hottest conflict lines:");
    for h in f.hottest_lines(top) {
        println!(
            "  line {:<8} (bytes {}..{}): {} detections",
            h.line,
            h.line * 64,
            h.line * 64 + 64,
            h.conflicts
        );
    }
    println!("hottest core pairs:");
    for h in f.hottest_pairs(top) {
        println!(
            "  cores {}-{}: {} detections",
            h.core_a, h.core_b, h.conflicts
        );
    }
}

/// `paper diff <a.json> <b.json>`: structural comparison of two report
/// documents. Prints every out-of-tolerance drift with its JSON path
/// and exits 1 if any exist; a clean comparison exits 0. `--ignore`
/// (repeatable) drops drifts whose path contains the given substring —
/// how CI skips the machine-dependent `hot_path.measured` section of
/// the trajectory baseline while still gating everything else.
fn run_diff(path_a: &str, path_b: &str, tolerance: f64, ignores: &[String]) {
    let load = |p: &str| -> json::JsonValue {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        });
        json::JsonValue::parse(&text).unwrap_or_else(|e| {
            eprintln!("{p}: not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let a = load(path_a);
    let b = load(path_b);
    let mut drifts = diff_values(&a, &b, tolerance);
    let before = drifts.len();
    drifts.retain(|d| !ignores.iter().any(|s| d.path.contains(s.as_str())));
    if before > drifts.len() {
        eprintln!(
            "({} drift(s) in --ignore'd paths skipped)",
            before - drifts.len()
        );
    }
    if drifts.is_empty() {
        eprintln!("{path_a} and {path_b} match within {tolerance}% tolerance");
        return;
    }
    for d in &drifts {
        println!("{d}");
    }
    eprintln!(
        "{} drift(s) beyond {tolerance}% tolerance between {path_a} and {path_b}",
        drifts.len()
    );
    std::process::exit(1);
}

/// Pinned parameters for `paper trajectory`: small enough for a CI
/// gate, fixed so the committed baseline stays comparable across
/// machines and sessions.
const TRAJECTORY_CORES: usize = 4;
const TRAJECTORY_SCALE: u32 = 1;
const TRAJECTORY_SEED: u64 = 42;
const TRAJECTORY_WORKLOADS: [WorkloadSpec; 4] = [
    WorkloadSpec::PrivateOnly,
    WorkloadSpec::FalseSharing,
    WorkloadSpec::PingPong,
    WorkloadSpec::RacyPair,
];

/// `paper trajectory`: run the pinned micro-sweep and write
/// `<out>/bench_trajectory.json`. CI diffs this against the committed
/// baseline (`paper diff --tolerance`) to catch silent perf/behavior
/// drift; the sweep is deterministic, so any drift is a real change.
fn run_trajectory(out_dir: &str) {
    let mut rows = Vec::new();
    for w in TRAJECTORY_WORKLOADS {
        for v in REGISTRY.iter().filter(|v| v.is_paper_design()) {
            let cfg = v.config(TRAJECTORY_CORES);
            let r = run_one_cfg(w, &cfg, TRAJECTORY_SCALE, TRAJECTORY_SEED);
            rows.push(json!({
                "workload": w.name(),
                "engine": v.cli_name,
                "cycles": r.cycles.0,
                "mem_ops": r.mem_ops,
                "noc_bytes": r.noc_bytes().0,
                "dram_bytes": r.dram_bytes().0,
                "llc_misses": r.llc_misses,
                "exceptions": r.exceptions.len(),
                "energy_pj": r.energy_total().0,
            }));
        }
    }
    // Simulator throughput rides along in a `hot_path` section: the
    // `pinned` half (the speedup floor) diffs exactly like any other
    // field, while the `measured` half is wall time — machine-dependent
    // by nature — so CI compares with `--ignore hot_path.measured`.
    let m = rce_bench::hotpath::measure(true);
    let payload = json!({
        "id": "bench_trajectory",
        "cores": TRAJECTORY_CORES,
        "scale": TRAJECTORY_SCALE,
        "seed": TRAJECTORY_SEED,
        "hot_path": json!({
            "pinned": json!({
                "min_speedup_x": rce_bench::hotpath::MIN_SPEEDUP_X,
                "min_fastpath_speedup_x": rce_bench::hotpath::MIN_FASTPATH_SPEEDUP_X,
            }),
            "measured": json!({
                "ns_per_access": m.ns_per_access,
                "speedup_vs_hashmap": m.speedup_vs_hashmap,
                "fastpath_speedup_x": m.fastpath_speedup_x,
            }),
        }),
        "rows": rows,
    });
    std::fs::create_dir_all(out_dir).expect("create results directory");
    let path = format!("{out_dir}/bench_trajectory.json");
    let mut file = std::fs::File::create(&path).expect("write trajectory file");
    writeln!(file, "{}", json::to_string_pretty(&payload)).unwrap();
    eprintln!("   wrote {path}");
}

/// `paper bench-hot [--smoke]`: time the simulator's hot-path storage
/// against `std::collections` references doing identical work, plus
/// the AIM spill/refill path and one end-to-end run. Exits 1 if the
/// flat raw-access path falls below
/// [`rce_bench::hotpath::MIN_SPEEDUP_X`] — the throughput-regression
/// gate `scripts/ci.sh` runs in `--smoke` mode.
fn run_bench_hot(smoke: bool) {
    let m = rce_bench::hotpath::run(smoke);
    if m.speedup_vs_hashmap < rce_bench::hotpath::MIN_SPEEDUP_X {
        eprintln!(
            "FAIL: flat raw-access path is only {:.2}x the HashMap reference \
             (floor {}x) — the hot path has regressed",
            m.speedup_vs_hashmap,
            rce_bench::hotpath::MIN_SPEEDUP_X
        );
        std::process::exit(1);
    }
    if m.fastpath_speedup_x < rce_bench::hotpath::MIN_FASTPATH_SPEEDUP_X {
        eprintln!(
            "FAIL: the access-filter fast path is only {:.2}x end-to-end on the \
             repeat-heavy workload (floor {}x) — the fast path has regressed",
            m.fastpath_speedup_x,
            rce_bench::hotpath::MIN_FASTPATH_SPEEDUP_X
        );
        std::process::exit(1);
    }
}

fn write_result(out_dir: &str, fig: &rce_bench::FigureOutput, params: &EvalParams) {
    let path = format!("{out_dir}/{}.json", fig.id);
    let mut f = std::fs::File::create(&path).expect("write results file");
    let payload = json!({
        "id": fig.id,
        "title": fig.title,
        "cores": params.cores,
        "scale": params.scale,
        "seed": params.seed,
        "data": fig.json,
    });
    writeln!(f, "{}", json::to_string_pretty(&payload)).unwrap();
    eprintln!("   wrote {path}");
}

/// Human descriptions for `paper list`.
trait Describe {
    fn run_description(&self) -> &'static str;
}

impl Describe for Experiment {
    fn run_description(&self) -> &'static str {
        match self {
            Experiment::Table1 => "simulated system configuration",
            Experiment::Table2 => "workload characteristics",
            Experiment::FigRuntime => "run time normalized to MESI",
            Experiment::FigEnergy => "energy normalized to MESI + breakdown",
            Experiment::FigNoc => "on-chip traffic normalized to MESI",
            Experiment::FigDram => "off-chip traffic normalized to MESI",
            Experiment::FigScaling => "geomean run time vs core count",
            Experiment::FigAim => "AIM size sensitivity",
            Experiment::Table3 => "conflicts detected vs oracle",
            Experiment::FigSaturation => "NoC saturation vs core count",
            Experiment::FigSeeds => "seed sensitivity of headline geomeans",
            Experiment::FigSaturationTimeline => "per-interval NoC utilization, CE+ vs ARC",
            Experiment::FigConflictHeatmap => "hottest conflict lines/core pairs, CE+ vs ARC",
        }
    }
}
