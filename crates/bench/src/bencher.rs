//! Minimal in-tree timing harness (the criterion replacement).
//!
//! Each case runs a closure a fixed number of times after a short
//! warm-up and reports min / median / p90 wall time, plus throughput
//! when the caller supplies an element count. No statistics beyond
//! order statistics: medians are robust to scheduler noise, and the
//! harness has zero dependencies.
//!
//! Sample count is tunable with `RCE_BENCH_SAMPLES` (default 10).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default measured samples per case.
pub const DEFAULT_SAMPLES: usize = 10;

/// Warm-up iterations before measuring.
pub const WARMUP_ITERS: usize = 2;

/// Timing summary for one benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Case name (group/id).
    pub name: String,
    /// Measured samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// 90th-percentile sample.
    pub p90: Duration,
    /// Elements per second at the median, if an element count was
    /// given.
    pub throughput: Option<f64>,
}

impl BenchResult {
    /// One aligned report line.
    pub fn render(&self) -> String {
        let tp = match self.throughput {
            Some(t) => format!("  {:>12.0} elem/s", t),
            None => String::new(),
        };
        format!(
            "{:<40} min {:>10.3?}  median {:>10.3?}  p90 {:>10.3?}{tp}",
            self.name, self.min, self.median, self.p90
        )
    }
}

/// A named group of benchmark cases (mirrors criterion's group/case
/// naming so existing bench targets keep their output shape).
pub struct Bencher {
    group: String,
    samples: usize,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Start a group. Sample count comes from `RCE_BENCH_SAMPLES` or
    /// [`DEFAULT_SAMPLES`].
    pub fn group(name: &str) -> Self {
        let samples = std::env::var("RCE_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SAMPLES);
        println!("== {name} ({samples} samples) ==");
        Bencher {
            group: name.to_string(),
            samples,
            results: Vec::new(),
        }
    }

    /// Time `f`, discarding [`WARMUP_ITERS`] warm-up runs, and print
    /// the case line. `elements` enables a throughput column.
    pub fn case<R>(&mut self, id: &str, elements: Option<u64>, mut f: impl FnMut() -> R) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let p90 = times[(times.len() * 9 / 10).min(times.len() - 1)];
        let r = BenchResult {
            name: format!("{}/{id}", self.group),
            samples: self.samples,
            min: times[0],
            median,
            p90,
            throughput: elements
                .filter(|_| median > Duration::ZERO)
                .map(|n| n as f64 / median.as_secs_f64()),
        };
        println!("{}", r.render());
        self.results.push(r);
    }

    /// All results so far (tests use this; the binaries just print).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_ordered_and_throughput_positive() {
        let mut b = Bencher::group("test");
        b.case("spin", Some(1000), || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let r = &b.results()[0];
        assert!(r.min <= r.median && r.median <= r.p90);
        assert!(r.throughput.unwrap() > 0.0);
        assert_eq!(r.samples, DEFAULT_SAMPLES);
        assert!(r.render().contains("test/spin"));
    }

    #[test]
    fn zero_elements_mean_no_throughput() {
        let mut b = Bencher::group("test2");
        b.case("noop", None, || 1 + 1);
        assert!(b.results()[0].throughput.is_none());
    }
}
