//! Per-event energy model.
//!
//! The paper's energy comparison (our reconstructed Fig. R-F2) is a
//! ratio between designs whose event mixes differ: CE trades SRAM
//! events for DRAM events, ARC trades network flits for extra LLC
//! fills. A per-event model with CACTI/McPAT-class constants preserves
//! exactly those ratios, which is what the substitution table in
//! DESIGN.md promises. Events are counted by the substrates; this
//! crate turns counts into picojoules and a component breakdown.
//!
//! Constants (45 nm-class, order-of-magnitude; the *relative*
//! magnitudes are what matter):
//! - L1 access ≈ 15 pJ, LLC access ≈ 60 pJ, AIM access ≈ 20 pJ,
//!   directory lookup ≈ 10 pJ,
//! - NoC ≈ 6 pJ per flit-hop,
//! - DRAM ≈ 20 pJ/byte + 2 nJ activation amortized per access,
//! - static leakage ≈ 0.1 W/core-equivalent charged per cycle.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod model;

pub use model::{EnergyBreakdown, EnergyModel, EventCounts};
