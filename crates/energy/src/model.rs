//! Energy accounting: event counts → picojoules with a component
//! breakdown.

use rce_common::{impl_json_struct, PicoJoules};

/// Per-event energy constants. All values in picojoules unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One L1 tag+data access.
    pub l1_access: f64,
    /// One LLC bank access.
    pub llc_access: f64,
    /// One AIM (metadata cache) access.
    pub aim_access: f64,
    /// One directory lookup/update.
    pub dir_access: f64,
    /// One flit crossing one link (router + wire).
    pub noc_flit_hop: f64,
    /// DRAM energy per byte transferred.
    pub dram_per_byte: f64,
    /// DRAM activation energy amortized per access.
    pub dram_per_access: f64,
    /// Static leakage per core per cycle.
    pub static_per_core_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1_access: 15.0,
            llc_access: 60.0,
            aim_access: 20.0,
            dir_access: 10.0,
            noc_flit_hop: 6.0,
            dram_per_byte: 20.0,
            dram_per_access: 2000.0,
            static_per_core_cycle: 0.1,
        }
    }
}

impl_json_struct!(EnergyBreakdown {
    l1,
    llc,
    aim,
    dir,
    noc,
    dram,
    static_
});

/// Raw event counts collected by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// L1 accesses (hits and misses both touch the array).
    pub l1_accesses: u64,
    /// LLC bank accesses.
    pub llc_accesses: u64,
    /// AIM accesses.
    pub aim_accesses: u64,
    /// Directory lookups/updates.
    pub dir_accesses: u64,
    /// Total NoC flit-hops.
    pub noc_flit_hops: u64,
    /// Total DRAM bytes.
    pub dram_bytes: u64,
    /// Total DRAM accesses.
    pub dram_accesses: u64,
    /// Execution cycles.
    pub cycles: u64,
    /// Core count.
    pub cores: u64,
}

/// Energy per component, plus the total.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Private cache energy.
    pub l1: PicoJoules,
    /// LLC energy.
    pub llc: PicoJoules,
    /// AIM energy.
    pub aim: PicoJoules,
    /// Directory energy.
    pub dir: PicoJoules,
    /// Network energy.
    pub noc: PicoJoules,
    /// Off-chip DRAM energy.
    pub dram: PicoJoules,
    /// Static leakage.
    pub static_: PicoJoules,
}

impl EnergyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> PicoJoules {
        self.l1 + self.llc + self.aim + self.dir + self.noc + self.dram + self.static_
    }

    /// `(component name, value)` pairs, display order.
    pub fn components(&self) -> [(&'static str, PicoJoules); 7] {
        [
            ("L1", self.l1),
            ("LLC", self.llc),
            ("AIM", self.aim),
            ("Dir", self.dir),
            ("NoC", self.noc),
            ("DRAM", self.dram),
            ("Static", self.static_),
        ]
    }
}

impl EnergyModel {
    /// Evaluate the model on `counts`.
    pub fn evaluate(&self, counts: &EventCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            l1: PicoJoules(self.l1_access * counts.l1_accesses as f64),
            llc: PicoJoules(self.llc_access * counts.llc_accesses as f64),
            aim: PicoJoules(self.aim_access * counts.aim_accesses as f64),
            dir: PicoJoules(self.dir_access * counts.dir_accesses as f64),
            noc: PicoJoules(self.noc_flit_hop * counts.noc_flit_hops as f64),
            dram: PicoJoules(
                self.dram_per_byte * counts.dram_bytes as f64
                    + self.dram_per_access * counts.dram_accesses as f64,
            ),
            static_: PicoJoules(
                self.static_per_core_cycle * counts.cycles as f64 * counts.cores as f64,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counts_zero_energy() {
        let e = EnergyModel::default().evaluate(&EventCounts::default());
        assert_eq!(e.total(), PicoJoules::ZERO);
    }

    #[test]
    fn components_add_up() {
        let counts = EventCounts {
            l1_accesses: 100,
            llc_accesses: 10,
            aim_accesses: 5,
            dir_accesses: 10,
            noc_flit_hops: 50,
            dram_bytes: 640,
            dram_accesses: 10,
            cycles: 1000,
            cores: 4,
        };
        let m = EnergyModel::default();
        let e = m.evaluate(&counts);
        let manual = e.l1.0 + e.llc.0 + e.aim.0 + e.dir.0 + e.noc.0 + e.dram.0 + e.static_.0;
        assert!((e.total().0 - manual).abs() < 1e-9);
        assert!((e.l1.0 - 1500.0).abs() < 1e-9);
        assert!((e.dram.0 - (20.0 * 640.0 + 2000.0 * 10.0)).abs() < 1e-9);
        assert!((e.static_.0 - 0.1 * 1000.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn energy_monotone_in_events() {
        let m = EnergyModel::default();
        let a = EventCounts {
            dram_bytes: 64,
            dram_accesses: 1,
            ..EventCounts::default()
        };
        let mut b = a;
        b.dram_bytes = 128;
        b.dram_accesses = 2;
        assert!(m.evaluate(&b).total() > m.evaluate(&a).total());
    }

    #[test]
    fn dram_byte_dominates_sram_access() {
        // A 64-byte DRAM transfer must cost much more than an L1
        // access — the ratio CE's costs hinge on.
        let m = EnergyModel::default();
        let dram_per_line = m.dram_per_byte * 64.0 + m.dram_per_access;
        assert!(dram_per_line > 20.0 * m.l1_access);
    }

    #[test]
    fn component_labels() {
        let e = EnergyModel::default().evaluate(&EventCounts::default());
        let names: Vec<_> = e.components().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["L1", "LLC", "AIM", "Dir", "NoC", "DRAM", "Static"]
        );
    }
}
