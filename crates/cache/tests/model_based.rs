//! Model-based property tests: `SetAssoc` against a reference model.
//!
//! The reference is a map plus an explicit per-set LRU list; the
//! property is that an arbitrary operation sequence leaves both with
//! identical contents. This pins the replacement policy (true LRU with
//! recency updates on `get_mut` but not `peek`) — exactly the behavior
//! the simulator's hit/miss numbers rest on.

use rce_cache::SetAssoc;
use rce_common::check::check_n;
use rce_common::{prop_assert, prop_assert_eq, Rng};
use std::collections::HashMap;

const SETS: u64 = 4;
const WAYS: u32 = 2;

/// Reference: per-set vectors in LRU order (front = LRU).
#[derive(Default, Debug)]
struct Model {
    sets: HashMap<u64, Vec<(u64, u32)>>,
}

impl Model {
    fn set_of(key: u64) -> u64 {
        key & (SETS - 1)
    }

    fn get(&mut self, key: u64) -> Option<u32> {
        let set = self.sets.entry(Self::set_of(key)).or_default();
        if let Some(pos) = set.iter().position(|(k, _)| *k == key) {
            let e = set.remove(pos);
            let v = e.1;
            set.push(e); // most recently used at the back
            Some(v)
        } else {
            None
        }
    }

    fn peek(&self, key: u64) -> Option<u32> {
        self.sets
            .get(&Self::set_of(key))?
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    fn insert(&mut self, key: u64, value: u32) -> Option<(u64, u32)> {
        let set = self.sets.entry(Self::set_of(key)).or_default();
        assert!(set.iter().all(|(k, _)| *k != key));
        let evicted = if set.len() == WAYS as usize {
            Some(set.remove(0))
        } else {
            None
        };
        set.push((key, value));
        evicted
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let set = self.sets.entry(Self::set_of(key)).or_default();
        let pos = set.iter().position(|(k, _)| *k == key)?;
        Some(set.remove(pos).1)
    }

    fn len(&self) -> usize {
        self.sets.values().map(Vec::len).sum()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Peek(u64),
    Insert(u64, u32),
    Remove(u64),
}

fn gen_op(rng: &mut dyn Rng) -> Op {
    let key = rng.gen_range(16);
    match rng.gen_range(4) {
        0 => Op::Get(key),
        1 => Op::Peek(key),
        2 => Op::Insert(key, rng.next_u64() as u32),
        _ => Op::Remove(key),
    }
}

#[test]
fn set_assoc_matches_reference_model() {
    check_n(
        "set_assoc matches reference model",
        256,
        |rng| {
            let n = 1 + rng.gen_range(199) as usize;
            (0..n).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |ops| {
            let mut real: SetAssoc<u32> = SetAssoc::new(SETS, WAYS);
            let mut model = Model::default();
            for op in ops {
                match *op {
                    Op::Get(k) => {
                        let r = real.get_mut(k).map(|v| *v);
                        let m = model.get(k);
                        prop_assert_eq!(r, m, "get {}", k);
                    }
                    Op::Peek(k) => {
                        prop_assert_eq!(real.peek(k).copied(), model.peek(k), "peek {}", k);
                    }
                    Op::Insert(k, v) => {
                        if real.contains(k) {
                            continue; // double insert is a caller error
                        }
                        let r = real.insert(k, v);
                        let m = model.insert(k, v);
                        prop_assert_eq!(r, m, "insert {} eviction", k);
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(real.remove(k), model.remove(k), "remove {}", k);
                    }
                }
                prop_assert_eq!(real.len(), model.len());
            }
            // Final contents identical.
            let mut real_items: Vec<_> = real.iter().map(|(k, v)| (k, *v)).collect();
            real_items.sort_unstable();
            let mut model_items: Vec<_> = model.sets.values().flatten().copied().collect();
            model_items.sort_unstable();
            prop_assert_eq!(real_items, model_items);
            Ok(())
        },
    );
}

#[test]
fn capacity_never_exceeded() {
    check_n(
        "set_assoc capacity never exceeded",
        256,
        |rng| {
            let n = 1 + rng.gen_range(299) as usize;
            (0..n).map(|_| rng.gen_range(64)).collect::<Vec<u64>>()
        },
        |keys| {
            let mut a: SetAssoc<u64> = SetAssoc::new(SETS, WAYS);
            for &k in keys {
                if !a.contains(k) {
                    a.insert(k, k);
                }
                prop_assert!(a.len() as u64 <= SETS * WAYS as u64);
                // No set holds more than WAYS entries of its own index.
                for s in 0..SETS {
                    let in_set = a.iter().filter(|(k, _)| k & (SETS - 1) == s).count();
                    prop_assert!(in_set <= WAYS as usize);
                }
            }
            Ok(())
        },
    );
}
