//! Full-map coherence directory.
//!
//! One entry per line that any private cache holds (or held): a sharer
//! bit per core (up to 64) and an optional exclusive owner. The
//! engines consult and update it on every coherence event; invariant
//! checks (`check_invariants`) run in debug tests to catch protocol
//! bugs — e.g. an owner coexisting with sharers.

use rce_common::{CoreId, LineAddr, LineMap, LineTable};

/// Directory state for one line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bit `i` set: core `i` holds the line in a readable state.
    pub sharers: u64,
    /// The core holding the line exclusively (M or E), if any.
    pub owner: Option<CoreId>,
}

impl DirEntry {
    /// True if no private cache holds the line.
    pub fn is_idle(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Iterate sharer cores.
    pub fn sharer_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..64u16)
            .filter(|i| self.sharers & (1u64 << i) != 0)
            .map(CoreId)
    }

    /// True if `c` is a sharer.
    pub fn has_sharer(&self, c: CoreId) -> bool {
        self.sharers & (1u64 << c.0) != 0
    }
}

/// The directory: line → entry. Modeled unbounded (see crate docs).
///
/// Storage is flat: lines are interned once into a [`LineTable`] and
/// entries live in a dense vector indexed by the interned id, so the
/// per-coherence-event lookups the engines issue are array indexing
/// rather than hashing. An idle entry is indistinguishable from an
/// absent one (both are the default `DirEntry`), which preserves the
/// reclaim semantics of the old map-backed version.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    table: LineTable,
    entries: LineMap<DirEntry>,
    /// Count of non-idle entries (what a real directory would have to
    /// track capacity for).
    tracked: usize,
    cores: usize,
}

impl Directory {
    /// Build for `cores` cores (≤ 64).
    pub fn new(cores: usize) -> Self {
        assert!(cores <= 64, "full-map directory supports up to 64 cores");
        Directory {
            table: LineTable::new(),
            entries: LineMap::new(),
            tracked: 0,
            cores,
        }
    }

    /// Mutate a line's entry, keeping the non-idle count in sync.
    #[inline]
    fn update(&mut self, line: LineAddr, f: impl FnOnce(&mut DirEntry)) {
        let id = self.table.intern(line);
        let e = self.entries.slot(id);
        let was_idle = e.is_idle();
        f(e);
        match (was_idle, e.is_idle()) {
            (true, false) => self.tracked += 1,
            (false, true) => self.tracked -= 1,
            _ => {}
        }
    }

    /// Entry for a line (idle default if never seen).
    pub fn entry(&self, line: LineAddr) -> DirEntry {
        self.table
            .lookup(line)
            .and_then(|id| self.entries.get(id).copied())
            .unwrap_or_default()
    }

    /// Add a sharer.
    pub fn add_sharer(&mut self, line: LineAddr, c: CoreId) {
        debug_assert!(c.index() < self.cores);
        self.update(line, |e| {
            debug_assert!(
                e.owner.is_none() || e.owner == Some(c),
                "adding sharer while another core owns the line"
            );
            e.owner = None;
            e.sharers |= 1u64 << c.0;
        });
    }

    /// Add a sharer while keeping the current owner (MOESI: a dirty
    /// Owned copy coexists with clean Shared copies).
    pub fn add_sharer_keep_owner(&mut self, line: LineAddr, c: CoreId) {
        debug_assert!(c.index() < self.cores);
        self.update(line, |e| e.sharers |= 1u64 << c.0);
    }

    /// Remove a sharer (invalidation or eviction notice).
    pub fn remove_sharer(&mut self, line: LineAddr, c: CoreId) {
        if self.table.lookup(line).is_none() {
            return;
        }
        self.update(line, |e| {
            e.sharers &= !(1u64 << c.0);
            if e.owner == Some(c) {
                e.owner = None;
            }
        });
    }

    /// Grant exclusive ownership to `c`, clearing all sharers. The
    /// caller is responsible for having invalidated them.
    pub fn set_owner(&mut self, line: LineAddr, c: CoreId) {
        debug_assert!(c.index() < self.cores);
        self.update(line, |e| {
            e.sharers = 1u64 << c.0;
            e.owner = Some(c);
        });
    }

    /// Downgrade the owner to a plain sharer (on a remote read).
    pub fn downgrade_owner(&mut self, line: LineAddr) {
        if self.table.lookup(line).is_none() {
            return;
        }
        self.update(line, |e| e.owner = None);
    }

    /// Sharers other than `except`, as a Vec (for invalidation
    /// multicasts).
    pub fn sharers_except(&self, line: LineAddr, except: CoreId) -> Vec<CoreId> {
        self.entry(line)
            .sharer_cores()
            .filter(|c| *c != except)
            .collect()
    }

    /// Number of tracked (non-idle) lines.
    pub fn tracked_lines(&self) -> usize {
        self.tracked
    }

    /// Check protocol invariants assuming exclusive (MESI) ownership.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_mode(true)
    }

    /// Check protocol invariants; returns a description of the first
    /// violation. `exclusive_owner` demands that an owner be the sole
    /// sharer (true for MESI; false under MOESI, where an Owned copy
    /// coexists with Shared copies — the owner's bit must still be
    /// set).
    pub fn check_invariants_mode(&self, exclusive_owner: bool) -> Result<(), String> {
        for (id, e) in self.entries.iter() {
            if e.is_idle() {
                continue;
            }
            let line = self.table.addr(id).0;
            if let Some(o) = e.owner {
                if exclusive_owner && e.sharers != (1u64 << o.0) {
                    return Err(format!(
                        "line {line:#x}: owner {o} but sharers {:#x}",
                        e.sharers
                    ));
                }
                if e.sharers & (1u64 << o.0) == 0 {
                    return Err(format!("line {line:#x}: owner {o} without its bit"));
                }
            }
            if e.sharers >> self.cores != 0 {
                return Err(format!("line {line:#x}: sharer bit beyond core count"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::LineAddr;

    #[test]
    fn sharer_lifecycle() {
        let mut d = Directory::new(4);
        let l = LineAddr(10);
        d.add_sharer(l, CoreId(1));
        d.add_sharer(l, CoreId(3));
        assert_eq!(d.entry(l).sharer_count(), 2);
        assert!(d.entry(l).has_sharer(CoreId(3)));
        d.remove_sharer(l, CoreId(1));
        assert_eq!(d.entry(l).sharer_count(), 1);
        d.remove_sharer(l, CoreId(3));
        assert!(d.entry(l).is_idle());
        assert_eq!(d.tracked_lines(), 0, "idle entries are reclaimed");
    }

    #[test]
    fn ownership() {
        let mut d = Directory::new(4);
        let l = LineAddr(5);
        d.set_owner(l, CoreId(2));
        let e = d.entry(l);
        assert_eq!(e.owner, Some(CoreId(2)));
        assert_eq!(e.sharer_count(), 1);
        assert!(d.check_invariants().is_ok());

        d.downgrade_owner(l);
        assert_eq!(d.entry(l).owner, None);
        assert!(d.entry(l).has_sharer(CoreId(2)));
    }

    #[test]
    fn sharers_except_excludes_requester() {
        let mut d = Directory::new(4);
        let l = LineAddr(1);
        for c in 0..3 {
            d.add_sharer(l, CoreId(c));
        }
        let mut v = d.sharers_except(l, CoreId(1));
        v.sort();
        assert_eq!(v, vec![CoreId(0), CoreId(2)]);
    }

    #[test]
    fn invariants_catch_corruption() {
        let mut d = Directory::new(2);
        let l = LineAddr(9);
        d.set_owner(l, CoreId(0));
        // Corrupt: add a sharer bit by hand via public API misuse is
        // prevented by debug_assert, so emulate by removing then
        // re-checking a fabricated state through set_owner + add.
        d.downgrade_owner(l);
        d.add_sharer(l, CoreId(1));
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn owner_eviction_clears_ownership() {
        let mut d = Directory::new(2);
        let l = LineAddr(3);
        d.set_owner(l, CoreId(1));
        d.remove_sharer(l, CoreId(1));
        assert!(d.entry(l).is_idle());
    }

    #[test]
    #[should_panic(expected = "up to 64")]
    fn too_many_cores_rejected() {
        Directory::new(65);
    }
}
