//! Generic set-associative array with true-LRU replacement.
//!
//! Keys are line-granularity addresses (or any u64 identifier); the
//! set index is the low bits of the key, so callers should pass keys
//! whose low bits vary (line numbers do). Used for L1 data arrays, the
//! LLC, and the AIM metadata cache.

/// One slot of a set.
#[derive(Debug, Clone)]
struct Slot<T> {
    key: u64,
    stamp: u64,
    value: T,
}

/// A set-associative array mapping `u64` keys to `T`, with per-set
/// true-LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssoc<T> {
    sets: u64,
    ways: u32,
    slots: Vec<Vec<Slot<T>>>,
    clock: u64,
    len: usize,
}

impl<T> SetAssoc<T> {
    /// Create with `sets` sets (power of two) × `ways` ways.
    pub fn new(sets: u64, ways: u32) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        SetAssoc {
            sets,
            ways,
            slots: (0..sets)
                .map(|_| Vec::with_capacity(ways as usize))
                .collect(),
            clock: 0,
            len: 0,
        }
    }

    /// Create from a total entry count and associativity.
    pub fn with_entries(entries: u64, ways: u32) -> Self {
        assert!(
            entries.is_multiple_of(ways as u64),
            "entries must divide by ways"
        );
        Self::new((entries / ways as u64).max(1), ways)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> u64 {
        self.sets * self.ways as u64
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        (key & (self.sets - 1)) as usize
    }

    /// Look up `key`, updating recency. Returns a mutable reference on
    /// hit.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(key);
        self.slots[set].iter_mut().find(|s| s.key == key).map(|s| {
            s.stamp = clock;
            &mut s.value
        })
    }

    /// Look up `key` without touching recency.
    pub fn peek(&self, key: u64) -> Option<&T> {
        let set = self.set_of(key);
        self.slots[set]
            .iter()
            .find(|s| s.key == key)
            .map(|s| &s.value)
    }

    /// True if `key` is resident (no recency update).
    pub fn contains(&self, key: u64) -> bool {
        self.peek(key).is_some()
    }

    /// Insert `key -> value`; if the set is full, evicts the LRU entry
    /// and returns it as `(key, value)`. Panics if `key` is already
    /// resident (callers must use `get_mut` first).
    pub fn insert(&mut self, key: u64, value: T) -> Option<(u64, T)> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways as usize;
        let set_idx = self.set_of(key);
        let set = &mut self.slots[set_idx];
        assert!(
            set.iter().all(|s| s.key != key),
            "insert of already-resident key {key:#x}"
        );
        // Evict the LRU slot when the set is full (full => nonempty,
        // so `min_by_key` finding nothing just means no eviction).
        let lru_idx = if set.len() == ways {
            set.iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
        } else {
            None
        };
        let evicted = if let Some(i) = lru_idx {
            let slot = set.swap_remove(i);
            self.len -= 1;
            Some((slot.key, slot.value))
        } else {
            None
        };
        set.push(Slot {
            key,
            stamp: clock,
            value,
        });
        self.len += 1;
        evicted
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let set_idx = self.set_of(key);
        let set = &mut self.slots[set_idx];
        let pos = set.iter().position(|s| s.key == key)?;
        self.len -= 1;
        Some(set.swap_remove(pos).value)
    }

    /// Iterate `(key, &value)` over all resident entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().flatten().map(|s| (s.key, &s.value))
    }

    /// Iterate `(key, &mut value)` over all resident entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        self.slots
            .iter_mut()
            .flatten()
            .map(|s| (s.key, &mut s.value))
    }

    /// Remove all entries for which `pred` returns true, returning
    /// them.
    pub fn drain_filter(&mut self, mut pred: impl FnMut(u64, &T) -> bool) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        for set in &mut self.slots {
            let mut i = 0;
            while i < set.len() {
                if pred(set[i].key, &set[i].value) {
                    let slot = set.swap_remove(i);
                    out.push((slot.key, slot.value));
                } else {
                    i += 1;
                }
            }
        }
        self.len -= out.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_lookup() {
        let mut a: SetAssoc<u32> = SetAssoc::new(4, 2);
        assert!(a.insert(0, 10).is_none());
        assert!(a.insert(4, 20).is_none()); // same set (4 sets), different key
        assert_eq!(a.peek(0), Some(&10));
        assert_eq!(*a.get_mut(4).unwrap(), 20);
        assert_eq!(a.len(), 2);
        assert!(a.contains(0));
        assert!(!a.contains(8));
    }

    #[test]
    fn lru_eviction_order() {
        let mut a: SetAssoc<u32> = SetAssoc::new(1, 2);
        a.insert(1, 1);
        a.insert(2, 2);
        // Touch key 1 so key 2 becomes LRU.
        a.get_mut(1);
        let evicted = a.insert(3, 3).unwrap();
        assert_eq!(evicted, (2, 2));
        assert!(a.contains(1) && a.contains(3));
    }

    #[test]
    fn eviction_only_within_set() {
        let mut a: SetAssoc<u32> = SetAssoc::new(2, 1);
        a.insert(0, 0); // set 0
        a.insert(1, 1); // set 1
                        // Inserting into set 0 evicts key 0, not key 1.
        let ev = a.insert(2, 2).unwrap();
        assert_eq!(ev.0, 0);
        assert!(a.contains(1));
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_insert_panics() {
        let mut a: SetAssoc<u32> = SetAssoc::new(2, 2);
        a.insert(5, 1);
        a.insert(5, 2);
    }

    #[test]
    fn remove_works() {
        let mut a: SetAssoc<u32> = SetAssoc::new(2, 2);
        a.insert(1, 11);
        assert_eq!(a.remove(1), Some(11));
        assert_eq!(a.remove(1), None);
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn with_entries_capacity() {
        let a: SetAssoc<u8> = SetAssoc::with_entries(1024, 8);
        assert_eq!(a.capacity(), 1024);
        assert_eq!(a.sets(), 128);
    }

    #[test]
    fn iter_visits_everything() {
        let mut a: SetAssoc<u32> = SetAssoc::new(4, 2);
        for k in 0..6u64 {
            a.insert(k, k as u32 * 10);
        }
        let mut seen: Vec<_> = a.iter().map(|(k, v)| (k, *v)).collect();
        seen.sort();
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[3], (3, 30));
    }

    #[test]
    fn drain_filter_removes_matching() {
        let mut a: SetAssoc<u32> = SetAssoc::new(4, 4);
        for k in 0..8u64 {
            a.insert(k, k as u32);
        }
        let drained = a.drain_filter(|_, v| v % 2 == 0);
        assert_eq!(drained.len(), 4);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|(_, v)| v % 2 == 1));
    }

    #[test]
    fn stress_respects_capacity() {
        let mut a: SetAssoc<u64> = SetAssoc::new(8, 4);
        for k in 0..1000u64 {
            if !a.contains(k) {
                a.insert(k, k);
            }
        }
        assert!(a.len() as u64 <= a.capacity());
    }
}
