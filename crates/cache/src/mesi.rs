//! MESI coherence states and legal-transition helpers.
//!
//! The engines in `rce-core` drive these states; this module only
//! encodes what the states mean so invariants can be asserted in one
//! place.

/// Classic MESI stable states for a line in a private cache, plus the
/// optional Owned state used when the MOESI extension is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MesiState {
    /// Modified: this cache holds the only, dirty copy.
    M,
    /// Owned (MOESI only): this cache holds a dirty copy *and* other
    /// caches hold clean shared copies; this cache is responsible for
    /// supplying data and writing back on eviction.
    O,
    /// Exclusive: this cache holds the only, clean copy.
    E,
    /// Shared: possibly other clean copies exist.
    S,
    /// Invalid.
    #[default]
    I,
}

impl MesiState {
    /// Can a read be satisfied locally in this state?
    #[inline]
    pub fn can_read(self) -> bool {
        !matches!(self, MesiState::I)
    }

    /// Can a write be performed locally without coherence actions?
    #[inline]
    pub fn can_write(self) -> bool {
        matches!(self, MesiState::M | MesiState::E)
    }

    /// Does this state imply the line may be dirty?
    #[inline]
    pub fn may_be_dirty(self) -> bool {
        matches!(self, MesiState::M | MesiState::O)
    }

    /// Display letter.
    pub fn letter(self) -> char {
        match self {
            MesiState::M => 'M',
            MesiState::O => 'O',
            MesiState::E => 'E',
            MesiState::S => 'S',
            MesiState::I => 'I',
        }
    }
}

impl std::fmt::Display for MesiState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(MesiState::M.can_read() && MesiState::M.can_write());
        assert!(MesiState::E.can_read() && MesiState::E.can_write());
        assert!(MesiState::S.can_read() && !MesiState::S.can_write());
        assert!(MesiState::O.can_read() && !MesiState::O.can_write());
        assert!(!MesiState::I.can_read() && !MesiState::I.can_write());
    }

    #[test]
    fn dirtiness() {
        assert!(MesiState::M.may_be_dirty());
        assert!(MesiState::O.may_be_dirty());
        assert!(!MesiState::E.may_be_dirty());
        assert!(!MesiState::S.may_be_dirty());
        assert_eq!(MesiState::O.letter(), 'O');
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(MesiState::default(), MesiState::I);
        assert_eq!(MesiState::M.to_string(), "M");
    }
}
