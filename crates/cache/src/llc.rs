//! Shared last-level cache (banked by address for NoC placement; one
//! logical array for residency).

use crate::array::SetAssoc;
use rce_common::{CacheGeometry, Counter, LineAddr};

/// Per-line LLC state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcLine {
    /// Dirty with respect to DRAM.
    pub dirty: bool,
}

/// The shared LLC. Residency and replacement are modeled on the
/// aggregate capacity; the per-bank NoC placement is derived from the
/// address by the network layer.
#[derive(Debug, Clone)]
pub struct Llc {
    array: SetAssoc<LlcLine>,
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Dirty evictions (require a DRAM writeback).
    pub dirty_evictions: Counter,
    /// Clean evictions.
    pub clean_evictions: Counter,
}

impl Llc {
    /// Build from geometry.
    pub fn new(geom: &CacheGeometry) -> Self {
        Llc {
            array: SetAssoc::new(geom.sets(), geom.ways),
            hits: Counter::default(),
            misses: Counter::default(),
            dirty_evictions: Counter::default(),
            clean_evictions: Counter::default(),
        }
    }

    /// Look up a line; counts hit/miss.
    pub fn access(&mut self, line: LineAddr) -> bool {
        if self.array.get_mut(line.0).is_some() {
            self.hits.inc();
            true
        } else {
            self.misses.inc();
            false
        }
    }

    /// True if resident (no counting).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.array.contains(line.0)
    }

    /// Mark a resident line dirty (a core wrote it back / registered a
    /// write). No-op if absent.
    pub fn mark_dirty(&mut self, line: LineAddr) {
        if let Some(l) = self.array.get_mut(line.0) {
            l.dirty = true;
        }
    }

    /// Insert after a DRAM fill. Returns the evicted line if any;
    /// `evicted.1.dirty` tells the caller to charge a DRAM writeback.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<(LineAddr, LlcLine)> {
        let ev = self.array.insert(line.0, LlcLine { dirty });
        if let Some((_, l)) = &ev {
            if l.dirty {
                self.dirty_evictions.inc();
            } else {
                self.clean_evictions.inc();
            }
        }
        ev.map(|(k, l)| (LineAddr(k), l))
    }

    /// Remove a line (rare; used by tests and invariant checks).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LlcLine> {
        self.array.remove(line.0)
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Samplable gauge for the metrics timeline:
    /// `(hits, misses, evictions)` so far.
    pub fn gauges(&self) -> (u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.dirty_evictions.get() + self.clean_evictions.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::Bytes;

    fn llc() -> Llc {
        Llc::new(&CacheGeometry {
            capacity: Bytes::kib(64), // 1024 lines
            ways: 8,
            latency: 30,
        })
    }

    #[test]
    fn access_counts() {
        let mut l = llc();
        assert!(!l.access(LineAddr(5)));
        l.fill(LineAddr(5), false);
        assert!(l.access(LineAddr(5)));
        assert_eq!(l.hits.get(), 1);
        assert_eq!(l.misses.get(), 1);
    }

    #[test]
    fn dirty_evictions_counted() {
        let mut l = llc();
        // 128 sets × 8 ways. Fill 9 lines in one set, dirty.
        for i in 0..9u64 {
            l.fill(LineAddr(i * 128), true);
        }
        assert_eq!(l.dirty_evictions.get(), 1);
        assert_eq!(l.clean_evictions.get(), 0);
    }

    #[test]
    fn mark_dirty_then_evict() {
        let mut l = llc();
        for i in 0..8u64 {
            l.fill(LineAddr(i * 128), false);
        }
        l.mark_dirty(LineAddr(0));
        // Touch the others so line 0 is LRU.
        for i in 1..8u64 {
            l.access(LineAddr(i * 128));
        }
        let ev = l.fill(LineAddr(8 * 128), false).unwrap();
        assert_eq!(ev.0, LineAddr(0));
        assert!(ev.1.dirty);
    }

    #[test]
    fn mark_dirty_on_absent_is_noop() {
        let mut l = llc();
        l.mark_dirty(LineAddr(77)); // must not panic
        assert!(!l.contains(LineAddr(77)));
    }
}
