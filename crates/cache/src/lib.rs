//! Cache structures: generic set-associative arrays, private L1
//! caches, a banked shared LLC, a full-map directory, and MESI state.
//!
//! This crate is pure structure — placement, replacement, residency,
//! sharer tracking. The *protocols* that drive these structures (MESI
//! baseline, CE, CE+, ARC) live in `rce-core`, because they also need
//! the NoC and DRAM models to charge time and traffic. Keeping the
//! structures protocol-agnostic lets all four engines share one
//! well-tested implementation of the hard, boring parts (indexing,
//! LRU, eviction) and differ only in the state they attach to lines.
//!
//! Design notes:
//! - The L1 array is generic over its per-line state (`L1Cache<S>`):
//!   MESI attaches a coherence state, CE adds access bits, ARC attaches
//!   word-valid/dirty masks.
//! - The directory is a full-map (one sharer bit per core, up to 64
//!   cores) and is modeled as unbounded: real systems back the on-chip
//!   directory with memory; we account that cost in the engines rather
//!   than modeling directory evictions structurally.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod array;
pub mod directory;
pub mod l1;
pub mod llc;
pub mod mesi;

pub use array::SetAssoc;
pub use directory::{DirEntry, Directory};
pub use l1::L1Cache;
pub use llc::Llc;
pub use mesi::MesiState;
