//! Private L1 data cache, generic over per-line protocol state.

use crate::array::SetAssoc;
use rce_common::{CacheGeometry, Counter, LineAddr};

/// A private L1 data cache holding per-line protocol state `S`.
///
/// The cache tracks residency and replacement; the protocol engines
/// own what `S` means. Hits/misses/evictions are counted here so every
/// engine reports them identically.
#[derive(Debug, Clone)]
pub struct L1Cache<S> {
    array: SetAssoc<S>,
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Capacity evictions.
    pub evictions: Counter,
}

impl<S> L1Cache<S> {
    /// Build from geometry (64-byte lines).
    pub fn new(geom: &CacheGeometry) -> Self {
        L1Cache {
            array: SetAssoc::new(geom.sets(), geom.ways),
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
        }
    }

    /// Look up a line, counting hit/miss. Returns state on hit.
    pub fn access(&mut self, line: LineAddr) -> Option<&mut S> {
        // Split borrow dance: probe first, then fetch mutably.
        if self.array.contains(line.0) {
            self.hits.inc();
            self.array.get_mut(line.0)
        } else {
            self.misses.inc();
            None
        }
    }

    /// Look up without counting (for region walks and invariants).
    pub fn peek(&self, line: LineAddr) -> Option<&S> {
        self.array.peek(line.0)
    }

    /// Mutable lookup without hit/miss counting (protocol updates that
    /// are not program accesses, e.g. remote invalidations).
    pub fn probe_mut(&mut self, line: LineAddr) -> Option<&mut S> {
        self.array.get_mut(line.0)
    }

    /// True if resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.array.contains(line.0)
    }

    /// Insert a line after a fill; returns the evicted `(line, state)`
    /// if the set was full.
    pub fn fill(&mut self, line: LineAddr, state: S) -> Option<(LineAddr, S)> {
        let ev = self.array.insert(line.0, state);
        if ev.is_some() {
            self.evictions.inc();
        }
        ev.map(|(k, s)| (LineAddr(k), s))
    }

    /// Remove a line (invalidation).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        self.array.remove(line.0)
    }

    /// Iterate all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &S)> {
        self.array.iter().map(|(k, s)| (LineAddr(k), s))
    }

    /// Iterate all resident lines mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut S)> {
        self.array.iter_mut().map(|(k, s)| (LineAddr(k), s))
    }

    /// Remove and return all lines matching `pred` (bulk
    /// self-invalidation).
    pub fn drain_filter(
        &mut self,
        mut pred: impl FnMut(LineAddr, &S) -> bool,
    ) -> Vec<(LineAddr, S)> {
        self.array
            .drain_filter(|k, s| pred(LineAddr(k), s))
            .into_iter()
            .map(|(k, s)| (LineAddr(k), s))
            .collect()
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// True if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Miss rate over all `access` calls.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.misses.as_f64() / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::Bytes;

    fn geom() -> CacheGeometry {
        CacheGeometry {
            capacity: Bytes::kib(4), // 64 lines
            ways: 4,
            latency: 2,
        }
    }

    #[test]
    fn hit_miss_counting() {
        let mut c: L1Cache<u8> = L1Cache::new(&geom());
        assert!(c.access(LineAddr(1)).is_none());
        c.fill(LineAddr(1), 7);
        assert_eq!(c.access(LineAddr(1)), Some(&mut 7));
        assert_eq!(c.hits.get(), 1);
        assert_eq!(c.misses.get(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fill_evicts_when_full() {
        let mut c: L1Cache<u64> = L1Cache::new(&geom());
        // 16 sets × 4 ways; fill 5 lines mapping to set 0.
        for i in 0..5u64 {
            let line = LineAddr(i * 16);
            if c.fill(line, i).is_some() {
                assert_eq!(c.evictions.get(), 1);
            }
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.evictions.get(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c: L1Cache<u8> = L1Cache::new(&geom());
        c.fill(LineAddr(3), 1);
        assert_eq!(c.invalidate(LineAddr(3)), Some(1));
        assert!(!c.contains(LineAddr(3)));
        assert_eq!(c.invalidate(LineAddr(3)), None);
    }

    #[test]
    fn probe_does_not_count() {
        let mut c: L1Cache<u8> = L1Cache::new(&geom());
        c.fill(LineAddr(9), 2);
        assert!(c.probe_mut(LineAddr(9)).is_some());
        assert_eq!(c.hits.get() + c.misses.get(), 0);
    }

    #[test]
    fn drain_filter_bulk_invalidation() {
        let mut c: L1Cache<bool> = L1Cache::new(&geom());
        for i in 0..8u64 {
            c.fill(LineAddr(i), i % 2 == 0);
        }
        let drained = c.drain_filter(|_, &shared| shared);
        assert_eq!(drained.len(), 4);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|(_, &s)| !s));
    }
}
