//! Targeted tests for less-traveled engine paths: upgrades meeting
//! displaced metadata, recalls of evicted owners, AIM pressure, and
//! cross-protocol cost orderings.

use rce_common::{Addr, CoreId, Cycles, MachineConfig, ProtocolKind, WordMask};
use rce_core::{AccessType, ArcEngine, Engine, MesiFamilyEngine, Substrate};

const R: AccessType = AccessType::Read;
const W: AccessType = AccessType::Write;

fn mesi_setup(proto: ProtocolKind, cores: usize) -> (MesiFamilyEngine, Substrate) {
    let cfg = MachineConfig::paper_default(cores, proto);
    (MesiFamilyEngine::new(&cfg), Substrate::new(&cfg))
}

fn acc<E: Engine + ?Sized>(
    e: &mut E,
    s: &mut Substrate,
    core: u16,
    addr: u64,
    kind: AccessType,
    now: u64,
) -> rce_core::protocol::AccessResult {
    e.access(
        s,
        CoreId(core),
        Addr(addr),
        WordMask::span(Addr(addr), 8),
        kind,
        Cycles(now),
    )
    .unwrap()
}

/// Upgrade (S→M) must consult displaced metadata: a third core's read
/// bits were evicted to the backend; the upgrading writer still sees
/// them.
#[test]
fn upgrade_sees_displaced_metadata() {
    for proto in [ProtocolKind::Ce, ProtocolKind::CePlus] {
        let (mut e, mut s) = mesi_setup(proto, 3);
        let base = 0x20_0000u64;
        // Core 2 reads the word, then thrashes its set to evict the
        // line (read bit displaced to the backend).
        let mut t = acc(&mut e, &mut s, 2, base, R, 0).done.0;
        for i in 1..=8u64 {
            t = acc(&mut e, &mut s, 2, base + i * 4096, R, t).done.0;
        }
        assert!(e.check_invariants(&s).is_ok());
        // Core 0 reads the line (S)...
        let r = acc(&mut e, &mut s, 0, base, R, t);
        // ...then upgrades. The conflict with core 2's displaced read
        // must surface at one of the two steps (fetch merges displaced
        // bits into core 0's line; the write checks them).
        let w = acc(&mut e, &mut s, 0, base, W, r.done.0);
        assert_eq!(
            w.exceptions.len(),
            1,
            "{proto}: displaced read bit must reach the upgrade"
        );
        assert_eq!(w.exceptions[0].key().1.kind, R);
    }
}

/// ARC recall of an owner that already evicted the line: the spilled
/// masks at the AIM still produce the conflict.
#[test]
fn arc_recall_of_evicted_owner_uses_spilled_masks() {
    let cfg = MachineConfig::paper_default(2, ProtocolKind::Arc);
    let mut e = ArcEngine::new(&cfg);
    let mut s = Substrate::new(&cfg);
    let base = 0x30_0000u64;
    // Core 0 writes (private), then evicts the line.
    let mut t = acc(&mut e, &mut s, 0, base, W, 0).done.0;
    for i in 1..=8u64 {
        t = acc(&mut e, &mut s, 0, base + i * 4096, R, t).done.0;
    }
    // Core 1 reads: recall finds no resident copy; the AIM has the
    // spilled write bit.
    let r = acc(&mut e, &mut s, 1, base, R, t);
    assert_eq!(r.exceptions.len(), 1);
    assert!(r.exceptions[0].involves_write());
}

/// Under severe AIM pressure, CE+ still detects every conflict (spill
/// + refill path), it just pays DRAM for it.
#[test]
fn tiny_aim_remains_sound() {
    let mut cfg = MachineConfig::paper_default(2, ProtocolKind::CePlus);
    cfg.aim.entries = 64; // absurdly small
    cfg.aim.ways = 4;
    let mut e = MesiFamilyEngine::new(&cfg);
    let mut s = Substrate::new(&cfg);
    let base = 0x40_0000u64;
    // Core 0 writes many lines and evicts them all (bits spill through
    // the tiny AIM to DRAM).
    let mut t = 0;
    for i in 0..32u64 {
        t = acc(&mut e, &mut s, 0, base + i * 1024, W, t).done.0;
    }
    // Core 1 touches every word: each displaced write bit must be
    // found.
    let mut found = 0;
    for i in 0..32u64 {
        let r = acc(&mut e, &mut s, 1, base + i * 1024, W, t);
        t = r.done.0;
        found += r.exceptions.len();
    }
    // Core 0's L1 is 128 lines, so early lines were evicted; late ones
    // are still resident (owner path). Either way: all 32 conflicts.
    assert_eq!(found, 32);
    assert!(
        s.dram.stats().metadata_bytes().0 > 0,
        "a 64-entry AIM must spill"
    );
}

/// Relative cost ordering on one conflicting access: the CE family
/// pays a (modeled) metadata lookup on top of the baseline's probe.
#[test]
fn detection_latency_ordering_on_displaced_path() {
    let lat = |proto| {
        let (mut e, mut s) = mesi_setup(proto, 2);
        let base = 0x50_0000u64;
        let mut t = acc(&mut e, &mut s, 0, base, W, 0).done.0;
        for i in 1..=8u64 {
            t = acc(&mut e, &mut s, 0, base + i * 4096, R, t).done.0;
        }
        let r = acc(&mut e, &mut s, 1, base, R, t);
        r.done.0 - t
    };
    let mesi = lat(ProtocolKind::MesiBaseline);
    let cep = lat(ProtocolKind::CePlus);
    let ce = lat(ProtocolKind::Ce);
    assert!(
        ce > cep,
        "CE's DRAM metadata lookup must cost more than CE+'s AIM ({ce} vs {cep})"
    );
    assert!(cep >= mesi, "detection is not free ({cep} vs {mesi})");
}

/// The boundary work of a core that displaced many lines scales with
/// the displaced count (CE's region-end scrub). Latency grows only
/// sublinearly (scrub messages pipeline through the DRAM channels), so
/// the linear signal is off-chip metadata traffic.
#[test]
fn scrub_cost_scales_with_displacement() {
    let boundary = |lines: u64| {
        let (mut e, mut s) = mesi_setup(ProtocolKind::Ce, 2);
        let base = 0x60_0000u64;
        let mut t = 0;
        // Write `lines` distinct lines in one region, then evict them
        // all with reads of a disjoint range.
        for i in 0..lines {
            t = acc(&mut e, &mut s, 0, base + i * 1024, W, t).done.0;
        }
        for i in 0..256u64 {
            t = acc(&mut e, &mut s, 0, 0x70_0000 + i * 64, R, t).done.0;
        }
        let before = s.dram.stats().metadata_bytes().0;
        let b = e.region_boundary(&mut s, CoreId(0), Cycles(t)).unwrap();
        (b.done.0 - t, s.dram.stats().metadata_bytes().0 - before)
    };
    let (small_lat, small_bytes) = boundary(4);
    let (large_lat, large_bytes) = boundary(64);
    // The evictor reads displace their own read bits in both runs (a
    // constant offset), so the written-line contribution shows up as
    // the delta: 60 extra lines x 16 B metadata entries.
    assert!(
        large_bytes >= small_bytes + 60 * 16,
        "scrub traffic must scale with displacement ({large_bytes} vs {small_bytes})"
    );
    assert!(
        large_lat > small_lat,
        "more scrubs take longer even pipelined ({large_lat} vs {small_lat})"
    );
}
