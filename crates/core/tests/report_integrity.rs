//! Report integrity: histograms, JSON round-trips, and
//! cross-field consistency of `SimReport`.

use rce_common::{json, MachineConfig, ProtocolKind};
use rce_core::Machine;
use rce_trace::WorkloadSpec;

fn report(w: WorkloadSpec, proto: ProtocolKind) -> rce_core::SimReport {
    let cfg = MachineConfig::paper_default(8, proto);
    let p = w.build(8, 1, 42);
    Machine::new(&cfg).unwrap().run(&p).unwrap()
}

#[test]
fn histograms_are_populated() {
    let r = report(WorkloadSpec::Streamcluster, ProtocolKind::CePlus);
    assert_eq!(r.access_latency.count(), r.mem_ops);
    assert!(r.access_latency.mean() >= 1.0);
    // Every non-empty region appears once in the region-length
    // histogram, and their op counts sum to the committed ops.
    assert!(r.region_len.count() > 0);
    assert_eq!(r.region_len.sum(), r.mem_ops);
    assert_eq!(r.boundary_cost.count(), r.regions);
}

#[test]
fn boundary_costs_reflect_design() {
    // CE's boundaries scrub displaced metadata; the baseline's are
    // free. canneal displaces heavily.
    let base = report(WorkloadSpec::Canneal, ProtocolKind::MesiBaseline);
    let ce = report(WorkloadSpec::Canneal, ProtocolKind::Ce);
    assert!(
        ce.boundary_cost.mean() > base.boundary_cost.mean(),
        "CE {} vs MESI {}",
        ce.boundary_cost.mean(),
        base.boundary_cost.mean()
    );
}

#[test]
fn access_latency_tracks_misses() {
    // A workload with near-zero misses has far lower mean latency
    // than a thrashing one under the same design.
    let cheap = report(WorkloadSpec::PingPong, ProtocolKind::MesiBaseline);
    let thrash = report(WorkloadSpec::Canneal, ProtocolKind::MesiBaseline);
    assert!(thrash.access_latency.mean() > cheap.access_latency.mean());
}

#[test]
fn report_json_roundtrip() {
    let r = report(WorkloadSpec::RacyPair, ProtocolKind::Arc);
    let json = json::to_string(&r);
    let back: rce_core::SimReport = json::from_str(&json).expect("deserialize");
    assert_eq!(back.cycles, r.cycles);
    assert_eq!(back.exceptions, r.exceptions);
    assert_eq!(back.mem_ops, r.mem_ops);
    assert_eq!(back.noc.total_bytes(), r.noc.total_bytes());
    assert_eq!(back.energy.total(), r.energy.total());
    assert_eq!(back.access_latency.count(), r.access_latency.count());
}

#[test]
fn normalized_rows_serialize() {
    let base = report(WorkloadSpec::Vips, ProtocolKind::MesiBaseline);
    let arc = report(WorkloadSpec::Vips, ProtocolKind::Arc);
    let row = arc.normalized_to(&base);
    let json = json::to_string(&row);
    assert!(json.contains("runtime"));
    let back: rce_core::report::NormalizedRow = json::from_str(&json).unwrap();
    assert_eq!(back.protocol, ProtocolKind::Arc);
    assert!((back.runtime - row.runtime).abs() < 1e-12);
}

#[test]
fn engine_counters_present_per_design() {
    let names = |p| {
        report(WorkloadSpec::Dedup, p)
            .engine_counters
            .iter()
            .map(|(k, _)| k.clone())
            .collect::<Vec<_>>()
    };
    let ce = names(ProtocolKind::Ce);
    assert!(ce.iter().any(|k| k == "invalidations"));
    assert!(ce.iter().any(|k| k == "scrubs"));
    let arc = names(ProtocolKind::Arc);
    assert!(arc.iter().any(|k| k == "registrations"));
    assert!(arc.iter().any(|k| k == "self_invalidated_lines"));
}

#[test]
fn per_core_stats_sum_to_totals() {
    let r = report(WorkloadSpec::Dedup, ProtocolKind::Arc);
    assert_eq!(r.per_core.len(), r.cores);
    let mem: u64 = r.per_core.iter().map(|c| c.mem_ops).sum();
    let sync: u64 = r.per_core.iter().map(|c| c.sync_ops).sum();
    assert_eq!(mem, r.mem_ops);
    assert_eq!(sync, r.sync_ops);
    // The run ends when the last core finishes.
    let max_finish = r.per_core.iter().map(|c| c.finish).max().unwrap();
    assert_eq!(max_finish, r.cycles);
    assert!(r.load_imbalance() >= 1.0);
}

#[test]
fn balanced_workloads_have_low_imbalance() {
    let r = report(WorkloadSpec::Blackscholes, ProtocolKind::MesiBaseline);
    assert!(
        r.load_imbalance() < 1.2,
        "barrier-synced data-parallel work should balance, got {}",
        r.load_imbalance()
    );
}

#[test]
fn cycle_counts_exceed_critical_path_lower_bound() {
    // Sanity: total cycles at least mem_ops / cores (each op costs
    // at least a cycle on its core).
    for proto in ProtocolKind::ALL {
        let r = report(WorkloadSpec::Facesim, proto);
        assert!(r.cycles.0 >= r.mem_ops / r.cores as u64, "{proto}");
    }
}
