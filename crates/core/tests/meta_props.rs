//! Property tests for the metadata layer: every [`MetaBackend`] must
//! store bits losslessly, whatever its cost model does.
//!
//! [`IdealMeta`] *is* the specification — an infinite map with no cost
//! model — so both properties compare a real backend against it over
//! random operation sequences:
//!
//! 1. An [`AimMeta`] big enough to never evict is observably identical
//!    to [`IdealMeta`].
//! 2. A pathologically small AIM (4 entries, direct-mapped) that
//!    spills and refills constantly is *still* observably identical:
//!    the DRAM overflow table makes eviction a cost, never a loss.
//!
//! "Observably identical" means every `fetch` returns the same
//! [`MetaMap`] — timing and traffic are allowed (required, even) to
//! differ.

use rce_common::check::check_n;
use rce_common::{
    prop_assert, prop_assert_eq, AimConfig, CoreId, Cycles, LineAddr, MachineConfig, ProtocolKind,
    RegionId, Rng, WordIdx, WordMask,
};
use rce_core::{AccessType, AimMeta, IdealMeta, MetaBackend, MetaMap, Substrate};

/// One packed metadata operation: `(opcode, line, bits)`.
///
/// Kept as a plain tuple so `Vec<Op>` shrinks through the stock
/// `rce_common::check` machinery.
type Op = (u8, u64, u64);

const LINES: u64 = 16;

fn decode_side(bits: u64) -> (CoreId, RegionId, AccessType, WordMask) {
    let core = CoreId((bits % 4) as u16);
    let region = RegionId((bits >> 2) % 4);
    let kind = if bits & 0x10 != 0 {
        AccessType::Write
    } else {
        AccessType::Read
    };
    let word = WordMask::single(WordIdx(((bits >> 5) % 8) as u8));
    (core, region, kind, word)
}

fn gen_ops(rng: &mut impl Rng, max_len: u64) -> Vec<Op> {
    let n = 1 + rng.gen_range(max_len) as usize;
    (0..n)
        .map(|_| {
            (
                (rng.gen_range(5)) as u8,
                rng.gen_range(LINES),
                rng.next_u64(),
            )
        })
        .collect()
}

/// Drive `real` and the ideal reference through the same ops,
/// comparing every fetched map; then drain both and compare the full
/// final state.
fn assert_backend_matches_ideal(real: &mut dyn MetaBackend, ops: &[Op]) -> Result<(), String> {
    let cfg = MachineConfig::paper_default(4, ProtocolKind::CePlus);
    let mut s_real = Substrate::new(&cfg);
    let mut s_ideal = Substrate::new(&cfg);
    let mut ideal = IdealMeta::new();
    let mut t = 0u64;
    for &(op, line, bits) in ops {
        let line = LineAddr(line);
        let (core, region, kind, mask) = decode_side(bits);
        t += 10;
        let at = Cycles(t);
        let src = s_real.core_node(core);
        match op % 5 {
            0 => {
                let mut m = MetaMap::new();
                m.record(core, region, kind, mask);
                real.push(&mut s_real, src, line, m.clone(), at);
                ideal.push(&mut s_ideal, src, line, m, at);
            }
            1 => {
                real.scrub(&mut s_real, src, core, line, at);
                ideal.scrub(&mut s_ideal, src, core, line, at);
            }
            2 => {
                real.boundary_clear(&mut s_real, line, core, at);
                ideal.boundary_clear(&mut s_ideal, line, core, at);
            }
            3 => {
                // ARC-style registration: ensure, then record in place.
                real.ensure_at(&mut s_real, line, at);
                ideal.ensure_at(&mut s_ideal, line, at);
                real.entry_mut(line).record(core, region, kind, mask);
                ideal.entry_mut(line).record(core, region, kind, mask);
            }
            _ => {
                let (_, got) = real.fetch(&mut s_real, line, at);
                let (_, want) = ideal.fetch(&mut s_ideal, line, at);
                prop_assert_eq!(got, want, "fetch of {line:?} diverged mid-sequence");
            }
        }
    }
    // Drain everything: the final states must agree line for line.
    for l in 0..LINES {
        let line = LineAddr(l);
        let (_, got) = real.fetch(&mut s_real, line, Cycles(t + 10 + l));
        let (_, want) = ideal.fetch(&mut s_ideal, line, Cycles(t + 10 + l));
        prop_assert_eq!(got, want, "final state of {line:?} diverged");
    }
    Ok(())
}

/// With capacity for every line, the AIM never spills and behaves
/// exactly like the infinite ideal store.
#[test]
fn unbounded_aim_is_observably_ideal() {
    check_n(
        "unbounded_aim_is_observably_ideal",
        64,
        |rng| gen_ops(rng, 48),
        |ops| {
            let mut aim = AimMeta::new(&AimConfig {
                entries: 256,
                ways: 16,
                latency: 4,
                entry_bytes: 16,
            });
            assert_backend_matches_ideal(&mut aim, ops)?;
            prop_assert!(aim.spilled_entries() == 0, "capacity AIM must not spill");
            Ok(())
        },
    );
}

/// A thrashing AIM spills and refills constantly, yet no metadata is
/// ever lost or corrupted on the way through the DRAM overflow table.
#[test]
fn spill_refill_roundtrip_is_lossless() {
    let mut total_spills = 0u64;
    check_n(
        "spill_refill_roundtrip_is_lossless",
        64,
        |rng| gen_ops(rng, 64),
        |ops| {
            let mut aim = AimMeta::new(&AimConfig {
                entries: 4,
                ways: 1,
                latency: 4,
                entry_bytes: 16,
            });
            assert_backend_matches_ideal(&mut aim, ops)
        },
    );
    // The property is vacuous if nothing ever spilled; run one long
    // deterministic sequence and insist the spill path was exercised.
    let mut aim = AimMeta::new(&AimConfig {
        entries: 4,
        ways: 1,
        latency: 4,
        entry_bytes: 16,
    });
    let ops: Vec<Op> = (0..256)
        .map(|i| (0u8, i % LINES, 0x17 + (i << 5)))
        .collect();
    assert_backend_matches_ideal(&mut aim, &ops).unwrap();
    total_spills += aim.spills.get();
    assert!(total_spills > 0, "the thrashing AIM never spilled");
}
