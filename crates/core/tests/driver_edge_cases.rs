//! Driver edge cases: deadlock detection, runaway protection,
//! degenerate programs.

use rce_common::{MachineConfig, ProtocolKind, RceError};
use rce_core::Machine;
use rce_trace::Builder;

#[test]
fn cross_lock_deadlock_is_reported_not_hung() {
    // Classic AB-BA deadlock: structurally valid (balanced locks) but
    // can deadlock at run time. The driver must detect it and return
    // an error instead of spinning.
    let mut b = Builder::new("deadlock", 2);
    let la = b.lock();
    let lb = b.lock();
    let arena = b.shared(64);
    // Thread 0: A then B. Thread 1: B then A. No intervening sync, so
    // with the deterministic scheduler both grab their first lock.
    b.acquire(0, la);
    // Memory op so both threads are mid-region when they block.
    b.read(0, arena.word(0));
    b.acquire(0, lb);
    b.release(0, lb);
    b.release(0, la);

    b.acquire(1, lb);
    b.read(1, arena.word(1));
    b.acquire(1, la);
    b.release(1, la);
    b.release(1, lb);

    let p = b.finish();
    rce_trace::validate(&p).expect("structurally valid");
    let cfg = MachineConfig::paper_default(2, ProtocolKind::MesiBaseline);
    let err = Machine::new(&cfg).unwrap().run(&p).unwrap_err();
    assert!(
        matches!(err, RceError::DriverProtocol(_)),
        "expected deadlock report, got {err:?}"
    );
    assert!(err.to_string().contains("deadlock"));
}

#[test]
fn empty_threads_complete_immediately() {
    let b = Builder::new("empty", 3);
    let p = b.finish();
    let cfg = MachineConfig::paper_default(3, ProtocolKind::Arc);
    let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
    assert_eq!(r.mem_ops, 0);
    assert!(r.exceptions.is_empty());
    // Each thread still closes its final region.
    assert_eq!(r.regions, 3);
}

#[test]
fn single_core_machine_works() {
    let mut b = Builder::new("solo", 1);
    let a = b.private(0, 1024);
    for i in 0..50 {
        b.read(0, a.word(i % a.words()));
        b.write(0, a.word(i % a.words()));
    }
    let p = b.finish();
    for proto in ProtocolKind::ALL {
        let cfg = MachineConfig::paper_default(1, proto);
        let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
        assert_eq!(r.mem_ops, 100, "{proto}");
        assert!(r.exceptions.is_empty(), "{proto}");
    }
}

#[test]
fn work_only_program_advances_time() {
    let mut b = Builder::new("work", 2);
    for t in 0..2 {
        b.work(t, 1000);
        b.work(t, 500);
    }
    let p = b.finish();
    let cfg = MachineConfig::paper_default(2, ProtocolKind::MesiBaseline);
    let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
    assert!(r.cycles.0 >= 1500);
    assert_eq!(r.mem_ops, 0);
}

#[test]
fn invalid_config_rejected_at_construction() {
    let mut cfg = MachineConfig::paper_default(4, ProtocolKind::Ce);
    cfg.aim.entries = 999; // not a power of two
    assert!(matches!(
        Machine::new(&cfg),
        Err(RceError::InvalidConfig(_))
    ));
}

#[test]
fn lock_contention_serializes_critical_sections() {
    // N threads each do K lock-protected increments of one word; the
    // total time must be at least N*K critical-section latencies
    // (they cannot overlap).
    let n = 4;
    let k = 10;
    let mut b = Builder::new("serialize", n);
    let l = b.lock();
    let a = b.shared(64);
    for t in 0..n {
        for _ in 0..k {
            b.critical(t, l, |b| {
                b.read(t, a.word(0));
                b.write(t, a.word(0));
            });
        }
    }
    let p = b.finish();
    let cfg = MachineConfig::paper_default(n, ProtocolKind::MesiBaseline);
    let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
    // Each critical section costs at least 2 L1-ish accesses (~4 cyc);
    // with handoffs (60 cyc) strictly serialized:
    let lower_bound = (n * k) as u64 * 4;
    assert!(r.cycles.0 > lower_bound);
    assert!(r.exceptions.is_empty());
}
