//! Conflict exceptions: the mechanism's deliverable.
//!
//! A region conflict exception reports that two *concurrent*
//! synchronization-free regions performed overlapping accesses to the
//! same word, at least one a write. The exception is precise: it
//! carries both cores, both region IDs, the word, and the access
//! kinds, which is what lets a language runtime deliver fail-stop
//! semantics for data races.

use rce_common::{impl_json_struct, impl_json_unit_enum, Addr, CoreId, Cycles, RegionId};

/// Which kind of access participated in the conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessType {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessType {
    /// Display letter ("R"/"W").
    pub fn letter(self) -> char {
        match self {
            AccessType::Read => 'R',
            AccessType::Write => 'W',
        }
    }
}

impl_json_unit_enum!(AccessType { Read, Write });

/// One endpoint of a conflict: who accessed what, how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConflictSide {
    /// The core.
    pub core: CoreId,
    /// Its region at the time of the access.
    pub region: RegionId,
    /// Read or write.
    pub kind: AccessType,
}

/// A precise region conflict exception.
///
/// Equality and ordering deliberately ignore `detected_at`: the same
/// logical conflict may be detected at different times by different
/// designs (CE eagerly at the coherence action, ARC at a registration
/// or region end), and the differential tests compare conflict
/// *identities* across engines.
#[derive(Debug, Clone, Copy)]
pub struct ConflictException {
    /// First side (lower core ID).
    pub a: ConflictSide,
    /// Second side (higher core ID).
    pub b: ConflictSide,
    /// Word address of the overlap.
    pub word_addr: Addr,
    /// When the engine delivered the exception.
    pub detected_at: Cycles,
}

impl_json_struct!(ConflictSide { core, region, kind });
impl_json_struct!(ConflictException {
    a,
    b,
    word_addr,
    detected_at,
});

impl ConflictException {
    /// Build with canonical side ordering (lower core first). Panics
    /// if both sides are the same core (not a cross-thread conflict).
    pub fn new(x: ConflictSide, y: ConflictSide, word_addr: Addr, detected_at: Cycles) -> Self {
        assert_ne!(x.core, y.core, "conflict requires two distinct cores");
        let (a, b) = if x.core < y.core { (x, y) } else { (y, x) };
        ConflictException {
            a,
            b,
            word_addr,
            detected_at,
        }
    }

    /// The identity used for deduplication and differential
    /// comparison: everything except the detection time.
    pub fn key(&self) -> (ConflictSide, ConflictSide, Addr) {
        (self.a, self.b, self.word_addr)
    }

    /// True if at least one side wrote (always true for a real
    /// conflict; asserted in debug builds at construction sites).
    pub fn involves_write(&self) -> bool {
        self.a.kind == AccessType::Write || self.b.kind == AccessType::Write
    }
}

impl PartialEq for ConflictException {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for ConflictException {}

impl PartialOrd for ConflictException {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ConflictException {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl std::hash::Hash for ConflictException {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl std::fmt::Display for ConflictException {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conflict at {}: {}({}) {} vs {}({}) {} [cycle {}]",
            self.word_addr,
            self.a.core,
            self.a.region,
            self.a.kind.letter(),
            self.b.core,
            self.b.region,
            self.b.kind.letter(),
            self.detected_at.0
        )
    }
}

/// What the machine does when an engine raises an exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExceptionPolicy {
    /// Record the exception and keep executing (the evaluation mode:
    /// the paper measures full runs of racy programs).
    #[default]
    CountAndContinue,
    /// Stop the simulation at the first exception (the deployment
    /// semantics: fail-stop).
    AbortOnFirst,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(core: u16, region: u64, kind: AccessType) -> ConflictSide {
        ConflictSide {
            core: CoreId(core),
            region: RegionId(region),
            kind,
        }
    }

    #[test]
    fn sides_are_canonicalized() {
        let e1 = ConflictException::new(
            side(3, 1, AccessType::Write),
            side(1, 2, AccessType::Read),
            Addr(64),
            Cycles(10),
        );
        assert_eq!(e1.a.core, CoreId(1));
        assert_eq!(e1.b.core, CoreId(3));
        assert_eq!(e1.b.kind, AccessType::Write);
    }

    #[test]
    fn equality_ignores_time() {
        let x = side(0, 1, AccessType::Write);
        let y = side(1, 5, AccessType::Read);
        let e1 = ConflictException::new(x, y, Addr(8), Cycles(1));
        let e2 = ConflictException::new(y, x, Addr(8), Cycles(999));
        assert_eq!(e1, e2);
        let mut set = std::collections::HashSet::new();
        set.insert(e1);
        assert!(!set.insert(e2), "dedup by identity");
    }

    #[test]
    fn different_words_differ() {
        let x = side(0, 1, AccessType::Write);
        let y = side(1, 5, AccessType::Read);
        assert_ne!(
            ConflictException::new(x, y, Addr(8), Cycles(1)),
            ConflictException::new(x, y, Addr(16), Cycles(1))
        );
    }

    #[test]
    #[should_panic(expected = "distinct cores")]
    fn same_core_rejected() {
        let x = side(2, 1, AccessType::Write);
        let y = side(2, 2, AccessType::Read);
        ConflictException::new(x, y, Addr(0), Cycles(0));
    }

    #[test]
    fn display_is_informative() {
        let e = ConflictException::new(
            side(0, 7, AccessType::Write),
            side(1, 9, AccessType::Read),
            Addr(0x40),
            Cycles(123),
        );
        let s = e.to_string();
        assert!(s.contains("c0") && s.contains("c1"));
        assert!(s.contains('W') && s.contains('R'));
        assert!(s.contains("123"));
        assert!(e.involves_write());
    }
}
