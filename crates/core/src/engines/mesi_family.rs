//! The eager write-invalidation family: MESI baseline, CE, CE+.
//!
//! One coherence engine, composed with a pluggable metadata placement
//! ([`crate::meta`]) and the shared conflict detector
//! ([`crate::detect`]):
//! - **MESI**: directory-based MESI with cache-to-cache transfers.
//!   No metadata, no checks — the normalization baseline.
//! - **CE**: Conflict Exceptions. Every L1 line carries a [`MetaMap`]
//!   of per-word, per-core access bits. Bits ride coherence messages
//!   (modeled as `metadata_piggyback_bytes` added to data/ack
//!   messages) and are checked at every point the hardware would check
//!   them: local accesses against line-resident bits, fetches against
//!   the arriving owner/sharer bits, and misses against bits displaced
//!   to the **in-memory metadata table** ([`crate::meta::DramMeta`])
//!   by mid-region evictions. Region ends must scrub each line whose
//!   bits were displaced — an off-chip round trip per line: CE's
//!   defining cost.
//! - **CE+**: identical, except displaced bits go to the on-chip
//!   [`crate::meta::AimMeta`] colocated with the LLC banks; only AIM
//!   victims spill to DRAM. Region-end scrubs become on-chip AIM
//!   accesses.
//!
//! Because the placement is orthogonal, CE+ can also run against
//! [`crate::meta::IdealMeta`] (the infinite store) — the upper bound
//! the AIM sensitivity study compares against.
//!
//! Correctness note (see DESIGN.md): metadata entries are tagged with
//! the region that created them, and entries from ended regions are
//! treated as absent during checks. Tags make lazily-scrubbed state
//! harmless while the model still charges the full scrub cost the
//! hardware pays.

use crate::access::MetaMap;
use crate::detect::Detector;
use crate::exception::{AccessType, ConflictSide};
use crate::fastpath::AccessFilter;
use crate::forensics::{DetectPath, DetectSite};
use crate::meta::{backend_for, MetaBackend};
use crate::protocol::{AccessResult, Engine, Substrate};
use rce_cache::{L1Cache, MesiState};
use rce_common::obs::{EventClass, EventKind, SimEvent};
use rce_common::{
    Addr, CoreId, Counter, Cycles, LineAddr, LineFlags, LineMap, LineSet, LineTable, MachineConfig,
    ProtocolKind, RceError, RceResult, WordMask,
};
use rce_noc::MsgClass;

/// Per-line L1 state for the MESI family.
#[derive(Debug, Clone, Default)]
pub struct CeLine {
    /// Coherence state (never `I`: invalid lines are absent).
    pub mesi: MesiState,
    /// Dirty with respect to the LLC.
    pub dirty: bool,
    /// Access bits riding with this copy (empty in baseline mode).
    pub meta: MetaMap,
}

/// The engine.
pub struct MesiFamilyEngine {
    mode: ProtocolKind,
    /// MOESI extension: dirty lines downgrade to Owned instead of
    /// writing back (see `MachineConfig::use_owned_state`).
    moesi: bool,
    l1: Vec<L1Cache<CeLine>>,
    /// Where displaced metadata lives (and what touching it costs).
    meta: Box<dyn MetaBackend>,
    /// The conflict detector (shared logic with ARC).
    detect: Detector,
    /// Fast-path filter over repeat accesses (see [`crate::fastpath`]).
    /// Armed only by conflict-free slow-path accesses; invalidated on
    /// eviction and on every remote transition touching a core's copy.
    filter: AccessFilter,
    /// Access bits attached to LLC lines (CE extends the shared cache
    /// with access bits too): whenever metadata passes through the
    /// LLC/directory — owner downgrades, invalidation acks, displaced
    /// refills — a copy lands here, and every fill serves it back.
    /// This is what lets a read miss observe the write bits of a
    /// sharer that was earlier downgraded from M. On-chip; the
    /// piggyback bytes on the messages involved are already charged.
    ///
    /// All per-line state below is flat, indexed by ids from the
    /// engine-local intern table `lines` — the per-access path does no
    /// hashing after a line's first touch.
    lines: LineTable,
    /// LLC-side metadata copies (an empty map means "absent").
    llc_meta: LineMap<MetaMap>,
    /// Lines that (may) have displaced metadata in the backend.
    displaced: LineFlags,
    /// Per core: lines whose bits for that core's current region left
    /// its L1 and must be scrubbed at the region boundary.
    foreign: Vec<LineSet>,
    // Counters.
    invalidations: Counter,
    upgrades: Counter,
    owned_downgrades: Counter,
    c2c_transfers: Counter,
    meta_pushes: Counter,
    meta_lookups: Counter,
    scrubs: Counter,
}

/// The invariant-violation error for a line the directory swears a
/// core holds but its L1 does not.
fn not_resident(what: &str, core: CoreId, line: LineAddr) -> RceError {
    RceError::InvariantViolated(format!("{what}: {core} does not hold {line}"))
}

impl MesiFamilyEngine {
    /// Build for the configuration's protocol (must be MESI/CE/CE+);
    /// the metadata placement comes from `cfg.meta_placement`.
    pub fn new(cfg: &MachineConfig) -> Self {
        assert!(
            !matches!(cfg.protocol, ProtocolKind::Arc),
            "ARC is a separate engine"
        );
        MesiFamilyEngine {
            mode: cfg.protocol,
            moesi: cfg.use_owned_state,
            l1: (0..cfg.cores).map(|_| L1Cache::new(&cfg.l1)).collect(),
            meta: backend_for(cfg),
            detect: Detector::new(),
            filter: AccessFilter::new(cfg.cores),
            lines: LineTable::new(),
            llc_meta: LineMap::new(),
            displaced: LineFlags::new(),
            foreign: vec![LineSet::new(); cfg.cores],
            invalidations: Counter::default(),
            upgrades: Counter::default(),
            owned_downgrades: Counter::default(),
            c2c_transfers: Counter::default(),
            meta_pushes: Counter::default(),
            meta_lookups: Counter::default(),
            scrubs: Counter::default(),
        }
    }

    #[inline]
    fn detection(&self) -> bool {
        !matches!(self.mode, ProtocolKind::MesiBaseline)
    }

    /// Extra bytes each data/ack message carries for access bits.
    #[inline]
    fn piggy(&self, sub: &Substrate) -> u64 {
        if self.detection() {
            sub.cfg.metadata_piggyback_bytes
        } else {
            0
        }
    }

    /// Fold `meta` into the LLC-side copy for `line`, pruning dead
    /// entries so the map stays bounded by the live footprint.
    fn llc_meta_merge(&mut self, sub: &Substrate, line: LineAddr, meta: &MetaMap) {
        if !self.detection() || meta.is_empty() {
            return;
        }
        let id = self.lines.intern(line);
        let e = self.llc_meta.slot(id);
        e.merge(meta);
        e.prune(|c, r| sub.is_live(c, r));
    }

    /// The LLC-side metadata copy served with a fill.
    fn llc_meta_copy(&self, line: LineAddr) -> MetaMap {
        self.lines
            .lookup(line)
            .and_then(|id| self.llc_meta.get(id))
            .cloned()
            .unwrap_or_default()
    }

    /// True if `meta` holds nonempty bits of `core`'s current region.
    fn has_live_own(meta: &MetaMap, core: CoreId, sub: &Substrate) -> bool {
        meta.get(core)
            .is_some_and(|e| !e.is_empty() && sub.is_live(core, e.region))
    }

    /// Consult the metadata layer for displaced bits of `line`; the
    /// request is at the line's home bank at `t`. Lines never
    /// displaced skip the lookup entirely (the hardware's displaced
    /// filter).
    fn fetch_meta(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> (Cycles, MetaMap) {
        match self.lines.lookup(line) {
            Some(id) if self.displaced.remove(id) => {
                self.meta_lookups.inc();
                self.meta.fetch(sub, line, t)
            }
            _ => (t, MetaMap::new()),
        }
    }

    /// Push displaced metadata (from an evicted/invalidated copy) to
    /// the metadata layer. `src` is the node the bits leave from. Off
    /// the critical path: traffic and backend occupancy only.
    fn backend_push(
        &mut self,
        sub: &mut Substrate,
        src: rce_noc::NodeId,
        line: LineAddr,
        mut meta: MetaMap,
        at: Cycles,
    ) {
        meta.prune(|c, r| sub.is_live(c, r));
        if meta.is_empty() {
            return;
        }
        self.meta_pushes.inc();
        let id = self.lines.intern(line);
        self.displaced.insert(id);
        self.meta.push(sub, src, line, meta, at);
    }

    /// Region-end scrub of one displaced line.
    fn backend_scrub(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        line: LineAddr,
        at: Cycles,
    ) -> Cycles {
        self.scrubs.inc();
        let me = sub.core_node(core);
        let (t, entry_gone) = self.meta.scrub(sub, me, core, line, at);
        if entry_gone {
            if let Some(id) = self.lines.lookup(line) {
                self.displaced.remove(id);
            }
        }
        t
    }

    /// Fill `line` into `core`'s L1, handling the victim: directory
    /// notice, dirty writeback, metadata displacement.
    fn fill_line(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        line: LineAddr,
        state: CeLine,
        at: Cycles,
    ) {
        let me = sub.core_node(core);
        if let Some((victim, vstate)) = self.l1[core.index()].fill(line, state) {
            self.filter.invalidate(core, victim);
            sub.trace(EventClass::Cache, || SimEvent {
                cycle: at.0,
                core: Some(core.0),
                region: Some(sub.region_of(core).0),
                kind: EventKind::L1Evict {
                    line: victim.0,
                    dirty: vstate.dirty,
                },
            });
            let vbank = sub.bank_node(victim);
            // Eviction notice keeps the directory exact.
            let notice_at = sub
                .noc
                .send(me, vbank, sub.cfg.noc.ctrl_bytes, MsgClass::Response, at);
            sub.dir_access();
            sub.dir.remove_sharer(victim, core);
            if vstate.dirty {
                let wb = sub.noc.send(
                    me,
                    vbank,
                    sub.cfg.noc.data_header_bytes + 64,
                    MsgClass::Writeback,
                    at,
                );
                sub.llc_put(victim, wb);
            }
            if self.detection() {
                if Self::has_live_own(&vstate.meta, core, sub) {
                    let vid = self.lines.intern(victim);
                    self.foreign[core.index()].insert(vid);
                }
                self.backend_push(sub, me, victim, vstate.meta, notice_at);
            }
        }
    }

    /// Upgrade an S copy to M (write hit in S).
    fn upgrade(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        line: LineAddr,
        now: Cycles,
    ) -> RceResult<(Cycles, MetaMap)> {
        self.upgrades.inc();
        let lid = self.lines.intern(line);
        let me = sub.core_node(core);
        let bank = sub.bank_node(line);
        let piggy = self.piggy(sub);
        let t1 = sub.noc.send(
            me,
            bank,
            sub.cfg.noc.ctrl_bytes,
            MsgClass::Request,
            Cycles(now.0 + sub.cfg.l1.latency),
        );
        sub.dir_access();
        let mut incoming = MetaMap::new();
        let mut t_done = t1;
        let sharers = sub.dir.sharers_except(line, core);
        if !sharers.is_empty() {
            self.invalidations.add(sharers.len() as u64);
            let nodes: Vec<_> = sharers.iter().map(|s| sub.core_node(*s)).collect();
            let inv_at = sub.noc.multicast(
                bank,
                &nodes,
                sub.cfg.noc.ctrl_bytes,
                MsgClass::Invalidation,
                t1,
            );
            for s in sharers {
                self.filter.invalidate(s, line);
                let st = self.l1[s.index()]
                    .invalidate(line)
                    .ok_or_else(|| not_resident("directory sharer", s, line))?;
                if self.detection() {
                    if Self::has_live_own(&st.meta, s, sub) {
                        self.foreign[s.index()].insert(lid);
                    }
                    incoming.merge(&st.meta);
                }
                let ack = sub.noc.send(
                    sub.core_node(s),
                    me,
                    sub.cfg.noc.ctrl_bytes + piggy,
                    MsgClass::Ack,
                    inv_at,
                );
                t_done = t_done.max(ack);
            }
        }
        let (t_meta, m) = self.fetch_meta(sub, line, t1);
        incoming.merge(&m);
        incoming.merge(&self.llc_meta_copy(line));
        self.llc_meta_merge(sub, line, &incoming);
        let grant = sub.noc.send(
            bank,
            me,
            sub.cfg.noc.ctrl_bytes,
            MsgClass::Response,
            t1.max(t_meta),
        );
        t_done = t_done.max(grant);
        sub.dir.set_owner(line, core);
        let l = self.l1[core.index()]
            .probe_mut(line)
            .ok_or_else(|| not_resident("upgrading line", core, line))?;
        l.mesi = MesiState::M;
        l.dirty = true;
        Ok((t_done, incoming))
    }

    /// Read miss.
    fn fetch_read(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        line: LineAddr,
        now: Cycles,
    ) -> RceResult<(Cycles, MetaMap)> {
        let me = sub.core_node(core);
        let bank = sub.bank_node(line);
        let piggy = self.piggy(sub);
        let data_bytes = sub.cfg.noc.data_header_bytes + 64 + piggy;
        let t1 = sub.noc.send(
            me,
            bank,
            sub.cfg.noc.ctrl_bytes,
            MsgClass::Request,
            Cycles(now.0 + sub.cfg.l1.latency),
        );
        sub.dir_access();
        let entry = sub.dir.entry(line);
        let mut incoming = MetaMap::new();
        let was_idle = entry.is_idle();
        let t_data;
        if let Some(owner) = entry.owner.filter(|o| *o != core) {
            self.c2c_transfers.inc();
            let t2 = sub.noc.send(
                bank,
                sub.core_node(owner),
                sub.cfg.noc.ctrl_bytes,
                MsgClass::Request,
                t1,
            );
            // The owner loses write permission (M/E -> S or O): its
            // armed coverage for the line can no longer short-circuit.
            self.filter.invalidate(owner, line);
            let (needs_writeback, owner_stays, meta_copy) = {
                let st = self.l1[owner.index()]
                    .probe_mut(line)
                    .ok_or_else(|| not_resident("directory owner", owner, line))?;
                if self.moesi && st.dirty {
                    // MOESI: the dirty owner downgrades to O, keeps its
                    // dirty data, and skips the LLC writeback.
                    st.mesi = MesiState::O;
                    (false, true, st.meta.clone())
                } else {
                    st.mesi = MesiState::S;
                    let d = st.dirty;
                    st.dirty = false;
                    (d, false, st.meta.clone())
                }
            };
            if self.detection() {
                incoming.merge(&meta_copy);
            }
            let owner_node = sub.core_node(owner);
            if needs_writeback {
                let wb = sub.noc.send(
                    owner_node,
                    bank,
                    sub.cfg.noc.data_header_bytes + 64,
                    MsgClass::Writeback,
                    t2,
                );
                sub.llc_put(line, wb);
            }
            t_data = sub.noc.send(owner_node, me, data_bytes, MsgClass::Data, t2);
            if owner_stays {
                self.owned_downgrades.inc();
                sub.dir.add_sharer_keep_owner(line, core);
            } else {
                sub.dir.downgrade_owner(line);
                sub.dir.add_sharer(line, core);
            }
        } else {
            let t_llc = sub.llc_data(line, t1);
            t_data = sub.noc.send(bank, me, data_bytes, MsgClass::Data, t_llc);
            if was_idle {
                // Exclusive grant.
                sub.dir.set_owner(line, core);
            } else {
                sub.dir.add_sharer(line, core);
            }
        }
        let (t_meta, m) = self.fetch_meta(sub, line, t1);
        incoming.merge(&m);
        incoming.merge(&self.llc_meta_copy(line));
        self.llc_meta_merge(sub, line, &incoming);
        let mesi = if was_idle && entry.owner.is_none() {
            MesiState::E
        } else {
            MesiState::S
        };
        let done = t_data.max(t_meta);
        self.fill_line(
            sub,
            core,
            line,
            CeLine {
                mesi,
                dirty: false,
                meta: MetaMap::new(),
            },
            done,
        );
        Ok((Cycles(done.0 + sub.cfg.l1.latency), incoming))
    }

    /// Write miss.
    fn fetch_write(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        line: LineAddr,
        now: Cycles,
    ) -> RceResult<(Cycles, MetaMap)> {
        let lid = self.lines.intern(line);
        let me = sub.core_node(core);
        let bank = sub.bank_node(line);
        let piggy = self.piggy(sub);
        let data_bytes = sub.cfg.noc.data_header_bytes + 64 + piggy;
        let t1 = sub.noc.send(
            me,
            bank,
            sub.cfg.noc.ctrl_bytes,
            MsgClass::Request,
            Cycles(now.0 + sub.cfg.l1.latency),
        );
        sub.dir_access();
        let entry = sub.dir.entry(line);
        let mut incoming = MetaMap::new();
        let mut t_done = t1;
        if let Some(owner) = entry.owner.filter(|o| *o != core) {
            self.c2c_transfers.inc();
            let t2 = sub.noc.send(
                bank,
                sub.core_node(owner),
                sub.cfg.noc.ctrl_bytes,
                MsgClass::Request,
                t1,
            );
            self.filter.invalidate(owner, line);
            let st = self.l1[owner.index()]
                .invalidate(line)
                .ok_or_else(|| not_resident("directory owner", owner, line))?;
            if self.detection() {
                if Self::has_live_own(&st.meta, owner, sub) {
                    self.foreign[owner.index()].insert(lid);
                }
                incoming.merge(&st.meta);
            }
            // Dirty ownership transfers cache-to-cache.
            t_done = sub
                .noc
                .send(sub.core_node(owner), me, data_bytes, MsgClass::Data, t2);
            // Under MOESI the Owned line may have clean co-sharers;
            // they must be invalidated too.
            let co_sharers: Vec<CoreId> = sub
                .dir
                .sharers_except(line, core)
                .into_iter()
                .filter(|s| *s != owner)
                .collect();
            if !co_sharers.is_empty() {
                self.invalidations.add(co_sharers.len() as u64);
                let nodes: Vec<_> = co_sharers.iter().map(|s| sub.core_node(*s)).collect();
                let inv_at = sub.noc.multicast(
                    bank,
                    &nodes,
                    sub.cfg.noc.ctrl_bytes,
                    MsgClass::Invalidation,
                    t1,
                );
                for s in co_sharers {
                    self.filter.invalidate(s, line);
                    let st = self.l1[s.index()]
                        .invalidate(line)
                        .ok_or_else(|| not_resident("directory sharer", s, line))?;
                    if self.detection() {
                        if Self::has_live_own(&st.meta, s, sub) {
                            self.foreign[s.index()].insert(lid);
                        }
                        incoming.merge(&st.meta);
                    }
                    let ack = sub.noc.send(
                        sub.core_node(s),
                        me,
                        sub.cfg.noc.ctrl_bytes + piggy,
                        MsgClass::Ack,
                        inv_at,
                    );
                    t_done = t_done.max(ack);
                }
            }
        } else {
            let sharers = sub.dir.sharers_except(line, core);
            if !sharers.is_empty() {
                self.invalidations.add(sharers.len() as u64);
                let nodes: Vec<_> = sharers.iter().map(|s| sub.core_node(*s)).collect();
                let inv_at = sub.noc.multicast(
                    bank,
                    &nodes,
                    sub.cfg.noc.ctrl_bytes,
                    MsgClass::Invalidation,
                    t1,
                );
                for s in sharers {
                    self.filter.invalidate(s, line);
                    let st = self.l1[s.index()]
                        .invalidate(line)
                        .ok_or_else(|| not_resident("directory sharer", s, line))?;
                    if self.detection() {
                        if Self::has_live_own(&st.meta, s, sub) {
                            self.foreign[s.index()].insert(lid);
                        }
                        incoming.merge(&st.meta);
                    }
                    let ack = sub.noc.send(
                        sub.core_node(s),
                        me,
                        sub.cfg.noc.ctrl_bytes + piggy,
                        MsgClass::Ack,
                        inv_at,
                    );
                    t_done = t_done.max(ack);
                }
            }
            let t_llc = sub.llc_data(line, t1);
            let t_data = sub.noc.send(bank, me, data_bytes, MsgClass::Data, t_llc);
            t_done = t_done.max(t_data);
        }
        let (t_meta, m) = self.fetch_meta(sub, line, t1);
        incoming.merge(&m);
        incoming.merge(&self.llc_meta_copy(line));
        self.llc_meta_merge(sub, line, &incoming);
        t_done = t_done.max(t_meta);
        sub.dir.set_owner(line, core);
        self.fill_line(
            sub,
            core,
            line,
            CeLine {
                mesi: MesiState::M,
                dirty: true,
                meta: MetaMap::new(),
            },
            t_done,
        );
        Ok((Cycles(t_done.0 + sub.cfg.l1.latency), incoming))
    }

    /// Directory/L1 consistency check (tests and debugging).
    pub fn check_invariants(&self, sub: &Substrate) -> Result<(), String> {
        sub.dir.check_invariants_mode(!self.moesi)?;
        for (c, cache) in self.l1.iter().enumerate() {
            let core = CoreId(c as u16);
            for (line, st) in cache.iter() {
                let e = sub.dir.entry(line);
                match st.mesi {
                    MesiState::M | MesiState::E => {
                        if e.owner != Some(core) {
                            return Err(format!(
                                "{core} holds {line} in {} but directory owner is {:?}",
                                st.mesi, e.owner
                            ));
                        }
                        if e.sharer_count() != 1 {
                            return Err(format!(
                                "{core} holds {line} in {} with co-sharers",
                                st.mesi
                            ));
                        }
                    }
                    MesiState::O => {
                        if !self.moesi {
                            return Err(format!("{core} holds {line} in O without MOESI"));
                        }
                        if e.owner != Some(core) {
                            return Err(format!(
                                "{core} holds {line} in O but directory owner is {:?}",
                                e.owner
                            ));
                        }
                        if !st.dirty {
                            return Err(format!("{core} holds {line} in O but clean"));
                        }
                    }
                    MesiState::S => {
                        if !e.has_sharer(core) {
                            return Err(format!(
                                "{core} holds {line} in S but is not a directory sharer"
                            ));
                        }
                        if e.owner == Some(core) {
                            return Err(format!("{core} holds {line} in S yet owns it"));
                        }
                        if !self.moesi && e.owner.is_some() {
                            return Err(format!(
                                "{core} holds {line} in S while {:?} owns it",
                                e.owner
                            ));
                        }
                    }
                    MesiState::I => return Err(format!("{core} holds {line} in I")),
                }
            }
        }
        Ok(())
    }
}

impl Engine for MesiFamilyEngine {
    fn access(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        addr: Addr,
        mask: WordMask,
        kind: AccessType,
        now: Cycles,
    ) -> RceResult<AccessResult> {
        let line = addr.line();
        let region = sub.region_of(core);
        let l1_lat = sub.cfg.l1.latency;

        let state = self.l1[core.index()].access(line).map(|l| l.mesi);
        // Fast path: an L1 hit whose raw mask is covered by a
        // conflict-free same-kind access in the same region repeats a
        // fully determined outcome — state transition a no-op, bits
        // already recorded, no conflict possible (a conflicting access
        // never arms; remote transitions invalidate). Only the L1-hit
        // latency charge remains. Write coverage implies the line is
        // still M (every downgrade hooks the filter), so `can_write`
        // held and the dirty/M bits are already set.
        if state.is_some() && self.filter.hit(core, line, region, kind, mask) {
            return Ok(AccessResult {
                done: Cycles(now.0 + l1_lat),
                exceptions: Vec::new(),
                paths: Vec::new(),
                fast: true,
            });
        }
        // Snapshot the displaced-fetch counter: if it moves during this
        // access, any conflict found involved bits fetched back from
        // the metadata backend rather than bits riding the L1 line.
        let lookups_before = self.meta_lookups.get();
        let (done, incoming) = match (state, kind) {
            (Some(_), AccessType::Read) => (Cycles(now.0 + l1_lat), MetaMap::new()),
            (Some(s), AccessType::Write) if s.can_write() => {
                let l = self.l1[core.index()]
                    .probe_mut(line)
                    .ok_or_else(|| not_resident("write hit", core, line))?;
                l.mesi = MesiState::M;
                l.dirty = true;
                (Cycles(now.0 + l1_lat), MetaMap::new())
            }
            (Some(_), AccessType::Write) => self.upgrade(sub, core, line, now)?,
            (None, AccessType::Read) => self.fetch_read(sub, core, line, now)?,
            (None, AccessType::Write) => self.fetch_write(sub, core, line, now)?,
        };

        let mut exceptions = Vec::new();
        let mut paths = Vec::new();
        if self.detection() {
            let dmask = sub.cfg.detect_mask(mask);
            let lref = self.l1[core.index()]
                .probe_mut(line)
                .ok_or_else(|| not_resident("line after access", core, line))?;
            lref.meta.merge(&incoming);
            let me = ConflictSide { core, region, kind };
            exceptions =
                self.detect
                    .check_and_record(&mut lref.meta, me, dmask, line, done, |c, r| {
                        sub.is_live(c, r)
                    });
            if !exceptions.is_empty() {
                let fetched = self.meta_lookups.get() > lookups_before;
                let path = DetectPath {
                    placement: self.meta.placement(),
                    site: if fetched {
                        DetectSite::DisplacedFetch
                    } else {
                        DetectSite::L1Bits
                    },
                    aim: if fetched {
                        self.meta.last_outcome()
                    } else {
                        None
                    },
                };
                paths = vec![path; exceptions.len()];
            }
        }
        if exceptions.is_empty() {
            self.filter.arm(core, line, region, kind, mask);
        }
        Ok(AccessResult {
            done,
            exceptions,
            paths,
            fast: false,
        })
    }

    fn region_boundary(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        now: Cycles,
    ) -> RceResult<AccessResult> {
        if !self.detection() {
            return Ok(AccessResult {
                done: now,
                exceptions: Vec::new(),
                paths: Vec::new(),
                fast: false,
            });
        }
        // Local flash-clear of this core's bits (and opportunistic
        // pruning of dead remote bits riding our lines).
        for (_, st) in self.l1[core.index()].iter_mut() {
            st.meta.clear_core(core);
        }
        let mut done = Cycles(now.0 + 5);
        // Scrub every line whose bits escaped the L1 this region
        // (sorted by address: the old HashSet drain was sorted the
        // same way, and an order change would perturb NoC contention
        // between otherwise-identical runs).
        let mut lines: Vec<u64> = self.foreign[core.index()]
            .take()
            .into_iter()
            .map(|id| self.lines.addr(id).0)
            .collect();
        lines.sort_unstable();
        for l in lines {
            let t = self.backend_scrub(sub, core, LineAddr(l), now);
            done = done.max(t);
        }
        Ok(AccessResult {
            done,
            exceptions: Vec::new(),
            paths: Vec::new(),
            fast: false,
        })
    }

    fn name(&self) -> &'static str {
        self.mode.name()
    }

    fn set_fastpath(&mut self, on: bool) {
        self.filter.set_enabled(on);
    }

    fn l1_totals(&self) -> (u64, u64, u64) {
        self.l1.iter().fold((0, 0, 0), |(h, m, e), c| {
            (h + c.hits.get(), m + c.misses.get(), e + c.evictions.get())
        })
    }

    fn aim_totals(&self) -> Option<(u64, u64, u64, u64)> {
        self.meta.totals()
    }

    fn extra_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("invalidations", self.invalidations.get()),
            ("upgrades", self.upgrades.get()),
            ("owned_downgrades", self.owned_downgrades.get()),
            ("c2c_transfers", self.c2c_transfers.get()),
            ("meta_pushes", self.meta_pushes.get()),
            ("meta_lookups", self.meta_lookups.get()),
            ("scrubs", self.scrubs.get()),
            ("conflict_checks_hit", self.detect.conflicts()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::MetaPlacement;

    fn setup(protocol: ProtocolKind, cores: usize) -> (MesiFamilyEngine, Substrate) {
        let cfg = MachineConfig::paper_default(cores, protocol);
        (MesiFamilyEngine::new(&cfg), Substrate::new(&cfg))
    }

    const R: AccessType = AccessType::Read;
    const W: AccessType = AccessType::Write;

    fn acc(
        e: &mut MesiFamilyEngine,
        s: &mut Substrate,
        core: u16,
        addr: u64,
        kind: AccessType,
        now: u64,
    ) -> AccessResult {
        e.access(
            s,
            CoreId(core),
            Addr(addr),
            WordMask::span(Addr(addr), 8),
            kind,
            Cycles(now),
        )
        .unwrap()
    }

    #[test]
    fn read_miss_then_hit() {
        let (mut e, mut s) = setup(ProtocolKind::MesiBaseline, 2);
        let r1 = acc(&mut e, &mut s, 0, 0x1000, R, 0);
        assert!(r1.done.0 > 10, "miss goes through NoC/LLC/DRAM");
        let r2 = acc(&mut e, &mut s, 0, 0x1000, R, r1.done.0);
        assert_eq!(
            r2.done.0 - r1.done.0,
            s.cfg.l1.latency,
            "hit is an L1 access"
        );
        let (h, m, _) = e.l1_totals();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn exclusive_grant_allows_silent_write() {
        let (mut e, mut s) = setup(ProtocolKind::MesiBaseline, 2);
        let r = acc(&mut e, &mut s, 0, 0x1000, R, 0);
        // First reader got E; writing is a pure L1 hit.
        let w = acc(&mut e, &mut s, 0, 0x1000, W, r.done.0);
        assert_eq!(w.done.0 - r.done.0, s.cfg.l1.latency);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn write_invalidates_sharers() {
        let (mut e, mut s) = setup(ProtocolKind::MesiBaseline, 3);
        let a = acc(&mut e, &mut s, 0, 0x2000, R, 0);
        let b = acc(&mut e, &mut s, 1, 0x2000, R, a.done.0);
        // Both sharers; core 2 writes.
        let w = acc(&mut e, &mut s, 2, 0x2000, W, b.done.0);
        assert!(w.done > b.done);
        assert!(e.invalidations.get() >= 2);
        // Sharers lost their copies.
        assert!(!e.l1[0].contains(Addr(0x2000).line()));
        assert!(!e.l1[1].contains(Addr(0x2000).line()));
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn dirty_data_transfers_cache_to_cache() {
        let (mut e, mut s) = setup(ProtocolKind::MesiBaseline, 2);
        let w = acc(&mut e, &mut s, 0, 0x3000, W, 0);
        let r = acc(&mut e, &mut s, 1, 0x3000, R, w.done.0);
        assert!(r.done > w.done);
        assert_eq!(e.c2c_transfers.get(), 1);
        // Both now share.
        let line = Addr(0x3000).line();
        assert_eq!(e.l1[0].peek(line).unwrap().mesi, MesiState::S);
        assert_eq!(e.l1[1].peek(line).unwrap().mesi, MesiState::S);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn baseline_detects_nothing() {
        let (mut e, mut s) = setup(ProtocolKind::MesiBaseline, 2);
        let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
        let r = acc(&mut e, &mut s, 1, 0x100, W, w.done.0);
        assert!(w.exceptions.is_empty() && r.exceptions.is_empty());
    }

    #[test]
    fn ce_detects_write_write_conflict() {
        for proto in [ProtocolKind::Ce, ProtocolKind::CePlus] {
            let (mut e, mut s) = setup(proto, 2);
            let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
            assert!(w.exceptions.is_empty());
            let r = acc(&mut e, &mut s, 1, 0x100, W, w.done.0);
            assert_eq!(r.exceptions.len(), 1, "{proto}");
            assert!(r.exceptions[0].involves_write());
        }
    }

    #[test]
    fn ideal_placement_detects_like_ceplus() {
        let cfg = MachineConfig::paper_default(2, ProtocolKind::CePlus)
            .with_meta_placement(MetaPlacement::Ideal);
        let mut e = MesiFamilyEngine::new(&cfg);
        let mut s = Substrate::new(&cfg);
        let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
        let r = acc(&mut e, &mut s, 1, 0x100, W, w.done.0);
        assert_eq!(r.exceptions.len(), 1);
        assert!(e.aim_totals().is_none(), "ideal store has no hit stats");
    }

    #[test]
    fn ce_detects_read_write_conflict_via_invalidation() {
        let (mut e, mut s) = setup(ProtocolKind::Ce, 2);
        let r = acc(&mut e, &mut s, 0, 0x100, R, 0);
        let w = acc(&mut e, &mut s, 1, 0x100, W, r.done.0);
        assert_eq!(w.exceptions.len(), 1);
        assert_eq!(w.exceptions[0].a.kind, AccessType::Read);
        assert_eq!(w.exceptions[0].b.kind, AccessType::Write);
    }

    #[test]
    fn region_end_clears_conflict_window() {
        let (mut e, mut s) = setup(ProtocolKind::Ce, 2);
        let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
        // Core 0's region ends.
        let b = e.region_boundary(&mut s, CoreId(0), w.done).unwrap();
        s.advance_region(CoreId(0));
        let r = acc(&mut e, &mut s, 1, 0x100, W, b.done.0);
        assert!(r.exceptions.is_empty(), "regions were not concurrent");
    }

    #[test]
    fn word_granularity_no_false_sharing_exception() {
        let (mut e, mut s) = setup(ProtocolKind::Ce, 2);
        let w0 = acc(&mut e, &mut s, 0, 0x100, W, 0); // word 0
        let w1 = acc(&mut e, &mut s, 1, 0x108, W, w0.done.0); // word 1
        assert!(w1.exceptions.is_empty(), "distinct words do not conflict");
    }

    #[test]
    fn displaced_metadata_found_after_eviction() {
        // Core 0 writes a word, then thrashes its set so the line is
        // evicted (bits spill). Core 1's access must still detect.
        let (mut e, mut s) = setup(ProtocolKind::Ce, 2);
        let base = 0x10_0000u64;
        let w = acc(&mut e, &mut s, 0, base, W, 0);
        // L1: 32KiB/8-way = 64 sets; lines mapping to the same set are
        // 64*64 = 4096 bytes apart.
        let mut t = w.done.0;
        for i in 1..=8u64 {
            let r = acc(&mut e, &mut s, 0, base + i * 4096, R, t);
            t = r.done.0;
        }
        assert!(
            !e.l1[0].contains(Addr(base).line()),
            "line must have been evicted"
        );
        assert!(e.meta_pushes.get() >= 1);
        let r = acc(&mut e, &mut s, 1, base, W, t);
        assert_eq!(
            r.exceptions.len(),
            1,
            "conflict survives eviction via backend"
        );
        assert!(e.meta_lookups.get() >= 1);
    }

    #[test]
    fn ce_uses_dram_for_metadata_ceplus_uses_aim() {
        for (proto, expect_aim) in [(ProtocolKind::Ce, false), (ProtocolKind::CePlus, true)] {
            let (mut e, mut s) = setup(proto, 2);
            let base = 0x10_0000u64;
            let mut t = acc(&mut e, &mut s, 0, base, W, 0).done.0;
            for i in 1..=8u64 {
                t = acc(&mut e, &mut s, 0, base + i * 4096, R, t).done.0;
            }
            let meta_dram = s.dram.stats().metadata_bytes().0;
            if expect_aim {
                assert_eq!(meta_dram, 0, "CE+ spills stay on-chip");
                assert!(e.aim_totals().unwrap().0 >= 1);
            } else {
                assert!(meta_dram > 0, "CE metadata goes off-chip");
                assert!(e.aim_totals().is_none());
            }
        }
    }

    #[test]
    fn region_boundary_scrubs_displaced_lines() {
        let (mut e, mut s) = setup(ProtocolKind::Ce, 2);
        let base = 0x10_0000u64;
        let mut t = acc(&mut e, &mut s, 0, base, W, 0).done.0;
        for i in 1..=8u64 {
            t = acc(&mut e, &mut s, 0, base + i * 4096, R, t).done.0;
        }
        let before = s.dram.stats().metadata_bytes().0;
        let b = e.region_boundary(&mut s, CoreId(0), Cycles(t)).unwrap();
        assert!(b.done.0 > t, "scrub costs time");
        assert!(e.scrubs.get() >= 1);
        assert!(s.dram.stats().metadata_bytes().0 > before);
        s.advance_region(CoreId(0));
    }

    #[test]
    fn piggyback_inflates_ce_messages() {
        let run = |proto| {
            let (mut e, mut s) = setup(proto, 2);
            let w = acc(&mut e, &mut s, 0, 0x5000, W, 0);
            let _ = acc(&mut e, &mut s, 1, 0x5000, R, w.done.0);
            s.noc.stats().total_bytes().0
        };
        assert!(run(ProtocolKind::Ce) > run(ProtocolKind::MesiBaseline));
    }

    #[test]
    fn invariants_hold_under_random_traffic() {
        use rce_common::{Rng, SplitMix64};
        let (mut e, mut s) = setup(ProtocolKind::Ce, 4);
        let mut rng = SplitMix64::new(42);
        let mut t = 0u64;
        for i in 0..2000 {
            let core = rng.gen_range(4) as u16;
            let addr = 0x8000 + rng.gen_range(64) * 8;
            let kind = if rng.gen_bool(0.4) { W } else { R };
            let r = acc(&mut e, &mut s, core, addr, kind, t);
            t = r.done.0.max(t) + 1;
            if i % 97 == 0 {
                let b = e.region_boundary(&mut s, CoreId(core), Cycles(t)).unwrap();
                s.advance_region(CoreId(core));
                t = b.done.0.max(t) + 1;
            }
        }
        e.check_invariants(&s).unwrap();
    }

    fn setup_moesi(protocol: ProtocolKind, cores: usize) -> (MesiFamilyEngine, Substrate) {
        let mut cfg = MachineConfig::paper_default(cores, protocol);
        cfg.use_owned_state = true;
        (MesiFamilyEngine::new(&cfg), Substrate::new(&cfg))
    }

    #[test]
    fn moesi_dirty_downgrade_skips_writeback() {
        let (mut e, mut s) = setup_moesi(ProtocolKind::MesiBaseline, 2);
        let w = acc(&mut e, &mut s, 0, 0x3000, W, 0);
        let wb_before = s.noc.stats().bytes[MsgClass::Writeback.index()].0;
        let r = acc(&mut e, &mut s, 1, 0x3000, R, w.done.0);
        assert!(r.done > w.done);
        let wb_after = s.noc.stats().bytes[MsgClass::Writeback.index()].0;
        assert_eq!(wb_before, wb_after, "O downgrade must not write back");
        let line = Addr(0x3000).line();
        assert_eq!(e.l1[0].peek(line).unwrap().mesi, MesiState::O);
        assert!(
            e.l1[0].peek(line).unwrap().dirty,
            "owner keeps the dirty data"
        );
        assert_eq!(e.l1[1].peek(line).unwrap().mesi, MesiState::S);
        assert_eq!(e.owned_downgrades.get(), 1);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn mesi_mode_still_writes_back_on_downgrade() {
        let (mut e, mut s) = setup(ProtocolKind::MesiBaseline, 2);
        let w = acc(&mut e, &mut s, 0, 0x3000, W, 0);
        let _ = acc(&mut e, &mut s, 1, 0x3000, R, w.done.0);
        assert!(s.noc.stats().bytes[MsgClass::Writeback.index()].0 > 0);
        assert_eq!(e.owned_downgrades.get(), 0);
    }

    #[test]
    fn moesi_write_invalidates_owner_and_cosharers() {
        let (mut e, mut s) = setup_moesi(ProtocolKind::MesiBaseline, 3);
        // Core 0 owns dirty (O after core 1 reads); core 2 writes.
        let w = acc(&mut e, &mut s, 0, 0x4000, W, 0);
        let r = acc(&mut e, &mut s, 1, 0x4000, R, w.done.0);
        let w2 = acc(&mut e, &mut s, 2, 0x4000, W, r.done.0);
        assert!(w2.done > r.done);
        let line = Addr(0x4000).line();
        assert!(!e.l1[0].contains(line), "O owner invalidated");
        assert!(!e.l1[1].contains(line), "co-sharer invalidated");
        assert_eq!(e.l1[2].peek(line).unwrap().mesi, MesiState::M);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn moesi_owner_eviction_writes_back_for_sharers() {
        let (mut e, mut s) = setup_moesi(ProtocolKind::MesiBaseline, 2);
        let base = 0x10_0000u64;
        let w = acc(&mut e, &mut s, 0, base, W, 0);
        let r = acc(&mut e, &mut s, 1, base, R, w.done.0); // core 0 -> O
                                                           // Thrash core 0's set so the O line evicts.
        let mut t = r.done.0;
        for i in 1..=8u64 {
            t = acc(&mut e, &mut s, 0, base + i * 4096, R, t).done.0;
        }
        assert!(!e.l1[0].contains(Addr(base).line()));
        // The dirty data reached the LLC on eviction.
        assert!(s.llc.contains(Addr(base).line()));
        // Core 1's copy survives; a fresh reader gets LLC data.
        assert!(e.l1[1].contains(Addr(base).line()));
        e.check_invariants(&s).unwrap();
        let _ = t;
    }

    #[test]
    fn moesi_detection_still_works() {
        for proto in [ProtocolKind::Ce, ProtocolKind::CePlus] {
            let (mut e, mut s) = setup_moesi(proto, 2);
            let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
            let r = acc(&mut e, &mut s, 1, 0x100, R, w.done.0);
            assert_eq!(r.exceptions.len(), 1, "{proto}");
            // Conflict metadata rode the O downgrade.
            assert!(r.exceptions[0].involves_write());
        }
    }

    #[test]
    fn moesi_invariants_under_random_traffic() {
        use rce_common::{Rng, SplitMix64};
        let (mut e, mut s) = setup_moesi(ProtocolKind::Ce, 4);
        let mut rng = SplitMix64::new(77);
        let mut t = 0u64;
        for i in 0..3000 {
            let core = rng.gen_range(4) as u16;
            let addr = 0x8000 + rng.gen_range(64) * 8;
            let kind = if rng.gen_bool(0.4) { W } else { R };
            let r = acc(&mut e, &mut s, core, addr, kind, t);
            t = r.done.0.max(t) + 1;
            if i % 89 == 0 {
                let b = e.region_boundary(&mut s, CoreId(core), Cycles(t)).unwrap();
                s.advance_region(CoreId(core));
                t = b.done.0.max(t) + 1;
            }
        }
        e.check_invariants(&s).unwrap();
    }
}
