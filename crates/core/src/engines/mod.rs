//! The architecture engines and the variant registry.
//!
//! [`MesiFamilyEngine`] implements the eager write-invalidation family
//! (MESI baseline, CE, CE+ — one coherence mechanism, pluggable
//! metadata placements); [`ArcEngine`] implements the
//! release-consistency + self-invalidation design. Both are
//! compositions of three layers — coherence (this module), detection
//! ([`crate::detect`]), metadata placement ([`crate::meta`]) — and the
//! [`REGISTRY`] names the compositions worth running, including two
//! that exist only because the layers are orthogonal: CE+ with an
//! ideal metadata store, and ARC paying CE's off-chip metadata tax.
//! See the crate docs for the design overview and DESIGN.md for the
//! cost model.

mod arc;
mod mesi_family;

pub use arc::ArcEngine;
pub use mesi_family::MesiFamilyEngine;

use rce_common::{MachineConfig, MetaPlacement, ProtocolKind};

/// One named engine composition: a coherence/detection family plus a
/// metadata placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineVariant {
    /// The name accepted by CLIs (matched case-insensitively).
    pub cli_name: &'static str,
    /// Coherence + detection family.
    pub protocol: ProtocolKind,
    /// Metadata placement.
    pub placement: MetaPlacement,
    /// One-line description for listings.
    pub summary: &'static str,
}

impl EngineVariant {
    /// The paper-default configuration for this variant.
    pub fn config(&self, cores: usize) -> MachineConfig {
        MachineConfig::paper_default(cores, self.protocol).with_meta_placement(self.placement)
    }

    /// True when this is one of the paper's four designs (placement is
    /// the protocol's default) rather than a cross-composition.
    pub fn is_paper_design(&self) -> bool {
        self.placement == self.protocol.default_meta_placement()
    }
}

/// Every named engine composition, paper designs first.
pub const REGISTRY: [EngineVariant; 6] = [
    EngineVariant {
        cli_name: "MESI",
        protocol: ProtocolKind::MesiBaseline,
        placement: MetaPlacement::None,
        summary: "eager-invalidation baseline, no detection",
    },
    EngineVariant {
        cli_name: "CE",
        protocol: ProtocolKind::Ce,
        placement: MetaPlacement::Dram,
        summary: "Conflict Exceptions, metadata in an off-chip DRAM table",
    },
    EngineVariant {
        cli_name: "CE+",
        protocol: ProtocolKind::CePlus,
        placement: MetaPlacement::Aim,
        summary: "Conflict Exceptions, metadata in the on-chip AIM",
    },
    EngineVariant {
        cli_name: "ARC",
        protocol: ProtocolKind::Arc,
        placement: MetaPlacement::Aim,
        summary: "self-invalidation coherence, detection at the LLC-side AIM",
    },
    EngineVariant {
        cli_name: "CE+ideal",
        protocol: ProtocolKind::CePlus,
        placement: MetaPlacement::Ideal,
        summary: "CE+ with an infinite zero-cost metadata store (upper bound)",
    },
    EngineVariant {
        cli_name: "ARC-dram",
        protocol: ProtocolKind::Arc,
        placement: MetaPlacement::Dram,
        summary: "ARC registering against CE's off-chip table (what the AIM buys)",
    },
];

/// Look a variant up by CLI name, case-insensitively.
pub fn find_variant(name: &str) -> Option<&'static EngineVariant> {
    REGISTRY
        .iter()
        .find(|v| v.cli_name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_is_case_insensitive() {
        assert_eq!(find_variant("ce+").unwrap().cli_name, "CE+");
        assert_eq!(
            find_variant("ARC-DRAM").unwrap().placement,
            MetaPlacement::Dram
        );
        assert!(find_variant("nonesuch").is_none());
    }

    #[test]
    fn registry_configs_validate() {
        for v in &REGISTRY {
            let cfg = v.config(4);
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", v.cli_name));
            assert_eq!(cfg.protocol, v.protocol);
            assert_eq!(cfg.meta_placement, v.placement);
        }
    }

    #[test]
    fn paper_designs_lead_the_registry() {
        assert!(REGISTRY[..4].iter().all(|v| v.is_paper_design()));
        assert!(REGISTRY[4..].iter().all(|v| !v.is_paper_design()));
        // CLI names are unique even case-insensitively.
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert!(!a.cli_name.eq_ignore_ascii_case(b.cli_name));
            }
        }
    }
}
