//! The four architecture engines.
//!
//! [`MesiFamilyEngine`] implements the eager write-invalidation family
//! (MESI baseline, CE, CE+ — one mechanism, three metadata backends);
//! [`ArcEngine`] implements the release-consistency +
//! self-invalidation design. See the crate docs for the design
//! overview and DESIGN.md for the cost model.

mod arc;
mod mesi_family;

pub use arc::ArcEngine;
pub use mesi_family::MesiFamilyEngine;

use crate::access::ConflictCheck;
use crate::exception::{ConflictException, ConflictSide};
use rce_common::{Cycles, LineAddr};

/// Materialize per-word exceptions from a conflict check result.
pub(crate) fn exceptions_from(
    check: &ConflictCheck,
    me: ConflictSide,
    line: LineAddr,
    at: Cycles,
) -> Vec<ConflictException> {
    let mut out = Vec::new();
    for (side, words) in &check.conflicts {
        for w in words.iter() {
            out.push(ConflictException::new(me, *side, line.word_addr(w), at));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MetaMap;
    use crate::exception::AccessType;
    use rce_common::{CoreId, RegionId, WordIdx, WordMask};

    #[test]
    fn exceptions_expand_per_word() {
        let mut m = MetaMap::new();
        m.record(CoreId(1), RegionId(4), AccessType::Write, WordMask(0b11));
        let chk = m.check(CoreId(0), AccessType::Write, WordMask(0b11), |_, _| true);
        let me = ConflictSide {
            core: CoreId(0),
            region: RegionId(9),
            kind: AccessType::Write,
        };
        let ex = exceptions_from(&chk, me, LineAddr(2), Cycles(5));
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].word_addr, LineAddr(2).word_addr(WordIdx(0)));
        assert_eq!(ex[1].word_addr, LineAddr(2).word_addr(WordIdx(1)));
    }
}
