//! ARC: conflict detection on release-consistency +
//! self-invalidation coherence.
//!
//! The design (reconstructed from the abstract; see DESIGN.md):
//!
//! - **No eager invalidations.** Private caches hold lines as
//!   valid/invalid with per-word dirty bits; nobody is ever forced to
//!   give up a copy.
//! - **Private/shared classification at the LLC.** A line first
//!   touched by one core is *private* to it; when a second core
//!   requests it, the LLC *recalls* the owner's dirty words and
//!   current-region access bits and reclassifies the line *shared*.
//! - **Word registration.** The first access per word/kind/region to
//!   a shared line sends a small registration message to the line's
//!   home LLC bank, where the metadata layer ([`crate::meta`] —
//!   normally the **AIM**) holds every core's current-region access
//!   bits and the shared [`Detector`] checks conflicts on the spot.
//!   Registration rides the miss request when the access misses (the
//!   common case, thanks to self-invalidation).
//! - **Region boundaries** (every synchronization operation): the core
//!   flushes dirty words of shared lines to the LLC (release
//!   semantics), clears its registrations (one small message per
//!   touched line), and *self-invalidates* its shared lines so the
//!   next region re-fetches fresh data (acquire semantics). Private
//!   lines — clean or dirty — stay put.
//!
//! Compared with CE+: no invalidation/ack storms, no per-message
//! metadata piggybacks, dirty-word (not whole-line) writebacks — at
//! the cost of re-fetching shared data each region and paying
//! registration messages. Because the metadata placement is pluggable,
//! ARC can also register against CE's off-chip DRAM table
//! ([`crate::meta::DramMeta`]) — measuring exactly what the AIM buys
//! this family.

use crate::detect::Detector;
use crate::exception::{AccessType, ConflictException, ConflictSide};
use crate::fastpath::AccessFilter;
use crate::forensics::{DetectPath, DetectSite};
use crate::meta::{backend_for, MetaBackend};
use crate::protocol::{AccessResult, Engine, Substrate};
use rce_cache::L1Cache;
use rce_common::obs::{EventClass, EventKind, SimEvent};
use rce_common::{
    Addr, CoreId, Counter, Cycles, LineAddr, LineFlags, LineMap, LineSet, LineTable, MachineConfig,
    RceError, RceResult, WordMask,
};
use rce_noc::MsgClass;

/// Per-line L1 state for ARC.
#[derive(Debug, Clone, Default)]
pub struct ArcLine {
    /// Classification hint delivered with the fill (or flipped by a
    /// recall): shared lines self-invalidate at region boundaries.
    pub shared: bool,
    /// Read-only hint (only with `arc_readonly_sharing`): the line had
    /// never been written when filled, so it survives region
    /// boundaries. Cleared if this core writes it. The hint may go
    /// stale when *another* core writes the line; detection stays
    /// exact regardless, because first-touch registrations are driven
    /// by the per-region masks, not by misses (see the module tests).
    pub ro: bool,
    /// Dirty words not yet written through to the LLC.
    pub dirty: WordMask,
    /// Words this core read this region (registration filter).
    pub read_words: WordMask,
    /// Words this core wrote this region (registration filter).
    pub written_words: WordMask,
}

/// LLC-side classification of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Private(CoreId),
    Shared,
}

/// The ARC engine.
pub struct ArcEngine {
    l1: Vec<L1Cache<ArcLine>>,
    /// Where registration metadata lives (normally the AIM).
    meta: Box<dyn MetaBackend>,
    /// The conflict detector (shared logic with the MESI family).
    detect: Detector,
    /// Fast-path filter over repeat accesses (see [`crate::fastpath`]).
    /// A covered repeat implies `new_words` would be empty (no
    /// registration) and the dirty bits are already set, so the whole
    /// hit path is a no-op beyond the latency charge. Invalidated on
    /// eviction and on recall — recall clears the owner's dirty mask,
    /// which un-invalidated write coverage would otherwise never
    /// repopulate.
    filter: AccessFilter,
    /// Engine-local intern table: the flat per-line state below is
    /// indexed by the dense id, so classification and registration
    /// bookkeeping do no hashing after a line's first touch.
    lines: LineTable,
    /// LLC-side classification (`None` = never touched).
    class: LineMap<Option<Class>>,
    /// Lines that have ever been written (drives the read-only
    /// classification when `arc_readonly_sharing` is on).
    written_ever: LineFlags,
    /// Per core: lines with registrations this region (cleared at the
    /// boundary).
    touched: Vec<LineSet>,
    registrations: Counter,
    recalls: Counter,
    self_invalidated: Counter,
    /// Shared lines retained across boundaries by the read-only
    /// optimization.
    ro_retained: Counter,
    flushed_words: Counter,
    private_spills: Counter,
}

impl ArcEngine {
    /// Build from configuration; the metadata placement comes from
    /// `cfg.meta_placement`.
    pub fn new(cfg: &MachineConfig) -> Self {
        ArcEngine {
            l1: (0..cfg.cores).map(|_| L1Cache::new(&cfg.l1)).collect(),
            meta: backend_for(cfg),
            detect: Detector::new(),
            filter: AccessFilter::new(cfg.cores),
            lines: LineTable::new(),
            class: LineMap::new(),
            written_ever: LineFlags::new(),
            touched: vec![LineSet::new(); cfg.cores],
            registrations: Counter::default(),
            recalls: Counter::default(),
            self_invalidated: Counter::default(),
            ro_retained: Counter::default(),
            flushed_words: Counter::default(),
            private_spills: Counter::default(),
        }
    }

    /// Register `mask` bits of `kind` for `core` at the line's
    /// metadata entry (already ensured), checking for conflicts first.
    /// Returns the exceptions plus one aligned provenance path per
    /// exception (all registrations, with the backend's AIM state from
    /// the `ensure` that preceded this call).
    fn aim_check_record(
        &mut self,
        sub: &Substrate,
        core: CoreId,
        line: LineAddr,
        mask: WordMask,
        kind: AccessType,
        at: Cycles,
    ) -> (Vec<ConflictException>, Vec<DetectPath>) {
        let region = sub.region_of(core);
        let me = ConflictSide { core, region, kind };
        let ex =
            self.detect
                .check_and_record(self.meta.entry_mut(line), me, mask, line, at, |c, r| {
                    sub.is_live(c, r)
                });
        let lid = self.lines.intern(line);
        self.touched[core.index()].insert(lid);
        let path = DetectPath {
            placement: self.meta.placement(),
            site: DetectSite::Registration,
            aim: self.meta.last_outcome(),
        };
        let paths = vec![path; ex.len()];
        (ex, paths)
    }

    /// Recall a private owner's in-flight state when a second core
    /// requests the line: dirty words flush to the LLC, current-region
    /// access bits merge into the metadata entry, and the owner's copy
    /// is reclassified shared. Returns when the recall completes.
    fn recall(
        &mut self,
        sub: &mut Substrate,
        owner: CoreId,
        line: LineAddr,
        t_at_bank: Cycles,
    ) -> Cycles {
        self.recalls.inc();
        // The recall clears the owner's dirty words and reclassifies
        // the copy: any armed coverage for the line is stale.
        self.filter.invalidate(owner, line);
        let lid = self.lines.intern(line);
        let bank = sub.bank_node(line);
        let owner_node = sub.core_node(owner);
        let probe = sub.noc.send(
            bank,
            owner_node,
            sub.cfg.noc.ctrl_bytes,
            MsgClass::Request,
            t_at_bank,
        );
        let mut reply = probe;
        let owner_region = sub.region_of(owner);
        // The owner's surviving copy gets the same classification a
        // fresh fill would: read-only if the line was never written.
        let ro_hint = sub.cfg.arc_readonly_sharing && !self.written_ever.contains(lid);
        if let Some(st) = self.l1[owner.index()].probe_mut(line) {
            st.shared = true;
            st.ro = ro_hint && st.written_words.is_empty() && st.dirty.is_empty();
            let dirty = st.dirty;
            st.dirty = WordMask::EMPTY;
            let read_words = st.read_words;
            let written_words = st.written_words;
            // Flush dirty words.
            if !dirty.is_empty() {
                self.flushed_words.add(dirty.count() as u64);
                let bytes = sub.cfg.noc.data_header_bytes + 8 * dirty.count() as u64;
                let wb = sub
                    .noc
                    .send(owner_node, bank, bytes, MsgClass::Writeback, probe);
                sub.llc_put(line, wb);
                reply = reply.max(wb);
            }
            if !written_words.is_empty() {
                self.written_ever.insert(lid);
            }
            // Merge the owner's current-region bits into the entry.
            if !read_words.is_empty() || !written_words.is_empty() {
                let meta_at = sub.noc.send(
                    owner_node,
                    bank,
                    sub.cfg.aim.entry_bytes,
                    MsgClass::Metadata,
                    probe,
                );
                reply = reply.max(meta_at);
                let entry = self.meta.entry_mut(line);
                if !read_words.is_empty() {
                    entry.record(owner, owner_region, AccessType::Read, read_words);
                }
                if !written_words.is_empty() {
                    entry.record(owner, owner_region, AccessType::Write, written_words);
                }
                self.touched[owner.index()].insert(lid);
            }
        } else {
            // Owner no longer caches it; its state already reached the
            // LLC/AIM on eviction. Just the probe/ack round trip.
            reply = sub.noc.send(
                owner_node,
                bank,
                sub.cfg.noc.ctrl_bytes,
                MsgClass::Response,
                probe,
            );
        }
        reply
    }

    /// Fill `line` into `core`'s L1, handling the victim: dirty-word
    /// writeback, private-line metadata spill to the metadata layer.
    fn fill_line(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        line: LineAddr,
        state: ArcLine,
        at: Cycles,
    ) {
        let me = sub.core_node(core);
        if let Some((victim, vstate)) = self.l1[core.index()].fill(line, state) {
            self.filter.invalidate(core, victim);
            sub.trace(EventClass::Cache, || SimEvent {
                cycle: at.0,
                core: Some(core.0),
                region: Some(sub.region_of(core).0),
                kind: EventKind::L1Evict {
                    line: victim.0,
                    dirty: !vstate.dirty.is_empty(),
                },
            });
            let vbank = sub.bank_node(victim);
            if !vstate.dirty.is_empty() {
                let bytes = sub.cfg.noc.data_header_bytes + 8 * vstate.dirty.count() as u64;
                let wb = sub.noc.send(me, vbank, bytes, MsgClass::Writeback, at);
                sub.llc_put(victim, wb);
            }
            // A private victim's current-region bits must stay visible
            // for conflict checks: spill them to the metadata layer.
            // (Shared victims registered eagerly; nothing to do.)
            let vid = self.lines.intern(victim);
            if !vstate.written_words.is_empty() {
                self.written_ever.insert(vid);
            }
            if !vstate.shared && (!vstate.read_words.is_empty() || !vstate.written_words.is_empty())
            {
                self.private_spills.inc();
                let t1 = sub
                    .noc
                    .send(me, vbank, sub.cfg.aim.entry_bytes, MsgClass::Metadata, at);
                let _ready = self.meta.ensure_at(sub, victim, t1);
                let region = sub.region_of(core);
                let entry = self.meta.entry_mut(victim);
                if !vstate.read_words.is_empty() {
                    entry.record(core, region, AccessType::Read, vstate.read_words);
                }
                if !vstate.written_words.is_empty() {
                    entry.record(core, region, AccessType::Write, vstate.written_words);
                }
                self.touched[core.index()].insert(vid);
            }
        }
    }

    /// Diagnostic invariants: no dirty shared words survive a
    /// boundary; classification is consistent with residency.
    pub fn check_invariants(&self, _sub: &Substrate) -> Result<(), String> {
        for (c, cache) in self.l1.iter().enumerate() {
            for (line, st) in cache.iter() {
                let cls = self
                    .lines
                    .lookup(line)
                    .and_then(|id| self.class.get(id))
                    .copied()
                    .flatten();
                match cls {
                    Some(Class::Private(owner)) => {
                        if owner.index() != c {
                            return Err(format!(
                                "core {c} caches {line} which is private to {owner}"
                            ));
                        }
                        if st.shared {
                            return Err(format!(
                                "core {c} marks {line} shared but LLC says private"
                            ));
                        }
                        if st.ro {
                            return Err(format!("core {c}: private {line} marked ro"));
                        }
                    }
                    Some(Class::Shared) => {
                        if !st.shared {
                            return Err(format!(
                                "core {c} marks {line} private but LLC says shared"
                            ));
                        }
                    }
                    None => {
                        return Err(format!("core {c} caches unclassified {line}"));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Engine for ArcEngine {
    fn access(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        addr: Addr,
        mask: WordMask,
        kind: AccessType,
        now: Cycles,
    ) -> RceResult<AccessResult> {
        let line = addr.line();
        let l1_lat = sub.cfg.l1.latency;
        let me = sub.core_node(core);
        let bank = sub.bank_node(line);

        // Metadata mask (may be widened to the whole line by the
        // granularity ablation); dirty tracking always uses the real
        // access words.
        let dmask = sub.cfg.detect_mask(mask);

        // L1 lookup.
        let hit = self.l1[core.index()].access(line).is_some();
        // Fast path: a covered repeat means the per-region masks,
        // dirty words, and written-ever flag are all already set and
        // `new_words` would be empty, so the slow hit path would do
        // nothing but charge the L1 latency.
        if hit && self.filter.hit(core, line, sub.region_of(core), kind, mask) {
            return Ok(AccessResult {
                done: Cycles(now.0 + l1_lat),
                exceptions: Vec::new(),
                paths: Vec::new(),
                fast: true,
            });
        }
        if hit {
            let (is_shared, new_words) = {
                let st = self.l1[core.index()].probe_mut(line).ok_or_else(|| {
                    RceError::InvariantViolated(format!("hit line vanished: {core} {line}"))
                })?;
                let new = match kind {
                    AccessType::Read => dmask.minus(st.read_words),
                    AccessType::Write => dmask.minus(st.written_words),
                };
                match kind {
                    AccessType::Read => st.read_words |= dmask,
                    AccessType::Write => {
                        st.written_words |= dmask;
                        st.dirty |= mask;
                        st.ro = false;
                    }
                }
                (st.shared, new)
            };
            if kind == AccessType::Write {
                let lid = self.lines.intern(line);
                self.written_ever.insert(lid);
            }
            let done = Cycles(now.0 + l1_lat);
            let mut exceptions = Vec::new();
            let mut paths = Vec::new();
            if is_shared && !new_words.is_empty() {
                // First touch of these words this region: register at
                // the AIM (asynchronously; the core does not stall).
                self.registrations.inc();
                let t1 = sub
                    .noc
                    .send(me, bank, sub.cfg.noc.ctrl_bytes, MsgClass::Metadata, now);
                let t2 = self.meta.ensure_at(sub, line, t1);
                (exceptions, paths) = self.aim_check_record(sub, core, line, new_words, kind, t2);
            }
            if exceptions.is_empty() {
                self.filter.arm(core, line, sub.region_of(core), kind, mask);
            }
            return Ok(AccessResult {
                done,
                exceptions,
                paths,
                fast: false,
            });
        }

        // Miss: request to the home bank.
        let t1 = sub.noc.send(
            me,
            bank,
            sub.cfg.noc.ctrl_bytes,
            MsgClass::Request,
            Cycles(now.0 + l1_lat),
        );
        sub.dir_access(); // classification lookup at the bank

        // Classification update.
        let lid = self.lines.intern(line);
        if kind == AccessType::Write {
            self.written_ever.insert(lid);
        }
        let cls = *self.class.slot(lid).get_or_insert(Class::Private(core));
        let mut t_ready = t1;
        let is_shared = match cls {
            Class::Private(owner) if owner != core => {
                // Second core: recall, reclassify shared.
                let t_aim = self.meta.ensure_at(sub, line, t1);
                let t_recall = self.recall(sub, owner, line, t1);
                *self.class.slot(lid) = Some(Class::Shared);
                t_ready = t_ready.max(t_aim).max(t_recall);
                true
            }
            Class::Private(_) => false,
            Class::Shared => {
                let t_aim = self.meta.ensure_at(sub, line, t1);
                t_ready = t_ready.max(t_aim);
                true
            }
        };
        // Read-only hint: shared + never written.
        let ro = is_shared && sub.cfg.arc_readonly_sharing && !self.written_ever.contains(lid);

        // Conflict check + registration for shared lines (the
        // registration rides the miss request).
        let mut exceptions = Vec::new();
        let mut paths = Vec::new();
        if is_shared {
            self.registrations.inc();
            (exceptions, paths) = self.aim_check_record(sub, core, line, dmask, kind, t_ready);
        }

        // Data from the LLC (DRAM beneath it if needed).
        let t_llc = sub.llc_data(line, t_ready);
        let t_data = sub.noc.send(
            bank,
            me,
            sub.cfg.noc.data_header_bytes + 64,
            MsgClass::Data,
            t_llc,
        );

        // Fill.
        let mut st = ArcLine {
            shared: is_shared,
            ro: ro && kind == AccessType::Read,
            dirty: WordMask::EMPTY,
            read_words: WordMask::EMPTY,
            written_words: WordMask::EMPTY,
        };
        match kind {
            AccessType::Read => st.read_words = dmask,
            AccessType::Write => {
                st.written_words = dmask;
                st.dirty = mask;
            }
        }
        self.fill_line(sub, core, line, st, t_data);

        if exceptions.is_empty() {
            self.filter.arm(core, line, sub.region_of(core), kind, mask);
        }
        Ok(AccessResult {
            done: Cycles(t_data.0 + l1_lat),
            exceptions,
            paths,
            fast: false,
        })
    }

    fn region_boundary(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        now: Cycles,
    ) -> RceResult<AccessResult> {
        let me = sub.core_node(core);
        let mut done = Cycles(now.0 + 10); // flash self-invalidate cost

        // 1. Flush dirty words of shared lines (release semantics) and
        //    collect the shared lines for self-invalidation.
        let flushes: Vec<(LineAddr, WordMask)> = self.l1[core.index()]
            .iter()
            .filter(|(_, st)| st.shared && !st.dirty.is_empty())
            .map(|(l, st)| (l, st.dirty))
            .collect();
        for (line, dirty) in &flushes {
            self.flushed_words.add(dirty.count() as u64);
            let bytes = sub.cfg.noc.data_header_bytes + 8 * dirty.count() as u64;
            let wb = sub
                .noc
                .send(me, sub.bank_node(*line), bytes, MsgClass::Writeback, now);
            let t = sub.llc_put(*line, wb);
            done = done.max(t);
            self.l1[core.index()]
                .probe_mut(*line)
                .ok_or_else(|| {
                    RceError::InvariantViolated(format!("flushed line vanished: {core} {line}"))
                })?
                .dirty = WordMask::EMPTY;
        }

        // 2. Clear registrations (one signature message per line;
        //    sorted by address for deterministic NoC contention, the
        //    same order the old HashSet drain produced).
        let mut lines: Vec<u64> = self.touched[core.index()]
            .take()
            .into_iter()
            .map(|id| self.lines.addr(id).0)
            .collect();
        lines.sort_unstable();
        for l in lines {
            let line = LineAddr(l);
            let t1 = sub.noc.send(
                me,
                sub.bank_node(line),
                sub.cfg.signature_bytes_per_line.max(1),
                MsgClass::Metadata,
                now,
            );
            let t = self.meta.boundary_clear(sub, line, core, t1);
            done = done.max(t);
        }

        // 3. Self-invalidate shared lines (read-only-classified lines
        //    are exempt when the extension is on — `ro` is only ever
        //    set in that mode); reset region masks on every surviving
        //    line.
        let dropped = self.l1[core.index()].drain_filter(|_, st| st.shared && !st.ro);
        self.self_invalidated.add(dropped.len() as u64);
        if !dropped.is_empty() {
            sub.trace(EventClass::SelfInv, || SimEvent {
                cycle: now.0,
                core: Some(core.0),
                region: Some(sub.region_of(core).0),
                kind: EventKind::SelfInvalidate {
                    lines: dropped.len() as u64,
                },
            });
        }
        debug_assert!(
            dropped.iter().all(|(_, st)| st.dirty.is_empty()),
            "shared dirty words must have been flushed"
        );
        for (_, st) in self.l1[core.index()].iter_mut() {
            if st.shared && st.ro {
                self.ro_retained.inc();
            }
            st.read_words = WordMask::EMPTY;
            st.written_words = WordMask::EMPTY;
        }

        Ok(AccessResult {
            done,
            exceptions: Vec::new(),
            paths: Vec::new(),
            fast: false,
        })
    }

    fn name(&self) -> &'static str {
        "ARC"
    }

    fn set_fastpath(&mut self, on: bool) {
        self.filter.set_enabled(on);
    }

    fn l1_totals(&self) -> (u64, u64, u64) {
        self.l1.iter().fold((0, 0, 0), |(h, m, e), c| {
            (h + c.hits.get(), m + c.misses.get(), e + c.evictions.get())
        })
    }

    fn aim_totals(&self) -> Option<(u64, u64, u64, u64)> {
        self.meta.totals()
    }

    fn extra_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("registrations", self.registrations.get()),
            ("recalls", self.recalls.get()),
            ("self_invalidated_lines", self.self_invalidated.get()),
            ("ro_retained_lines", self.ro_retained.get()),
            ("flushed_words", self.flushed_words.get()),
            ("private_spills", self.private_spills.get()),
            ("conflict_checks_hit", self.detect.conflicts()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::{MetaPlacement, ProtocolKind};

    fn setup(cores: usize) -> (ArcEngine, Substrate) {
        let cfg = MachineConfig::paper_default(cores, ProtocolKind::Arc);
        (ArcEngine::new(&cfg), Substrate::new(&cfg))
    }

    const R: AccessType = AccessType::Read;
    const W: AccessType = AccessType::Write;

    fn acc(
        e: &mut ArcEngine,
        s: &mut Substrate,
        core: u16,
        addr: u64,
        kind: AccessType,
        now: u64,
    ) -> AccessResult {
        e.access(
            s,
            CoreId(core),
            Addr(addr),
            WordMask::span(Addr(addr), 8),
            kind,
            Cycles(now),
        )
        .unwrap()
    }

    fn boundary(e: &mut ArcEngine, s: &mut Substrate, core: u16, now: u64) -> u64 {
        let b = e.region_boundary(s, CoreId(core), Cycles(now)).unwrap();
        s.advance_region(CoreId(core));
        b.done.0
    }

    #[test]
    fn private_lines_survive_boundaries() {
        let (mut e, mut s) = setup(2);
        let r = acc(&mut e, &mut s, 0, 0x1000, W, 0);
        let t = boundary(&mut e, &mut s, 0, r.done.0);
        // Still a hit: private data is exempt from self-invalidation.
        let r2 = acc(&mut e, &mut s, 0, 0x1000, R, t);
        assert_eq!(r2.done.0 - t, s.cfg.l1.latency);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn shared_lines_self_invalidate() {
        let (mut e, mut s) = setup(2);
        let a = acc(&mut e, &mut s, 0, 0x1000, R, 0);
        let b = acc(&mut e, &mut s, 1, 0x1000, R, a.done.0); // line becomes shared
        let t0 = boundary(&mut e, &mut s, 0, b.done.0);
        let r = acc(&mut e, &mut s, 0, 0x1000, R, t0);
        assert!(
            r.done.0 - t0 > s.cfg.l1.latency,
            "shared line must re-fetch after the boundary"
        );
        assert!(e.self_invalidated.get() >= 1);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn detects_write_write_conflict() {
        let (mut e, mut s) = setup(2);
        let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
        assert!(w.exceptions.is_empty());
        let w2 = acc(&mut e, &mut s, 1, 0x100, W, w.done.0);
        assert_eq!(w2.exceptions.len(), 1);
        assert!(w2.exceptions[0].involves_write());
        assert!(e.recalls.get() >= 1, "second toucher triggers a recall");
    }

    #[test]
    fn dram_placement_detects_like_aim() {
        // ARC registering against the off-chip table: same conflicts,
        // no AIM statistics, off-chip metadata traffic instead.
        let cfg = MachineConfig::paper_default(2, ProtocolKind::Arc)
            .with_meta_placement(MetaPlacement::Dram);
        let mut e = ArcEngine::new(&cfg);
        let mut s = Substrate::new(&cfg);
        let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
        assert!(w.exceptions.is_empty());
        let w2 = acc(&mut e, &mut s, 1, 0x100, W, w.done.0);
        assert_eq!(w2.exceptions.len(), 1);
        assert!(e.aim_totals().is_none(), "no AIM in the DRAM placement");
        assert!(
            s.dram.stats().metadata_bytes().0 > 0,
            "registrations pay the off-chip tax"
        );
    }

    #[test]
    fn detects_read_write_conflict_via_recall() {
        let (mut e, mut s) = setup(2);
        let r = acc(&mut e, &mut s, 0, 0x100, R, 0);
        let w = acc(&mut e, &mut s, 1, 0x100, W, r.done.0);
        assert_eq!(w.exceptions.len(), 1);
        assert_eq!(w.exceptions[0].a.kind, R);
    }

    #[test]
    fn boundary_ends_conflict_window() {
        let (mut e, mut s) = setup(2);
        let w = acc(&mut e, &mut s, 0, 0x100, W, 0);
        let t = boundary(&mut e, &mut s, 0, w.done.0);
        let w2 = acc(&mut e, &mut s, 1, 0x100, W, t);
        assert!(w2.exceptions.is_empty(), "regions were not concurrent");
    }

    #[test]
    fn word_granularity_false_sharing_ok() {
        let (mut e, mut s) = setup(2);
        let a = acc(&mut e, &mut s, 0, 0x100, W, 0);
        let b = acc(&mut e, &mut s, 1, 0x108, W, a.done.0);
        assert!(b.exceptions.is_empty());
    }

    #[test]
    fn hit_path_registration_detects_late_conflict() {
        let (mut e, mut s) = setup(2);
        // Make the line shared via reads.
        let a = acc(&mut e, &mut s, 0, 0x200, R, 0);
        let b = acc(&mut e, &mut s, 1, 0x200, R, a.done.0);
        // Core 0 hits (valid shared line) but writes a new word: the
        // registration must catch the conflict with core 1's read.
        let w = acc(&mut e, &mut s, 0, 0x200, W, b.done.0);
        assert_eq!(w.exceptions.len(), 1);
        assert_eq!(w.exceptions[0].key().1.kind, R);
    }

    #[test]
    fn dirty_words_flush_at_boundary() {
        let (mut e, mut s) = setup(2);
        let a = acc(&mut e, &mut s, 0, 0x300, R, 0);
        let b = acc(&mut e, &mut s, 1, 0x300, R, a.done.0);
        let w = acc(&mut e, &mut s, 0, 0x300, W, b.done.0);
        let before = e.flushed_words.get();
        boundary(&mut e, &mut s, 0, w.done.0);
        assert!(e.flushed_words.get() > before);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn no_invalidation_traffic_ever() {
        let (mut e, mut s) = setup(4);
        let mut t = 0;
        for i in 0..50u64 {
            let r = acc(&mut e, &mut s, (i % 4) as u16, 0x400 + (i % 8) * 8, W, t);
            t = r.done.0;
            if i % 7 == 0 {
                t = boundary(&mut e, &mut s, (i % 4) as u16, t);
            }
        }
        let s_noc = s.noc.stats();
        assert_eq!(
            s_noc.invalidation_bytes().0,
            0,
            "ARC must not send invalidations or acks"
        );
    }

    #[test]
    fn readonly_lines_survive_boundaries_when_enabled() {
        let mut cfg = MachineConfig::paper_default(2, ProtocolKind::Arc);
        cfg.arc_readonly_sharing = true;
        let mut e = ArcEngine::new(&cfg);
        let mut s = Substrate::new(&cfg);
        // Both cores read the line: shared, never written.
        let a = acc(&mut e, &mut s, 0, 0x1000, R, 0);
        let b = acc(&mut e, &mut s, 1, 0x1000, R, a.done.0);
        let t = boundary(&mut e, &mut s, 0, b.done.0);
        // Still a hit for core 0: read-only shared data is retained.
        let r = acc(&mut e, &mut s, 0, 0x1000, R, t);
        assert_eq!(r.done.0 - t, s.cfg.l1.latency, "retained ro line must hit");
        assert!(e.ro_retained.get() >= 1);
        e.check_invariants(&s).unwrap();
    }

    #[test]
    fn written_lines_are_not_readonly() {
        let mut cfg = MachineConfig::paper_default(2, ProtocolKind::Arc);
        cfg.arc_readonly_sharing = true;
        let mut e = ArcEngine::new(&cfg);
        let mut s = Substrate::new(&cfg);
        // Core 0 writes first: the line is written-ever, so core 1's
        // fill is not read-only and self-invalidates at its boundary.
        let w = acc(&mut e, &mut s, 0, 0x2000, W, 0);
        let r = acc(&mut e, &mut s, 1, 0x2000, R, w.done.0);
        let t = boundary(&mut e, &mut s, 1, r.done.0);
        let r2 = acc(&mut e, &mut s, 1, 0x2000, R, t);
        assert!(
            r2.done.0 - t > s.cfg.l1.latency,
            "written-ever shared data must still self-invalidate"
        );
    }

    #[test]
    fn readonly_retention_still_detects_conflicts() {
        // The stale-hint case: a retained ro line is later written by
        // another core; the retainer's next-region first read is a hit
        // but must still register and detect the conflict.
        let mut cfg = MachineConfig::paper_default(2, ProtocolKind::Arc);
        cfg.arc_readonly_sharing = true;
        let mut e = ArcEngine::new(&cfg);
        let mut s = Substrate::new(&cfg);
        let a = acc(&mut e, &mut s, 0, 0x3000, R, 0);
        let b = acc(&mut e, &mut s, 1, 0x3000, R, a.done.0);
        let t = boundary(&mut e, &mut s, 0, b.done.0);
        // Core 1 writes the word (conflicts with nothing: core 0's
        // old region ended... core 1's region is still its first).
        let t1 = boundary(&mut e, &mut s, 1, t);
        let w = acc(&mut e, &mut s, 1, 0x3000, W, t1);
        assert!(w.exceptions.is_empty(), "no live opposing bits yet");
        // Core 0's retained ro line: the hit-read must register and
        // catch the conflict with core 1's live write.
        let r = acc(&mut e, &mut s, 0, 0x3000, R, w.done.0);
        assert_eq!(r.exceptions.len(), 1, "stale ro hit must still detect");
        assert_eq!(r.exceptions[0].key().1.kind, W);
    }

    #[test]
    fn line_granularity_flags_false_sharing() {
        use rce_common::DetectionGranularity;
        let mut cfg = MachineConfig::paper_default(2, ProtocolKind::Arc);
        cfg.granularity = DetectionGranularity::Line;
        let mut e = ArcEngine::new(&cfg);
        let mut s = Substrate::new(&cfg);
        // Distinct words of one line: a false-sharing "conflict" that
        // word granularity ignores and line granularity reports.
        let a = acc(&mut e, &mut s, 0, 0x100, W, 0);
        let b = acc(&mut e, &mut s, 1, 0x108, W, a.done.0);
        assert!(a.exceptions.is_empty());
        assert!(!b.exceptions.is_empty(), "line granularity must flag this");
    }

    #[test]
    fn eviction_of_private_line_spills_metadata() {
        let (mut e, mut s) = setup(2);
        let base = 0x10_0000u64;
        let mut t = acc(&mut e, &mut s, 0, base, W, 0).done.0;
        for i in 1..=8u64 {
            t = acc(&mut e, &mut s, 0, base + i * 4096, R, t).done.0;
        }
        assert!(!e.l1[0].contains(Addr(base).line()));
        assert!(e.private_spills.get() >= 1);
        // The conflict is still caught.
        let w = acc(&mut e, &mut s, 1, base, W, t);
        assert_eq!(w.exceptions.len(), 1);
    }
}
