//! The golden region-conflict detector.
//!
//! The oracle observes the committed access stream in the exact order
//! the machine executes it and maintains, per core, the read/write
//! word sets of the core's *current* region. An access conflicts iff
//! it overlaps an opposing live set with at least one write — the
//! definitional semantics of region conflict exceptions. Every engine
//! must detect exactly the oracle's conflict set on the same schedule;
//! the differential tests enforce this.
//!
//! The oracle is infrastructure, not architecture: it charges no time.
//! Its storage, however, sits on the machine's hot loop (one observe
//! per committed word), so it uses the same interned flat tables as
//! the engines ([`LineTable`]/[`LineMap`]) with **epoch versioning**:
//! each core's read/write "sets" are dense per-word epoch stamps, a
//! word is live iff its stamp equals the core's current epoch, and a
//! region boundary is a single epoch bump — O(1), not O(words
//! touched), and never O(table). A second fast path falls out of the
//! same structure: if the observing core's own bit is already live,
//! every conflict identity this access could discover was already
//! inserted when the later of the two overlapping bits was set, so
//! the opponent scan is skipped entirely.

use crate::exception::{AccessType, ConflictException, ConflictSide};
use rce_common::{Addr, CoreId, Cycles, LineMap, LineTable, RegionId};
use std::collections::{HashMap, HashSet};

/// One core's live word sets, epoch-versioned. A word id is in the
/// read (written) set iff its stamp equals `epoch`; stamps start at 0
/// and `epoch` starts at 1, so a fresh slot is never live.
#[derive(Debug, Clone)]
struct CoreSets {
    region: RegionId,
    epoch: u64,
    read: LineMap<u64>,
    written: LineMap<u64>,
    read_live: usize,
    written_live: usize,
}

impl CoreSets {
    fn new(region: RegionId) -> Self {
        CoreSets {
            region,
            epoch: 1,
            read: LineMap::new(),
            written: LineMap::new(),
            read_live: 0,
            written_live: 0,
        }
    }
}

/// The shadow detector.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Interner over word-aligned addresses (not lines — the oracle
    /// tracks words; the table is just a dense id allocator).
    words: LineTable,
    cores: Vec<CoreSets>,
    conflicts: HashSet<ConflictException>,
}

impl Oracle {
    /// Build for `n` cores with their initial region IDs.
    pub fn new(initial_regions: &[RegionId]) -> Self {
        Oracle {
            words: LineTable::new(),
            cores: initial_regions.iter().map(|r| CoreSets::new(*r)).collect(),
            conflicts: HashSet::new(),
        }
    }

    /// Observe one committed word access. `word_addr` must be
    /// word-aligned. Returns conflicts newly discovered by this access.
    pub fn observe(
        &mut self,
        core: CoreId,
        word_addr: Addr,
        kind: AccessType,
        now: Cycles,
    ) -> Vec<ConflictException> {
        debug_assert_eq!(word_addr.0 % 8, 0, "oracle expects word-aligned addresses");
        let id = self.words.intern(rce_common::LineAddr(word_addr.0));

        // Fast path: this core already holds the same-kind bit live in
        // the current epoch. Every identity a repeat could discover
        // pairs this bit with a live opponent bit, and that identity
        // was inserted when the later of the two bits was first set —
        // so there is nothing new to find and nothing to record.
        {
            let me = &self.cores[core.index()];
            let stamp = match kind {
                AccessType::Read => me.read.get(id),
                AccessType::Write => me.written.get(id),
            };
            if stamp == Some(&me.epoch) {
                return Vec::new();
            }
        }

        let mut found = Vec::new();
        let me = ConflictSide {
            core,
            region: self.cores[core.index()].region,
            kind,
        };
        for (i, other) in self.cores.iter().enumerate() {
            if i == core.index() {
                continue;
            }
            // Set-intersection semantics: every overlapping kind pair
            // with at least one write is its own conflict identity
            // (see `MetaMap::check` for why both identities are
            // emitted when the opponent both read and wrote).
            let mut other_kinds = Vec::new();
            if other.written.get(id) == Some(&other.epoch) {
                other_kinds.push(AccessType::Write);
            }
            if kind == AccessType::Write && other.read.get(id) == Some(&other.epoch) {
                other_kinds.push(AccessType::Read);
            }
            for ok in other_kinds {
                let ex = ConflictException::new(
                    me,
                    ConflictSide {
                        core: CoreId(i as u16),
                        region: other.region,
                        kind: ok,
                    },
                    word_addr,
                    now,
                );
                if self.conflicts.insert(ex) {
                    found.push(ex);
                }
            }
        }
        let sets = &mut self.cores[core.index()];
        let epoch = sets.epoch;
        match kind {
            AccessType::Read => {
                *sets.read.slot(id) = epoch;
                sets.read_live += 1;
            }
            AccessType::Write => {
                *sets.written.slot(id) = epoch;
                sets.written_live += 1;
            }
        }
        found
    }

    /// The core's region ended; its sets clear (one epoch bump) and
    /// the new region begins.
    pub fn region_boundary(&mut self, core: CoreId, new_region: RegionId) {
        let sets = &mut self.cores[core.index()];
        sets.region = new_region;
        sets.epoch += 1;
        sets.read_live = 0;
        sets.written_live = 0;
    }

    /// All conflicts observed so far, sorted for deterministic
    /// comparison.
    pub fn conflicts(&self) -> Vec<ConflictException> {
        let mut v: Vec<_> = self.conflicts.iter().copied().collect();
        v.sort();
        v
    }

    /// Number of distinct conflicts.
    pub fn count(&self) -> usize {
        self.conflicts.len()
    }

    /// The set of conflict identities (for differential tests).
    pub fn keys(&self) -> HashSet<(ConflictSide, ConflictSide, Addr)> {
        self.conflicts.iter().map(|c| c.key()).collect()
    }

    /// Live word-set sizes per core (diagnostics).
    pub fn live_set_sizes(&self) -> HashMap<CoreId, (usize, usize)> {
        self.cores
            .iter()
            .enumerate()
            .map(|(i, s)| (CoreId(i as u16), (s.read_live, s.written_live)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(n: usize) -> Oracle {
        let regions: Vec<_> = (0..n as u64).map(RegionId).collect();
        Oracle::new(&regions)
    }

    const W: AccessType = AccessType::Write;
    const R: AccessType = AccessType::Read;

    #[test]
    fn write_write_conflict() {
        let mut o = oracle(2);
        assert!(o.observe(CoreId(0), Addr(8), W, Cycles(0)).is_empty());
        let c = o.observe(CoreId(1), Addr(8), W, Cycles(1));
        assert_eq!(c.len(), 1);
        assert!(c[0].involves_write());
        assert_eq!(o.count(), 1);
    }

    #[test]
    fn read_write_conflict_both_orders() {
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), R, Cycles(0));
        assert_eq!(o.observe(CoreId(1), Addr(8), W, Cycles(1)).len(), 1);

        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        assert_eq!(o.observe(CoreId(1), Addr(8), R, Cycles(1)).len(), 1);
    }

    #[test]
    fn read_read_no_conflict() {
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), R, Cycles(0));
        assert!(o.observe(CoreId(1), Addr(8), R, Cycles(1)).is_empty());
        assert_eq!(o.count(), 0);
    }

    #[test]
    fn region_boundary_clears() {
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        o.region_boundary(CoreId(0), RegionId(100));
        assert!(
            o.observe(CoreId(1), Addr(8), W, Cycles(1)).is_empty(),
            "regions no longer concurrent"
        );
    }

    #[test]
    fn duplicate_conflicts_dedup() {
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        assert_eq!(o.observe(CoreId(1), Addr(8), W, Cycles(1)).len(), 1);
        // Repeat in the same regions: same identity.
        assert!(o.observe(CoreId(1), Addr(8), W, Cycles(2)).is_empty());
        assert_eq!(o.count(), 1);
        // New region on core 1: new identity.
        o.region_boundary(CoreId(1), RegionId(50));
        assert_eq!(o.observe(CoreId(1), Addr(8), W, Cycles(3)).len(), 1);
        assert_eq!(o.count(), 2);
    }

    #[test]
    fn three_core_conflicts() {
        let mut o = oracle(3);
        o.observe(CoreId(0), Addr(16), W, Cycles(0));
        o.observe(CoreId(1), Addr(16), R, Cycles(1)); // conflict 0-1
        let c = o.observe(CoreId(2), Addr(16), W, Cycles(2)); // conflicts 2-0, 2-1
        assert_eq!(c.len(), 2);
        assert_eq!(o.count(), 3);
    }

    #[test]
    fn different_words_independent() {
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        assert!(o.observe(CoreId(1), Addr(16), W, Cycles(1)).is_empty());
    }

    #[test]
    fn write_then_read_same_core_then_remote_read() {
        // Core 0 writes then reads a word; core 1's read conflicts
        // with the *write* (the read side alone would be fine).
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        o.observe(CoreId(0), Addr(8), R, Cycles(1));
        let c = o.observe(CoreId(1), Addr(8), R, Cycles(2));
        assert_eq!(c.len(), 1);
        assert!(c[0].involves_write());
    }

    #[test]
    fn epoch_reuse_after_boundary_is_fresh() {
        // A word touched in an old region must read as dead after the
        // boundary even though its slot still holds the old stamp, and
        // re-touching it must make it live again (and repopulate the
        // live-set sizes).
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        o.observe(CoreId(0), Addr(16), R, Cycles(1));
        assert_eq!(o.live_set_sizes()[&CoreId(0)], (1, 1));
        o.region_boundary(CoreId(0), RegionId(100));
        assert_eq!(o.live_set_sizes()[&CoreId(0)], (0, 0));
        o.observe(CoreId(0), Addr(8), W, Cycles(2));
        assert_eq!(o.live_set_sizes()[&CoreId(0)], (0, 1));
        // The new-region write is live: a remote write now conflicts.
        assert_eq!(o.observe(CoreId(1), Addr(8), W, Cycles(3)).len(), 1);
    }

    #[test]
    fn repeat_observe_is_a_fast_path_noop() {
        // The same core re-observing a live same-kind bit must change
        // nothing — not the conflict set, not the live sizes.
        let mut o = oracle(2);
        o.observe(CoreId(0), Addr(8), W, Cycles(0));
        for t in 1..5 {
            assert!(o.observe(CoreId(0), Addr(8), W, Cycles(t)).is_empty());
        }
        assert_eq!(o.live_set_sizes()[&CoreId(0)], (0, 1));
        assert_eq!(o.count(), 0);
    }
}
