//! Simulation reports and cross-design normalization.

use crate::exception::ConflictException;
use rce_common::{impl_json_struct, Bytes, Cycles, PicoJoules, ProtocolKind};
use rce_dram::DramStats;
use rce_energy::EnergyBreakdown;
use rce_noc::NocStats;

/// Per-core execution summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// The core's local clock when its thread finished.
    pub finish: Cycles,
    /// Memory operations the core committed.
    pub mem_ops: u64,
    /// Synchronization operations the core executed.
    pub sync_ops: u64,
}

impl_json_struct!(CoreStats {
    finish,
    mem_ops,
    sync_ops,
});

/// AIM summary for designs that have one.
#[derive(Debug, Clone, Copy)]
pub struct AimSummary {
    /// Total lookups.
    pub accesses: u64,
    /// Resident hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Entries spilled to DRAM.
    pub spills: u64,
}

impl AimSummary {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

impl_json_struct!(AimSummary {
    accesses,
    hits,
    misses,
    spills,
});

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated design.
    pub protocol: ProtocolKind,
    /// Workload name.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Execution time (cycles until the last core finished).
    pub cycles: Cycles,
    /// Committed memory operations.
    pub mem_ops: u64,
    /// Synchronization operations executed.
    pub sync_ops: u64,
    /// Region boundaries processed.
    pub regions: u64,
    /// L1 hits (all cores).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L1 capacity evictions.
    pub l1_evictions: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Network statistics.
    pub noc: NocStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// AIM summary (CE+ and ARC).
    pub aim: Option<AimSummary>,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Engine-specific counters.
    pub engine_counters: Vec<(String, u64)>,
    /// Distribution of memory-access latencies (cycles from issue to
    /// completion, including queueing).
    pub access_latency: rce_common::Histogram,
    /// Distribution of region lengths (memory ops per region,
    /// non-empty regions only).
    pub region_len: rce_common::Histogram,
    /// Distribution of region-boundary costs (cycles spent in
    /// flush/scrub/self-invalidate work).
    pub boundary_cost: rce_common::Histogram,
    /// Per-core finish time and committed memory operations (load
    /// imbalance diagnostics).
    pub per_core: Vec<CoreStats>,
    /// Deduplicated conflict exceptions the engine delivered.
    pub exceptions: Vec<ConflictException>,
    /// Ground-truth conflicts from the oracle on the same schedule.
    pub oracle_conflicts: Vec<ConflictException>,
    /// True if the run stopped at the first exception
    /// (`ExceptionPolicy::AbortOnFirst`).
    pub aborted: bool,
}

impl_json_struct!(SimReport {
    protocol,
    workload,
    cores,
    cycles,
    mem_ops,
    sync_ops,
    regions,
    l1_hits,
    l1_misses,
    l1_evictions,
    llc_hits,
    llc_misses,
    noc,
    dram,
    aim,
    energy,
    engine_counters,
    access_latency,
    region_len,
    boundary_cost,
    per_core,
    exceptions,
    oracle_conflicts,
    aborted,
});

impl SimReport {
    /// Total on-chip traffic.
    pub fn noc_bytes(&self) -> Bytes {
        self.noc.total_bytes()
    }

    /// Total off-chip traffic.
    pub fn dram_bytes(&self) -> Bytes {
        self.dram.total_bytes()
    }

    /// Total energy.
    pub fn energy_total(&self) -> PicoJoules {
        self.energy.total()
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        let t = self.l1_hits + self.l1_misses;
        if t == 0 {
            0.0
        } else {
            self.l1_misses as f64 / t as f64
        }
    }

    /// Load imbalance: slowest core finish / mean finish (1.0 =
    /// perfectly balanced). Returns 1.0 when per-core data is absent.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_core.is_empty() {
            return 1.0;
        }
        let finishes: Vec<f64> = self.per_core.iter().map(|c| c.finish.0 as f64).collect();
        let max = finishes.iter().cloned().fold(0.0f64, f64::max);
        let mean = finishes.iter().sum::<f64>() / finishes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// True if the engine's exception set matches the oracle's
    /// (identity comparison; detection times may differ).
    pub fn matches_oracle(&self) -> bool {
        use std::collections::HashSet;
        let e: HashSet<_> = self.exceptions.iter().map(|x| x.key()).collect();
        let o: HashSet<_> = self.oracle_conflicts.iter().map(|x| x.key()).collect();
        e == o
    }

    /// Normalize the headline metrics to a baseline run (same
    /// workload, same cores, MESI).
    pub fn normalized_to(&self, base: &SimReport) -> NormalizedRow {
        fn ratio(a: f64, b: f64) -> f64 {
            if b == 0.0 {
                if a == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                a / b
            }
        }
        NormalizedRow {
            protocol: self.protocol,
            workload: self.workload.clone(),
            cores: self.cores,
            runtime: ratio(self.cycles.0 as f64, base.cycles.0 as f64),
            energy: ratio(self.energy_total().0, base.energy_total().0),
            noc_traffic: ratio(self.noc_bytes().as_f64(), base.noc_bytes().as_f64()),
            dram_traffic: ratio(self.dram_bytes().as_f64(), base.dram_bytes().as_f64()),
        }
    }
}

/// One figure row: metrics relative to the MESI baseline.
#[derive(Debug, Clone)]
pub struct NormalizedRow {
    /// Design.
    pub protocol: ProtocolKind,
    /// Workload.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Run time / baseline run time.
    pub runtime: f64,
    /// Energy / baseline energy.
    pub energy: f64,
    /// NoC bytes / baseline NoC bytes.
    pub noc_traffic: f64,
    /// DRAM bytes / baseline DRAM bytes.
    pub dram_traffic: f64,
}

impl_json_struct!(NormalizedRow {
    protocol,
    workload,
    cores,
    runtime,
    energy,
    noc_traffic,
    dram_traffic,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(protocol: ProtocolKind, cycles: u64) -> SimReport {
        SimReport {
            protocol,
            workload: "w".into(),
            cores: 4,
            cycles: Cycles(cycles),
            mem_ops: 10,
            sync_ops: 2,
            regions: 3,
            l1_hits: 8,
            l1_misses: 2,
            l1_evictions: 0,
            llc_hits: 1,
            llc_misses: 1,
            noc: NocStats::default(),
            dram: DramStats::default(),
            aim: None,
            energy: EnergyBreakdown::default(),
            engine_counters: vec![],
            access_latency: rce_common::Histogram::new(),
            region_len: rce_common::Histogram::new(),
            boundary_cost: rce_common::Histogram::new(),
            per_core: vec![],
            exceptions: vec![],
            oracle_conflicts: vec![],
            aborted: false,
        }
    }

    #[test]
    fn normalization_ratios() {
        let base = dummy(ProtocolKind::MesiBaseline, 100);
        let ce = dummy(ProtocolKind::Ce, 150);
        let row = ce.normalized_to(&base);
        assert!((row.runtime - 1.5).abs() < 1e-12);
        // Zero-over-zero traffic normalizes to 1.
        assert_eq!(row.noc_traffic, 1.0);
        assert_eq!(row.dram_traffic, 1.0);
    }

    #[test]
    fn l1_miss_rate() {
        let r = dummy(ProtocolKind::MesiBaseline, 1);
        assert!((r.l1_miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn oracle_match_on_empty() {
        let r = dummy(ProtocolKind::Ce, 1);
        assert!(r.matches_oracle());
    }

    #[test]
    fn aim_summary_hit_rate() {
        let a = AimSummary {
            accesses: 10,
            hits: 8,
            misses: 2,
            spills: 1,
        };
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
        let z = AimSummary {
            accesses: 0,
            hits: 0,
            misses: 0,
            spills: 0,
        };
        assert_eq!(z.hit_rate(), 0.0);
    }
}
