//! Simulation reports and cross-design normalization.

use crate::exception::ConflictException;
use crate::forensics::ForensicsReport;
use rce_common::json::{FromJson, JsonValue, ToJson};
use rce_common::obs::{MetricsTimeline, TraceLog};
use rce_common::{impl_json_struct, Bytes, Cycles, PicoJoules, ProtocolKind};
use rce_dram::DramStats;
use rce_energy::EnergyBreakdown;
use rce_noc::NocStats;

/// Per-core execution summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// The core's local clock when its thread finished.
    pub finish: Cycles,
    /// Memory operations the core committed.
    pub mem_ops: u64,
    /// Synchronization operations the core executed.
    pub sync_ops: u64,
}

impl_json_struct!(CoreStats {
    finish,
    mem_ops,
    sync_ops,
});

/// AIM summary for designs that have one.
#[derive(Debug, Clone, Copy)]
pub struct AimSummary {
    /// Total lookups.
    pub accesses: u64,
    /// Resident hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Entries spilled to DRAM.
    pub spills: u64,
}

impl AimSummary {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

impl_json_struct!(AimSummary {
    accesses,
    hits,
    misses,
    spills,
});

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated design.
    pub protocol: ProtocolKind,
    /// Workload name.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Execution time (cycles until the last core finished).
    pub cycles: Cycles,
    /// Committed memory operations.
    pub mem_ops: u64,
    /// Synchronization operations executed.
    pub sync_ops: u64,
    /// Region boundaries processed.
    pub regions: u64,
    /// L1 hits (all cores).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L1 capacity evictions.
    pub l1_evictions: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Network statistics.
    pub noc: NocStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// AIM summary (CE+ and ARC).
    pub aim: Option<AimSummary>,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Engine-specific counters.
    pub engine_counters: Vec<(String, u64)>,
    /// Distribution of memory-access latencies (cycles from issue to
    /// completion, including queueing).
    pub access_latency: rce_common::Histogram,
    /// Distribution of region lengths (memory ops per region,
    /// non-empty regions only).
    pub region_len: rce_common::Histogram,
    /// Distribution of region-boundary costs (cycles spent in
    /// flush/scrub/self-invalidate work).
    pub boundary_cost: rce_common::Histogram,
    /// Per-core finish time and committed memory operations (load
    /// imbalance diagnostics).
    pub per_core: Vec<CoreStats>,
    /// Deduplicated conflict exceptions the engine delivered.
    pub exceptions: Vec<ConflictException>,
    /// Ground-truth conflicts from the oracle on the same schedule.
    pub oracle_conflicts: Vec<ConflictException>,
    /// True if the run stopped at the first exception
    /// (`ExceptionPolicy::AbortOnFirst`).
    pub aborted: bool,
    /// Interval metrics timeline (observability runs only).
    pub timeline: Option<MetricsTimeline>,
    /// Event trace (observability runs only).
    pub trace: Option<TraceLog>,
    /// Conflict provenance: heatmaps, lifetimes, and per-exception
    /// root-cause records (forensics runs only).
    pub forensics: Option<ForensicsReport>,
}

// Hand-written (not `impl_json_struct!`) for one reason: the
// observability fields must be *omitted* — not `null` — when absent,
// so a report produced with observability off serializes byte-for-byte
// the same as before the fields existed.
impl ToJson for SimReport {
    fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("protocol".to_string(), self.protocol.to_json()),
            ("workload".to_string(), self.workload.to_json()),
            ("cores".to_string(), self.cores.to_json()),
            ("cycles".to_string(), self.cycles.to_json()),
            ("mem_ops".to_string(), self.mem_ops.to_json()),
            ("sync_ops".to_string(), self.sync_ops.to_json()),
            ("regions".to_string(), self.regions.to_json()),
            ("l1_hits".to_string(), self.l1_hits.to_json()),
            ("l1_misses".to_string(), self.l1_misses.to_json()),
            ("l1_evictions".to_string(), self.l1_evictions.to_json()),
            ("llc_hits".to_string(), self.llc_hits.to_json()),
            ("llc_misses".to_string(), self.llc_misses.to_json()),
            ("noc".to_string(), self.noc.to_json()),
            ("dram".to_string(), self.dram.to_json()),
            ("aim".to_string(), self.aim.to_json()),
            ("energy".to_string(), self.energy.to_json()),
            (
                "engine_counters".to_string(),
                self.engine_counters.to_json(),
            ),
            ("access_latency".to_string(), self.access_latency.to_json()),
            ("region_len".to_string(), self.region_len.to_json()),
            ("boundary_cost".to_string(), self.boundary_cost.to_json()),
            ("per_core".to_string(), self.per_core.to_json()),
            ("exceptions".to_string(), self.exceptions.to_json()),
            (
                "oracle_conflicts".to_string(),
                self.oracle_conflicts.to_json(),
            ),
            ("aborted".to_string(), self.aborted.to_json()),
        ];
        if let Some(t) = &self.timeline {
            fields.push(("timeline".to_string(), t.to_json()));
        }
        if let Some(t) = &self.trace {
            fields.push(("trace".to_string(), t.to_json()));
        }
        if let Some(f) = &self.forensics {
            fields.push(("forensics".to_string(), f.to_json()));
        }
        JsonValue::Object(fields)
    }
}

impl FromJson for SimReport {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        fn opt<T: FromJson>(v: &JsonValue, key: &str) -> Result<Option<T>, String> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => Ok(Some(T::from_json(x)?)),
            }
        }
        Ok(SimReport {
            protocol: FromJson::from_json(v.field("protocol")?)?,
            workload: FromJson::from_json(v.field("workload")?)?,
            cores: FromJson::from_json(v.field("cores")?)?,
            cycles: FromJson::from_json(v.field("cycles")?)?,
            mem_ops: FromJson::from_json(v.field("mem_ops")?)?,
            sync_ops: FromJson::from_json(v.field("sync_ops")?)?,
            regions: FromJson::from_json(v.field("regions")?)?,
            l1_hits: FromJson::from_json(v.field("l1_hits")?)?,
            l1_misses: FromJson::from_json(v.field("l1_misses")?)?,
            l1_evictions: FromJson::from_json(v.field("l1_evictions")?)?,
            llc_hits: FromJson::from_json(v.field("llc_hits")?)?,
            llc_misses: FromJson::from_json(v.field("llc_misses")?)?,
            noc: FromJson::from_json(v.field("noc")?)?,
            dram: FromJson::from_json(v.field("dram")?)?,
            aim: FromJson::from_json(v.field("aim")?)?,
            energy: FromJson::from_json(v.field("energy")?)?,
            engine_counters: FromJson::from_json(v.field("engine_counters")?)?,
            access_latency: FromJson::from_json(v.field("access_latency")?)?,
            region_len: FromJson::from_json(v.field("region_len")?)?,
            boundary_cost: FromJson::from_json(v.field("boundary_cost")?)?,
            per_core: FromJson::from_json(v.field("per_core")?)?,
            exceptions: FromJson::from_json(v.field("exceptions")?)?,
            oracle_conflicts: FromJson::from_json(v.field("oracle_conflicts")?)?,
            aborted: FromJson::from_json(v.field("aborted")?)?,
            timeline: opt(v, "timeline")?,
            trace: opt(v, "trace")?,
            forensics: opt(v, "forensics")?,
        })
    }
}

impl SimReport {
    /// Total on-chip traffic.
    pub fn noc_bytes(&self) -> Bytes {
        self.noc.total_bytes()
    }

    /// Total off-chip traffic.
    pub fn dram_bytes(&self) -> Bytes {
        self.dram.total_bytes()
    }

    /// Total energy.
    pub fn energy_total(&self) -> PicoJoules {
        self.energy.total()
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        let t = self.l1_hits + self.l1_misses;
        if t == 0 {
            0.0
        } else {
            self.l1_misses as f64 / t as f64
        }
    }

    /// Load imbalance: slowest core finish / mean finish (1.0 =
    /// perfectly balanced). Returns 1.0 when per-core data is absent.
    pub fn load_imbalance(&self) -> f64 {
        if self.per_core.is_empty() {
            return 1.0;
        }
        let finishes: Vec<f64> = self.per_core.iter().map(|c| c.finish.0 as f64).collect();
        let max = finishes.iter().cloned().fold(0.0f64, f64::max);
        let mean = finishes.iter().sum::<f64>() / finishes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// True if the engine's exception set matches the oracle's
    /// (identity comparison; detection times may differ).
    pub fn matches_oracle(&self) -> bool {
        use std::collections::HashSet;
        let e: HashSet<_> = self.exceptions.iter().map(|x| x.key()).collect();
        let o: HashSet<_> = self.oracle_conflicts.iter().map(|x| x.key()).collect();
        e == o
    }

    /// Normalize the headline metrics to a baseline run (same
    /// workload, same cores, MESI).
    pub fn normalized_to(&self, base: &SimReport) -> NormalizedRow {
        fn ratio(a: f64, b: f64) -> f64 {
            if b == 0.0 {
                if a == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                a / b
            }
        }
        NormalizedRow {
            protocol: self.protocol,
            workload: self.workload.clone(),
            cores: self.cores,
            runtime: ratio(self.cycles.0 as f64, base.cycles.0 as f64),
            energy: ratio(self.energy_total().0, base.energy_total().0),
            noc_traffic: ratio(self.noc_bytes().as_f64(), base.noc_bytes().as_f64()),
            dram_traffic: ratio(self.dram_bytes().as_f64(), base.dram_bytes().as_f64()),
        }
    }
}

/// One figure row: metrics relative to the MESI baseline.
#[derive(Debug, Clone)]
pub struct NormalizedRow {
    /// Design.
    pub protocol: ProtocolKind,
    /// Workload.
    pub workload: String,
    /// Core count.
    pub cores: usize,
    /// Run time / baseline run time.
    pub runtime: f64,
    /// Energy / baseline energy.
    pub energy: f64,
    /// NoC bytes / baseline NoC bytes.
    pub noc_traffic: f64,
    /// DRAM bytes / baseline DRAM bytes.
    pub dram_traffic: f64,
}

impl_json_struct!(NormalizedRow {
    protocol,
    workload,
    cores,
    runtime,
    energy,
    noc_traffic,
    dram_traffic,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(protocol: ProtocolKind, cycles: u64) -> SimReport {
        SimReport {
            protocol,
            workload: "w".into(),
            cores: 4,
            cycles: Cycles(cycles),
            mem_ops: 10,
            sync_ops: 2,
            regions: 3,
            l1_hits: 8,
            l1_misses: 2,
            l1_evictions: 0,
            llc_hits: 1,
            llc_misses: 1,
            noc: NocStats::default(),
            dram: DramStats::default(),
            aim: None,
            energy: EnergyBreakdown::default(),
            engine_counters: vec![],
            access_latency: rce_common::Histogram::new(),
            region_len: rce_common::Histogram::new(),
            boundary_cost: rce_common::Histogram::new(),
            per_core: vec![],
            exceptions: vec![],
            oracle_conflicts: vec![],
            aborted: false,
            timeline: None,
            trace: None,
            forensics: None,
        }
    }

    #[test]
    fn obs_fields_roundtrip_and_are_omitted_when_absent() {
        let plain = dummy(ProtocolKind::Ce, 10);
        let j = rce_common::json::to_string(&plain);
        assert!(!j.contains("\"timeline\""));
        assert!(!j.contains("\"trace\""));
        assert!(!j.contains("\"forensics\""));
        let back: SimReport = rce_common::json::from_str(&j).unwrap();
        assert!(back.timeline.is_none() && back.trace.is_none());

        let mut obs = dummy(ProtocolKind::Ce, 10);
        obs.timeline = Some(MetricsTimeline {
            interval: 8,
            samples: vec![],
        });
        obs.trace = Some(TraceLog {
            capacity: 4,
            emitted: 9,
            drops: 5,
            events: vec![],
        });
        let j2 = rce_common::json::to_string(&obs);
        let back: SimReport = rce_common::json::from_str(&j2).unwrap();
        assert_eq!(back.timeline.unwrap().interval, 8);
        assert_eq!(back.trace.unwrap().drops, 5);
    }

    #[test]
    fn normalization_ratios() {
        let base = dummy(ProtocolKind::MesiBaseline, 100);
        let ce = dummy(ProtocolKind::Ce, 150);
        let row = ce.normalized_to(&base);
        assert!((row.runtime - 1.5).abs() < 1e-12);
        // Zero-over-zero traffic normalizes to 1.
        assert_eq!(row.noc_traffic, 1.0);
        assert_eq!(row.dram_traffic, 1.0);
    }

    #[test]
    fn l1_miss_rate() {
        let r = dummy(ProtocolKind::MesiBaseline, 1);
        assert!((r.l1_miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn oracle_match_on_empty() {
        let r = dummy(ProtocolKind::Ce, 1);
        assert!(r.matches_oracle());
    }

    #[test]
    fn aim_summary_hit_rate() {
        let a = AimSummary {
            accesses: 10,
            hits: 8,
            misses: 2,
            spills: 1,
        };
        assert!((a.hit_rate() - 0.8).abs() < 1e-12);
        let z = AimSummary {
            accesses: 0,
            hits: 0,
            misses: 0,
            spills: 0,
        };
        assert_eq!(z.hit_rate(), 0.0);
    }
}
