//! The machine driver: runs a program through an engine.
//!
//! Cores execute their thread's operations in a deterministic
//! event-driven interleaving: at every step the runnable core with the
//! smallest local clock (ties broken by core ID) commits its next
//! operation. Memory operations go through the engine (which charges
//! NoC/LLC/DRAM time and may raise exceptions); synchronization
//! operations first end the core's region (engine boundary work +
//! region-clock advance + oracle clear) and then go through the
//! functional lock/barrier managers. The oracle observes the identical
//! committed stream, giving ground truth for differential testing.

use crate::exception::{AccessType, ConflictException, ExceptionPolicy};
use crate::forensics::Forensics;
use crate::oracle::Oracle;
use crate::protocol::{Engine, Substrate};
use crate::report::{AimSummary, SimReport};
use crate::sched::ReadyQueue;
use crate::sync::{AcquireOutcome, BarrierManager, BarrierOutcome, LockManager};
use rce_common::obs::{
    shared_tracer, EventClass, EventKind, GaugeSnapshot, MetricsSampler, ObsConfig, SimEvent,
    TraceConfig, Tracer,
};
use rce_common::{BarrierId, CoreId, Cycles, LockId, MachineConfig, RceError, RceResult, WordMask};
use rce_energy::{EnergyModel, EventCounts};
use rce_trace::{Op, Program};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Per-core execution status. Blocked states carry the object the core
/// is waiting on, so a deadlock report can name it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    BlockedLock(LockId),
    BlockedBarrier(BarrierId),
    Done,
}

/// Describe a deadlock: every live core, what it waits on, and who is
/// in the way. The prefix is stable (tests and callers match on it);
/// the per-core detail follows.
fn deadlock_error(status: &[Status], locks: &LockManager, barriers: &BarrierManager) -> RceError {
    let mut msg = String::from("all live cores are blocked (deadlock)");
    for (i, s) in status.iter().enumerate() {
        match s {
            Status::BlockedLock(l) => {
                let _ = match locks.holder(*l) {
                    Some(h) => write!(msg, "; c{i} waits on {l} held by {h}"),
                    None => write!(msg, "; c{i} waits on {l} (unheld)"),
                };
            }
            Status::BlockedBarrier(b) => {
                let _ = write!(
                    msg,
                    "; c{i} waits at {b} ({} of {} cores arrived)",
                    barriers.waiting(*b),
                    status.len()
                );
            }
            Status::Ready | Status::Done => {}
        }
    }
    RceError::DriverProtocol(msg)
}

/// Scheduler steps allowed per program operation before the driver
/// declares a livelock.
///
/// Every committed operation takes one step, but blocked cores and the
/// per-thread final-region boundaries also consume steps, so the
/// budget must be a comfortable multiple of the op count. Eight covers
/// the worst legal interleaving (every core re-examined between each
/// commit) with a wide margin while still catching a scheduler that
/// stops making progress.
pub const STEP_LIMIT_FACTOR: u64 = 8;

/// Flat step allowance added on top of the per-op budget so that tiny
/// programs (few ops, many cores) still get room for boundary and
/// wake-up bookkeeping.
pub const STEP_LIMIT_BASE: u64 = 100_000;

/// The default scheduler-step budget for a program:
/// `(total_ops + 1) * STEP_LIMIT_FACTOR + STEP_LIMIT_BASE`.
pub fn default_step_limit(total_ops: u64) -> u64 {
    (total_ops + 1) * STEP_LIMIT_FACTOR + STEP_LIMIT_BASE
}

/// The simulator.
pub struct Machine {
    cfg: MachineConfig,
    energy_model: EnergyModel,
    step_limit: Option<u64>,
    obs: ObsConfig,
    /// Explicit fast-path override for the engine's access filter
    /// (`None` = engine default: on unless `RCE_DISABLE_FASTPATH` is
    /// set). Reports are byte-identical either way.
    fastpath: Option<bool>,
}

/// Read every cumulative gauge the interval sampler differences.
fn gauges(sub: &Substrate, engine: &dyn Engine, exceptions: u64) -> GaugeSnapshot {
    let noc = sub.noc.stats();
    let dram = sub.dram.stats();
    let (aim_hits, aim_misses) = engine
        .aim_totals()
        .map(|(_, h, m, _)| (h, m))
        .unwrap_or((0, 0));
    let (_, llc_misses, _) = sub.llc.gauges();
    let (_, _, l1_evictions) = engine.l1_totals();
    GaugeSnapshot {
        noc_msgs: noc.total_msgs(),
        noc_bytes: noc.total_bytes().0,
        noc_queue_delay: noc.total_queue_delay.get(),
        link_busy: sub.noc.link_busy_cycles(),
        dram_accesses: dram.total_accesses(),
        dram_bytes: dram.total_bytes().0,
        dram_queue_delay: dram.total_queue_delay.get(),
        aim_hits,
        aim_misses,
        llc_misses,
        l1_evictions,
        exceptions,
    }
}

impl Machine {
    /// Build for a validated configuration.
    pub fn new(cfg: &MachineConfig) -> RceResult<Self> {
        cfg.validate().map_err(RceError::InvalidConfig)?;
        Ok(Machine {
            cfg: cfg.clone(),
            energy_model: EnergyModel::default(),
            step_limit: None,
            obs: ObsConfig::default(),
            fastpath: None,
        })
    }

    /// Force the engine's fast-path access filter on or off for
    /// subsequent runs, overriding the `RCE_DISABLE_FASTPATH`
    /// environment default. The equivalence property tests run every
    /// workload both ways and require byte-identical reports.
    pub fn with_fastpath(mut self, on: bool) -> Self {
        self.fastpath = Some(on);
        self
    }

    /// Enable observability (event tracing and/or interval metrics)
    /// for subsequent runs. The default is fully off, and off-mode
    /// reports are byte-identical to builds without the subsystem.
    pub fn with_observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Override the energy model.
    pub fn with_energy_model(mut self, m: EnergyModel) -> Self {
        self.energy_model = m;
        self
    }

    /// Override the scheduler-step budget (default:
    /// [`default_step_limit`] of the program's op count). Mostly for
    /// tests that want a livelock to trip quickly.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = Some(limit);
        self
    }

    /// Run with the default count-and-continue policy.
    pub fn run(&self, program: &Program) -> RceResult<SimReport> {
        self.run_with_policy(program, ExceptionPolicy::CountAndContinue)
    }

    /// Run under an explicit exception policy.
    pub fn run_with_policy(
        &self,
        program: &Program,
        policy: ExceptionPolicy,
    ) -> RceResult<SimReport> {
        rce_trace::validate(program)?;
        if program.n_threads() != self.cfg.cores {
            return Err(RceError::MalformedProgram(format!(
                "program has {} threads but the machine has {} cores",
                program.n_threads(),
                self.cfg.cores
            )));
        }

        let mut engine = crate::engine_for(&self.cfg);
        if let Some(on) = self.fastpath {
            engine.set_fastpath(on);
        }
        let mut sub = Substrate::new(&self.cfg);
        let mut oracle = Oracle::new(&sub.regions);
        let mut locks = LockManager::new(program.n_locks);
        let mut barriers = BarrierManager::new(self.cfg.cores, program.n_barriers);

        let n = self.cfg.cores;
        let mut cursor = vec![0usize; n];
        let mut clock = vec![Cycles::ZERO; n];
        let mut status = vec![Status::Ready; n];
        // Index-min scheduler: every Ready core has exactly one queued
        // entry carrying its current clock. Pop order — smallest clock,
        // lowest core ID on ties — matches the old linear scan exactly
        // (pinned by `sched::tests` and the golden gate) in O(log n).
        let mut ready = ReadyQueue::with_capacity(n);
        for c in 0..n {
            ready.push(Cycles::ZERO, c);
        }

        let mut mem_ops = 0u64;
        let mut sync_ops = 0u64;
        let mut regions = 0u64;
        let mut access_latency = rce_common::Histogram::new();
        let mut region_len = rce_common::Histogram::new();
        let mut boundary_cost = rce_common::Histogram::new();
        // Memory ops committed in each core's current region.
        let mut region_ops = vec![0u64; n];
        let mut per_core = vec![crate::report::CoreStats::default(); n];
        let mut exceptions: Vec<ConflictException> = Vec::new();
        let mut seen = HashSet::new();
        let mut aborted = false;
        // Observability: explicit config wins; otherwise the legacy
        // RCE_TRACE_WORD=<word-index> env var acts as a filter alias
        // (echoing accesses to that word, as the old eprintln did).
        let mut obs = self.obs.clone();
        if obs.trace.is_none() {
            if let Some(w) = std::env::var("RCE_TRACE_WORD")
                .ok()
                .and_then(|w| w.parse().ok())
            {
                obs.trace = Some(TraceConfig::word_alias(w));
            }
        }
        let trace_requested = obs.trace.is_some();
        let mut tracer = obs.trace.map(|tc| shared_tracer(Tracer::new(tc)));
        if tracer.is_none() && obs.forensics.is_some() {
            // Forensics wants recent-event windows even when the user
            // did not ask for a trace: run an internal ring that is
            // never exported in the report.
            tracer = Some(shared_tracer(Tracer::new(TraceConfig::default())));
        }
        let mut forensics = obs.forensics.clone().map(Forensics::new);
        let mut region_start = vec![Cycles::ZERO; n];
        if let Some(t) = &tracer {
            sub.attach_tracer(t.clone());
            // Every core's first region opens at t=0.
            for c in 0..n {
                let core = CoreId(c as u16);
                sub.trace(EventClass::Region, || SimEvent {
                    cycle: 0,
                    core: Some(core.0),
                    region: Some(sub.region_of(core).0),
                    kind: EventKind::RegionBegin,
                });
            }
        }
        let mut sampler = obs.sample_interval.map(MetricsSampler::new);

        let limit = self
            .step_limit
            .unwrap_or_else(|| default_step_limit(program.total_ops() as u64));
        let mut steps = 0u64;

        // End the core's current region: engine boundary work, region
        // clock advance, oracle clear, statistics.
        #[allow(clippy::too_many_arguments)]
        fn boundary(
            engine: &mut Box<dyn Engine>,
            sub: &mut Substrate,
            oracle: &mut Oracle,
            core: CoreId,
            now: Cycles,
            regions: &mut u64,
            region_ops: &mut [u64],
            region_len: &mut rce_common::Histogram,
            boundary_cost: &mut rce_common::Histogram,
            region_start: &mut [Cycles],
            forensics: &mut Option<Forensics>,
        ) -> RceResult<Cycles> {
            let old_region = sub.region_of(core);
            let b = engine.region_boundary(sub, core, now)?;
            let new_region = sub.advance_region(core);
            oracle.region_boundary(core, new_region);
            *regions += 1;
            let ops = std::mem::take(&mut region_ops[core.index()]);
            if ops > 0 {
                region_len.record(ops);
            }
            let done = b.done.max(now);
            boundary_cost.record(done.0 - now.0);
            if let Some(f) = forensics.as_mut() {
                f.region_ended(done.0.saturating_sub(region_start[core.index()].0));
            }
            region_start[core.index()] = done;
            sub.trace(EventClass::Region, || SimEvent {
                cycle: done.0,
                core: Some(core.0),
                region: Some(old_region.0),
                kind: EventKind::RegionEnd {
                    cost: done.0 - now.0,
                },
            });
            sub.trace(EventClass::Region, || SimEvent {
                cycle: done.0,
                core: Some(core.0),
                region: Some(new_region.0),
                kind: EventKind::RegionBegin,
            });
            Ok(done)
        }

        'run: loop {
            steps += 1;
            if steps > limit {
                return Err(RceError::StepLimitExceeded {
                    steps,
                    limit,
                    cursors: cursor.iter().map(|&c| c as u64).collect(),
                    mem_ops,
                });
            }
            // Pop the runnable core with the smallest clock (lowest ID
            // on ties).
            let Some((popped_clock, c)) = ready.pop() else {
                if status.iter().all(|s| *s == Status::Done) {
                    break 'run;
                }
                return Err(deadlock_error(&status, &locks, &barriers));
            };
            debug_assert_eq!(status[c], Status::Ready);
            debug_assert_eq!(popped_clock, clock[c], "queued entry went stale");
            let core = CoreId(c as u16);
            let now = clock[c];

            if let Some(s) = &mut sampler {
                if s.due(now.0) {
                    s.tick(now.0, gauges(&sub, &*engine, exceptions.len() as u64));
                }
            }

            // Thread finished?
            if cursor[c] >= program.threads[c].len() {
                // Final region ends at thread end.
                let done = boundary(
                    &mut engine,
                    &mut sub,
                    &mut oracle,
                    core,
                    now,
                    &mut regions,
                    &mut region_ops,
                    &mut region_len,
                    &mut boundary_cost,
                    &mut region_start,
                    &mut forensics,
                )?;
                clock[c] = done;
                status[c] = Status::Done;
                per_core[c].finish = done;
                continue;
            }

            let op = program.threads[c][cursor[c]];
            cursor[c] += 1;
            match op {
                Op::Work { cycles } => {
                    let scaled = (cycles as f64 * self.cfg.ipc_scale).round() as u64;
                    clock[c] = Cycles(now.0 + scaled.max(1));
                }
                Op::Read { addr, len } | Op::Write { addr, len } => {
                    let kind = if matches!(op, Op::Write { .. }) {
                        AccessType::Write
                    } else {
                        AccessType::Read
                    };
                    mem_ops += 1;
                    let mask = WordMask::span(addr, len as u64);
                    let res = engine.access(&mut sub, core, addr, mask, kind, now)?;
                    let dmask = self.cfg.detect_mask(mask);
                    sub.trace(EventClass::Access, || SimEvent {
                        cycle: now.0,
                        core: Some(core.0),
                        region: Some(sub.region_of(core).0),
                        kind: EventKind::MemAccess {
                            addr: addr.0,
                            write: kind == AccessType::Write,
                            exceptions: res.exceptions.len() as u64,
                        },
                    });
                    // Oracle sees the same committed access, word by
                    // word, at the configured detection granularity.
                    // A fast-path access repeats words this core+kind
                    // already observed this region, so every observe
                    // would take the oracle's own early-return; skip
                    // the loop entirely.
                    let line = addr.line();
                    if !res.fast {
                        for w in dmask.iter() {
                            let _ = oracle.observe(core, line.word_addr(w), kind, now);
                        }
                    }
                    for (i, ex) in res.exceptions.into_iter().enumerate() {
                        if let Some(f) = &mut forensics {
                            f.observe(&ex);
                        }
                        if seen.insert(ex.key()) {
                            sub.trace(EventClass::Conflict, || {
                                let letter =
                                    |k: AccessType| if k == AccessType::Write { "W" } else { "R" };
                                let other = if ex.a.core == core {
                                    ex.b.core
                                } else {
                                    ex.a.core
                                };
                                SimEvent {
                                    cycle: now.0,
                                    core: Some(core.0),
                                    region: Some(sub.region_of(core).0),
                                    kind: EventKind::Conflict {
                                        word: ex.word_addr.0 / 8,
                                        other_core: other.0 as u64,
                                        kinds: format!(
                                            "{}/{}",
                                            letter(ex.a.kind),
                                            letter(ex.b.kind)
                                        ),
                                    },
                                }
                            });
                            if let Some(f) = &mut forensics {
                                if let Some(path) = res.paths.get(i).copied() {
                                    let recent = tracer
                                        .as_ref()
                                        .map(|t| f.window(&t.borrow(), line.0))
                                        .unwrap_or_default();
                                    f.deliver(ex.clone(), path, recent);
                                }
                            }
                            exceptions.push(ex);
                            if policy == ExceptionPolicy::AbortOnFirst {
                                clock[c] = res.done.max(Cycles(now.0 + 1));
                                aborted = true;
                                break 'run;
                            }
                        }
                    }
                    clock[c] = res.done.max(Cycles(now.0 + 1));
                    access_latency.record(clock[c].0 - now.0);
                    region_ops[c] += 1;
                    per_core[c].mem_ops += 1;
                }
                Op::Acquire { lock } => {
                    sync_ops += 1;
                    per_core[c].sync_ops += 1;
                    let done = boundary(
                        &mut engine,
                        &mut sub,
                        &mut oracle,
                        core,
                        now,
                        &mut regions,
                        &mut region_ops,
                        &mut region_len,
                        &mut boundary_cost,
                        &mut region_start,
                        &mut forensics,
                    )?;
                    match locks.acquire(lock, core, done) {
                        AcquireOutcome::Granted(t) => clock[c] = t,
                        AcquireOutcome::Blocked => {
                            clock[c] = done;
                            status[c] = Status::BlockedLock(lock);
                        }
                    }
                }
                Op::Release { lock } => {
                    sync_ops += 1;
                    per_core[c].sync_ops += 1;
                    let done = boundary(
                        &mut engine,
                        &mut sub,
                        &mut oracle,
                        core,
                        now,
                        &mut regions,
                        &mut region_ops,
                        &mut region_len,
                        &mut boundary_cost,
                        &mut region_start,
                        &mut forensics,
                    )?;
                    if let Some((next, t)) = locks.release(lock, core, done) {
                        let ni = next.index();
                        debug_assert_eq!(status[ni], Status::BlockedLock(lock));
                        status[ni] = Status::Ready;
                        clock[ni] = clock[ni].max(t);
                        ready.push(clock[ni], ni);
                    }
                    clock[c] = done;
                }
                Op::Barrier { bar } => {
                    sync_ops += 1;
                    per_core[c].sync_ops += 1;
                    let done = boundary(
                        &mut engine,
                        &mut sub,
                        &mut oracle,
                        core,
                        now,
                        &mut regions,
                        &mut region_ops,
                        &mut region_len,
                        &mut boundary_cost,
                        &mut region_start,
                        &mut forensics,
                    )?;
                    clock[c] = done;
                    match barriers.arrive(bar, core, done) {
                        BarrierOutcome::Blocked => status[c] = Status::BlockedBarrier(bar),
                        BarrierOutcome::Released(cores, t) => {
                            for rc in cores {
                                let ri = rc.index();
                                status[ri] = Status::Ready;
                                clock[ri] = clock[ri].max(t);
                                // The arriving core is re-queued by the
                                // generic end-of-step push below.
                                if ri != c {
                                    ready.push(clock[ri], ri);
                                }
                            }
                        }
                    }
                }
            }

            // Re-queue the stepped core at its new clock unless it
            // blocked (or finished, which `continue`s above). Blocked
            // cores are pushed by whoever wakes them.
            if status[c] == Status::Ready {
                ready.push(clock[c], c);
            }
        }

        let end = clock.iter().copied().max().unwrap_or(Cycles::ZERO);
        sub.noc.finalize(end);
        sub.dram.finalize(end);

        // Close out the observability layers. The tracer is drained
        // (not unwrapped) because the NoC and DRAM still hold clones.
        let timeline =
            sampler.map(|s| s.finish(end.0, gauges(&sub, &*engine, exceptions.len() as u64)));
        // The internal forensics-only ring never reaches the report.
        let trace = if trace_requested {
            tracer.map(|t| t.borrow_mut().take_log())
        } else {
            None
        };
        let forensics = forensics.map(Forensics::finish);

        let (l1_hits, l1_misses, l1_evictions) = engine.l1_totals();
        let aim = engine.aim_totals().map(|(a, h, m, s)| AimSummary {
            accesses: a,
            hits: h,
            misses: m,
            spills: s,
        });
        let counts = EventCounts {
            l1_accesses: engine.l1_accesses(),
            llc_accesses: sub.llc_accesses.get(),
            aim_accesses: aim.map_or(0, |a| a.accesses),
            dir_accesses: sub.dir_accesses.get(),
            noc_flit_hops: sub.noc.stats().flit_hops.get(),
            dram_bytes: sub.dram.total_bytes().0,
            dram_accesses: sub.dram.stats().total_accesses(),
            cycles: end.0,
            cores: self.cfg.cores as u64,
        };
        let energy = self.energy_model.evaluate(&counts);

        exceptions.sort();
        Ok(SimReport {
            protocol: self.cfg.protocol,
            workload: program.name.clone(),
            cores: self.cfg.cores,
            cycles: end,
            mem_ops,
            sync_ops,
            regions,
            l1_hits,
            l1_misses,
            l1_evictions,
            llc_hits: sub.llc.hits.get(),
            llc_misses: sub.llc.misses.get(),
            noc: sub.noc.stats().clone(),
            dram: sub.dram.stats().clone(),
            aim,
            energy,
            engine_counters: engine
                .extra_counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            access_latency,
            region_len,
            boundary_cost,
            per_core,
            exceptions,
            oracle_conflicts: oracle.conflicts(),
            aborted,
            timeline,
            trace,
            forensics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::ProtocolKind;
    use rce_trace::WorkloadSpec;

    fn run(w: WorkloadSpec, proto: ProtocolKind, cores: usize) -> SimReport {
        let cfg = MachineConfig::paper_default(cores, proto);
        let p = w.build(cores, 1, 42);
        Machine::new(&cfg).unwrap().run(&p).unwrap()
    }

    #[test]
    fn private_only_runs_clean_on_all_protocols() {
        for proto in ProtocolKind::ALL {
            let r = run(WorkloadSpec::PrivateOnly, proto, 4);
            assert!(r.cycles.0 > 0, "{proto}");
            assert!(r.exceptions.is_empty(), "{proto}");
            assert!(r.oracle_conflicts.is_empty(), "{proto}");
            assert!(r.mem_ops > 0);
        }
    }

    #[test]
    fn racy_pair_detected_by_all_detectors() {
        for proto in ProtocolKind::DETECTORS {
            let r = run(WorkloadSpec::RacyPair, proto, 4);
            assert!(
                !r.oracle_conflicts.is_empty(),
                "{proto}: oracle saw nothing"
            );
            assert!(!r.exceptions.is_empty(), "{proto}: engine missed the race");
            assert!(r.matches_oracle(), "{proto}: engine != oracle");
        }
    }

    #[test]
    fn baseline_never_raises() {
        let r = run(WorkloadSpec::RacyPair, ProtocolKind::MesiBaseline, 4);
        assert!(r.exceptions.is_empty());
        assert!(!r.oracle_conflicts.is_empty(), "the race is still there");
    }

    #[test]
    fn false_sharing_raises_nothing() {
        for proto in ProtocolKind::DETECTORS {
            let r = run(WorkloadSpec::FalseSharing, proto, 8);
            assert!(
                r.exceptions.is_empty(),
                "{proto}: word granularity must not flag false sharing"
            );
            assert!(r.matches_oracle(), "{proto}");
        }
    }

    #[test]
    fn ping_pong_is_race_free() {
        for proto in ProtocolKind::DETECTORS {
            let r = run(WorkloadSpec::PingPong, proto, 4);
            assert!(r.exceptions.is_empty(), "{proto}: lock-protected accesses");
            assert!(r.matches_oracle(), "{proto}");
        }
    }

    #[test]
    fn abort_policy_stops_early() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::Ce);
        let p = WorkloadSpec::RacyPair.build(4, 1, 42);
        let m = Machine::new(&cfg).unwrap();
        let r = m
            .run_with_policy(&p, ExceptionPolicy::AbortOnFirst)
            .unwrap();
        assert!(r.aborted);
        assert_eq!(r.exceptions.len(), 1);
        let full = m.run(&p).unwrap();
        assert!(full.mem_ops >= r.mem_ops);
    }

    #[test]
    fn step_limit_is_structured_and_overridable() {
        use rce_common::Addr;
        use rce_trace::Program;
        // Classic ABBA deadlock: each core holds one lock and wants
        // the other's.
        let abba = Program {
            name: "abba".into(),
            threads: vec![
                vec![
                    Op::Acquire {
                        lock: rce_common::LockId(0),
                    },
                    Op::Work { cycles: 10 },
                    Op::Acquire {
                        lock: rce_common::LockId(1),
                    },
                    Op::Release {
                        lock: rce_common::LockId(1),
                    },
                    Op::Release {
                        lock: rce_common::LockId(0),
                    },
                ],
                vec![
                    Op::Acquire {
                        lock: rce_common::LockId(1),
                    },
                    Op::Work { cycles: 10 },
                    Op::Acquire {
                        lock: rce_common::LockId(0),
                    },
                    Op::Release {
                        lock: rce_common::LockId(0),
                    },
                    Op::Release {
                        lock: rce_common::LockId(1),
                    },
                ],
            ],
            n_locks: 2,
            n_barriers: 0,
            shared_base: Addr(0),
            shared_end: Addr(4096),
        };
        let cfg = MachineConfig::paper_default(2, ProtocolKind::Ce);

        // With the default budget the scheduler reaches the blocked
        // state and reports the deadlock itself, naming each waiting
        // core, the lock it wants, and the holder.
        let err = Machine::new(&cfg).unwrap().run(&abba).unwrap_err();
        assert!(matches!(err, RceError::DriverProtocol(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(msg.contains("c0 waits on lk1 held by c1"), "{msg}");
        assert!(msg.contains("c1 waits on lk0 held by c0"), "{msg}");

        // A tiny explicit budget trips the structured step limit
        // before the deadlock is even reached, carrying enough state
        // to see where each core was stuck.
        let err = Machine::new(&cfg)
            .unwrap()
            .with_step_limit(2)
            .run(&abba)
            .unwrap_err();
        match err {
            RceError::StepLimitExceeded {
                steps,
                limit,
                cursors,
                mem_ops,
            } => {
                assert_eq!(limit, 2);
                assert!(steps > limit);
                assert_eq!(cursors.len(), 2);
                assert!(cursors.iter().all(|&cu| cu <= 5));
                assert_eq!(mem_ops, 0, "abba issues no memory ops");
            }
            other => panic!("expected StepLimitExceeded, got {other}"),
        }

        // The default budget formula is the documented one.
        assert_eq!(
            default_step_limit(100),
            101 * STEP_LIMIT_FACTOR + STEP_LIMIT_BASE
        );
    }

    #[test]
    fn thread_count_mismatch_rejected() {
        let cfg = MachineConfig::paper_default(8, ProtocolKind::MesiBaseline);
        let p = WorkloadSpec::PingPong.build(4, 1, 1);
        let err = Machine::new(&cfg).unwrap().run(&p).unwrap_err();
        assert!(err.to_string().contains("threads"));
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::Ce);
        let m = Machine::new(&cfg).unwrap();
        let p = WorkloadSpec::Canneal.build(4, 1, 7);
        let a = m.run(&p).unwrap();
        let b = m.run(&p).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.exceptions, b.exceptions);
        assert_eq!(a.noc.total_bytes(), b.noc.total_bytes());
        assert_eq!(a.dram.total_bytes(), b.dram.total_bytes());
    }

    #[test]
    fn reports_have_consistent_counts() {
        let p = WorkloadSpec::Streamcluster.build(4, 1, 3);
        let r = run(WorkloadSpec::Streamcluster, ProtocolKind::CePlus, 4);
        assert_eq!(r.mem_ops as usize, p.total_mem_ops());
        assert_eq!(r.sync_ops as usize, p.total_sync_ops());
        assert_eq!(r.l1_hits + r.l1_misses, r.mem_ops);
        assert!(r.energy_total().0 > 0.0);
        assert!(r.aim.is_some());
    }

    #[test]
    fn observability_off_report_is_byte_identical() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::CePlus);
        let p = WorkloadSpec::FalseSharing.build(4, 1, 42);
        let plain = Machine::new(&cfg).unwrap().run(&p).unwrap();
        let observed = Machine::new(&cfg)
            .unwrap()
            .with_observability(ObsConfig::full(1000))
            .run(&p)
            .unwrap();
        assert!(observed.timeline.is_some());
        assert!(observed.trace.is_some());
        assert!(observed.forensics.is_some());
        // Observability must not perturb the simulation: stripping the
        // obs fields yields the exact bytes of the plain run.
        let mut stripped = observed.clone();
        stripped.timeline = None;
        stripped.trace = None;
        stripped.forensics = None;
        assert_eq!(
            rce_common::json::to_string(&plain),
            rce_common::json::to_string(&stripped)
        );
        // And the off-mode report carries no trace of the subsystem.
        let off = rce_common::json::to_string(&plain);
        assert!(!off.contains("\"timeline\""));
        assert!(!off.contains("\"trace\""));
        assert!(!off.contains("\"forensics\""));
    }

    #[test]
    fn timeline_is_deterministic_and_covers_the_run() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::Arc);
        let m = || {
            Machine::new(&cfg).unwrap().with_observability(ObsConfig {
                trace: None,
                sample_interval: Some(512),
                forensics: None,
            })
        };
        let p = WorkloadSpec::Canneal.build(4, 1, 7);
        let a = m().run(&p).unwrap();
        let b = m().run(&p).unwrap();
        let ta = a.timeline.expect("sampling was on");
        let tb = b.timeline.expect("sampling was on");
        assert_eq!(
            rce_common::json::to_string(&ta),
            rce_common::json::to_string(&tb),
            "same seed + config must give byte-identical timeline JSON"
        );
        assert_eq!(ta.samples.last().unwrap().cycle, a.cycles.0);
        assert!(ta.samples.iter().any(|s| s.noc_msgs > 0));
        // Cumulative deltas reconstruct the end-of-run totals.
        let msgs: u64 = ta.samples.iter().map(|s| s.noc_msgs).sum();
        assert_eq!(msgs, a.noc.total_msgs());
    }

    #[test]
    fn tracer_overflow_is_surfaced_in_the_report() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::Ce);
        let obs = ObsConfig {
            trace: Some(TraceConfig {
                capacity: 8,
                ..TraceConfig::default()
            }),
            sample_interval: None,
            forensics: None,
        };
        let p = WorkloadSpec::Canneal.build(4, 1, 7);
        let r = Machine::new(&cfg)
            .unwrap()
            .with_observability(obs)
            .run(&p)
            .unwrap();
        let log = r.trace.expect("tracing was on");
        assert_eq!(log.events.len(), 8, "ring keeps exactly its capacity");
        assert!(log.emitted > 8);
        assert_eq!(log.drops, log.emitted - 8, "drops are never silent");
    }

    #[test]
    fn traced_run_records_region_structure() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::CePlus);
        let p = WorkloadSpec::PingPong.build(4, 1, 3);
        let r = Machine::new(&cfg)
            .unwrap()
            .with_observability(ObsConfig::full(4096))
            .run(&p)
            .unwrap();
        let log = r.trace.expect("tracing was on");
        let begins = log
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RegionBegin))
            .count();
        let ends = log
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RegionEnd { .. }))
            .count();
        assert_eq!(ends as u64, r.regions, "one end event per region");
        // 4 initial begins at t=0, plus one per boundary.
        assert_eq!(begins, ends + 4);
        // Every traced event carries a usable timestamp.
        assert!(log.events.iter().all(|e| e.cycle <= r.cycles.0));
        // Accesses were traced with provenance.
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::MemAccess { .. }) && e.core.is_some()));
    }

    #[test]
    fn forensics_records_provenance_for_every_delivered_exception() {
        for proto in ProtocolKind::DETECTORS {
            let cfg = MachineConfig::paper_default(4, proto);
            let p = WorkloadSpec::RacyPair.build(4, 1, 42);
            let r = Machine::new(&cfg)
                .unwrap()
                .with_observability(ObsConfig::forensics_only())
                .run(&p)
                .unwrap();
            let f = r.forensics.as_ref().expect("forensics was on");
            // The internal event ring used for windows is not a trace.
            assert!(r.trace.is_none(), "{proto}: internal ring leaked");
            assert!(!r.exceptions.is_empty(), "{proto}: racy_pair must race");
            assert_eq!(f.delivered, r.exceptions.len() as u64, "{proto}");
            assert_eq!(f.records.len(), r.exceptions.len(), "{proto}");
            // Heatmap totals count materialized (pre-dedup) detections,
            // exactly the engines' conflict_checks_hit counter.
            let hits = r
                .engine_counters
                .iter()
                .find(|(k, _)| k == "conflict_checks_hit")
                .map(|(_, v)| *v)
                .expect("detector counter");
            assert_eq!(f.heatmap_total(), hits, "{proto}");
            assert_eq!(f.total_detections, hits, "{proto}");
            // Every record names both endpoints and a detection path.
            for rec in &f.records {
                assert_ne!(rec.exception.a.core, rec.exception.b.core, "{proto}");
                assert!(!rec.path.describe().is_empty(), "{proto}");
            }
            // Lifetimes were recorded for every completed region.
            assert_eq!(f.region_lifetime.count(), r.regions, "{proto}");
        }
    }

    #[test]
    fn forensics_is_deterministic() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::CePlus);
        let p = WorkloadSpec::Canneal.build(4, 1, 7);
        let m = || {
            Machine::new(&cfg)
                .unwrap()
                .with_observability(ObsConfig::forensics_only())
        };
        let a = m().run(&p).unwrap().forensics.unwrap();
        let b = m().run(&p).unwrap().forensics.unwrap();
        assert_eq!(
            rce_common::json::to_string(&a),
            rce_common::json::to_string(&b)
        );
    }

    #[test]
    fn exceptions_gauge_sums_to_delivered_total() {
        let cfg = MachineConfig::paper_default(4, ProtocolKind::Ce);
        let p = WorkloadSpec::RacyPair.build(4, 1, 42);
        let r = Machine::new(&cfg)
            .unwrap()
            .with_observability(ObsConfig {
                trace: None,
                sample_interval: Some(256),
                forensics: None,
            })
            .run(&p)
            .unwrap();
        assert!(!r.exceptions.is_empty());
        let t = r.timeline.expect("sampling was on");
        let total: u64 = t.samples.iter().map(|s| s.exceptions).sum();
        assert_eq!(total, r.exceptions.len() as u64);
    }

    #[test]
    fn all_parsec_run_on_all_protocols_small() {
        for w in [
            WorkloadSpec::Blackscholes,
            WorkloadSpec::Fluidanimate,
            WorkloadSpec::Dedup,
        ] {
            for proto in ProtocolKind::ALL {
                let r = run(w, proto, 4);
                assert!(r.cycles.0 > 0, "{w} {proto}");
            }
        }
    }
}
