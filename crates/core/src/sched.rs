//! Index-min ready queue for the machine scheduler.
//!
//! The driver repeatedly runs the Ready core with the smallest local
//! clock, ties broken by the lowest core ID. The original
//! implementation rescanned every core on every step — O(cores) per
//! committed operation, which starts to dominate the driver loop at
//! high core counts. [`ReadyQueue`] is a binary min-heap keyed by
//! `(clock, core)`: it pops exactly the core the linear scan would
//! have picked, in O(log cores), with the identical deterministic
//! tie-break (equal clocks resolve to the lowest core ID) at any core
//! count.
//!
//! Invariant maintained by the machine loop: every Ready core has
//! exactly one queued entry carrying its current clock, and a core's
//! clock never changes while its entry is queued. Clocks move only
//! when a core executes (after its entry is popped) or when a wake-up
//! raises a *blocked* core's clock immediately before its push.

use rce_common::Cycles;

/// A binary min-heap of `(clock, core)` pairs with deterministic
/// ordering: smallest clock first, lowest core ID on ties.
#[derive(Debug, Clone, Default)]
pub struct ReadyQueue {
    heap: Vec<(Cycles, usize)>,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue { heap: Vec::new() }
    }

    /// An empty queue with room for `n` cores.
    pub fn with_capacity(n: usize) -> Self {
        ReadyQueue {
            heap: Vec::with_capacity(n),
        }
    }

    /// Number of queued cores.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no core is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queue `core` as runnable at `clock`.
    pub fn push(&mut self, clock: Cycles, core: usize) {
        self.heap.push((clock, core));
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the `(clock, core)` pair with the smallest
    /// clock (lowest core ID on ties), or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycles, usize)> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] < self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut min = i;
            if l < n && self.heap[l] < self.heap[min] {
                min = l;
            }
            if r < n && self.heap[r] < self.heap[min] {
                min = r;
            }
            if min == i {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::{Rng, SplitMix64};

    /// The reference the heap replaces: the machine's old scan walked
    /// cores in ID order with a strict `<` on the clock, which is
    /// exactly "minimize (clock, core ID)".
    fn linear_pick(ready: &[(Cycles, usize)]) -> Option<usize> {
        let mut pick: Option<usize> = None;
        for (i, entry) in ready.iter().enumerate() {
            if pick.is_none_or(|p| *entry < ready[p]) {
                pick = Some(i);
            }
        }
        pick
    }

    #[test]
    fn pops_in_clock_then_id_order() {
        let mut q = ReadyQueue::new();
        q.push(Cycles(5), 2);
        q.push(Cycles(3), 7);
        q.push(Cycles(5), 0);
        q.push(Cycles(3), 1);
        assert_eq!(q.pop(), Some((Cycles(3), 1)));
        assert_eq!(q.pop(), Some((Cycles(3), 7)));
        assert_eq!(q.pop(), Some((Cycles(5), 0)));
        assert_eq!(q.pop(), Some((Cycles(5), 2)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_resolve_to_lowest_core_id() {
        let mut q = ReadyQueue::with_capacity(64);
        for c in (0..64).rev() {
            q.push(Cycles(100), c);
        }
        for c in 0..64 {
            assert_eq!(q.pop(), Some((Cycles(100), c)));
        }
    }

    #[test]
    fn matches_linear_scan_under_random_schedules() {
        // Simulate the machine's usage pattern: pop-min, advance that
        // core's clock by a random amount, re-queue — against a vector
        // the linear scan searches. Both must pick the same core every
        // step.
        let mut rng = SplitMix64::new(0xD00D);
        for cores in [1usize, 2, 3, 8, 64] {
            let mut q = ReadyQueue::with_capacity(cores);
            let mut reference: Vec<(Cycles, usize)> = Vec::new();
            for c in 0..cores {
                q.push(Cycles::ZERO, c);
                reference.push((Cycles::ZERO, c));
            }
            for _ in 0..2000 {
                let Some(want) = linear_pick(&reference) else {
                    assert!(q.is_empty());
                    break;
                };
                let expected = reference.swap_remove(want);
                let (t, c) = q.pop().unwrap();
                assert_eq!((t, c), expected, "heap diverged from the scan");
                let next = Cycles(t.0 + rng.gen_range(4)); // ties common
                if rng.gen_bool(0.1) {
                    // "Blocked": re-queue later (a lock handoff raises
                    // the clock before the push) or drop entirely.
                    if rng.gen_bool(0.8) {
                        let wake = Cycles(next.0 + rng.gen_range(10));
                        q.push(wake, c);
                        reference.push((wake, c));
                    }
                } else {
                    q.push(next, c);
                    reference.push((next, c));
                }
                // The mirror must track the heap exactly.
                assert_eq!(q.len(), reference.len());
            }
        }
    }
}
