//! The engine interface and the shared substrate.
//!
//! A [`Substrate`] bundles everything all four designs share: the NoC,
//! the DRAM, the shared LLC + directory, the per-core region clocks,
//! and the event counters the energy model consumes. An [`Engine`]
//! implements one design's behavior for the three things designs
//! differ on: memory accesses, region boundaries, and what state they
//! attach to lines.

use crate::exception::ConflictException;
use crate::forensics::DetectPath;
use rce_cache::{Directory, Llc};
use rce_common::obs::{EventClass, SharedTracer, SimEvent};
use rce_common::{
    Addr, CoreId, Counter, Cycles, LineAddr, MachineConfig, RceResult, RegionId, WordMask,
};
use rce_dram::{AccessKind as DramKind, Dram};
use rce_noc::{MsgClass, Noc, NodeId};

/// Read or write, from the engine's perspective (alias of the
/// exception-side type to avoid two vocabularies).
pub use crate::exception::AccessType;

/// The completion of one memory access.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// When the access completes (the core stalls until then).
    pub done: Cycles,
    /// Conflicts detected while performing it.
    pub exceptions: Vec<ConflictException>,
    /// Detection provenance, aligned with `exceptions` (`paths[i]`
    /// explains how `exceptions[i]` was found). Engines fill this
    /// unconditionally — exceptions are rare, so the cost is nil and
    /// the forensics layer needs no extra engine gating.
    pub paths: Vec<DetectPath>,
    /// True iff the engine's access filter short-circuited this access
    /// (see [`crate::fastpath`]): the outcome was fully determined by
    /// a covered repeat, so the machine may also skip the per-word
    /// oracle observation, which would be a no-op.
    pub fast: bool,
}

/// Everything shared between designs.
pub struct Substrate {
    /// Machine configuration.
    pub cfg: MachineConfig,
    /// On-chip network.
    pub noc: Noc,
    /// Off-chip memory.
    pub dram: Dram,
    /// Shared last-level cache.
    pub llc: Llc,
    /// Full-map directory.
    pub dir: Directory,
    /// Current region of each core. An access-bit entry is *live* iff
    /// its region equals the owning core's current region.
    pub regions: Vec<RegionId>,
    /// LLC bank accesses (energy).
    pub llc_accesses: Counter,
    /// Directory accesses (energy).
    pub dir_accesses: Counter,
    /// Event tracer, when observability is on. `None` costs one branch
    /// per emission site (the zero-overhead-when-off contract).
    pub tracer: Option<SharedTracer>,
    next_region: u64,
}

impl Substrate {
    /// Build from configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut s = Substrate {
            cfg: cfg.clone(),
            noc: Noc::new(cfg.cores, cfg.noc),
            dram: Dram::new(cfg.dram),
            llc: Llc::new(&cfg.llc),
            dir: Directory::new(cfg.cores),
            regions: Vec::with_capacity(cfg.cores),
            llc_accesses: Counter::default(),
            dir_accesses: Counter::default(),
            tracer: None,
            next_region: 0,
        };
        for _ in 0..cfg.cores {
            let r = s.fresh_region();
            s.regions.push(r);
        }
        s
    }

    /// Attach an event tracer, shared with the NoC and DRAM so all
    /// layers feed one ring.
    pub fn attach_tracer(&mut self, t: SharedTracer) {
        self.noc.attach_tracer(t.clone());
        self.dram.attach_tracer(t.clone());
        self.tracer = Some(t);
    }

    /// Emit a trace event; the event is only *built* (the closure only
    /// runs) if a tracer is attached and wants `class`.
    #[inline]
    pub fn trace(&self, class: EventClass, build: impl FnOnce() -> SimEvent) {
        if let Some(tr) = &self.tracer {
            let mut tr = tr.borrow_mut();
            if tr.wants(class) {
                tr.emit(build());
            }
        }
    }

    fn fresh_region(&mut self) -> RegionId {
        let r = RegionId(self.next_region);
        self.next_region += 1;
        r
    }

    /// Current region of a core.
    #[inline]
    pub fn region_of(&self, c: CoreId) -> RegionId {
        self.regions[c.index()]
    }

    /// End `c`'s region and start a fresh one; returns the new region.
    pub fn advance_region(&mut self, c: CoreId) -> RegionId {
        let r = self.fresh_region();
        self.regions[c.index()] = r;
        r
    }

    /// Liveness predicate for metadata entries: the entry's region is
    /// its core's current region.
    #[inline]
    pub fn is_live(&self, core: CoreId, region: RegionId) -> bool {
        self.regions[core.index()] == region
    }

    /// NoC node of a core.
    #[inline]
    pub fn core_node(&self, c: CoreId) -> NodeId {
        self.noc.core_node(c)
    }

    /// NoC node of the LLC bank (and AIM slice) holding `line`.
    #[inline]
    pub fn bank_node(&self, line: LineAddr) -> NodeId {
        self.noc.bank_node(line)
    }

    /// Access the LLC data array for `line` at `now` (the request is
    /// already at the bank). On a miss the line is fetched from DRAM
    /// and filled (evicting dirty victims to DRAM off the critical
    /// path). Returns the time the data is ready at the bank.
    pub fn llc_data(&mut self, line: LineAddr, now: Cycles) -> Cycles {
        self.llc_accesses.inc();
        let t = Cycles(now.0 + self.cfg.llc.latency);
        if self.llc.access(line) {
            return t;
        }
        // Miss: bank -> memory controller -> DRAM -> back.
        let bank = self.bank_node(line);
        let mem = self.noc.mem_node(line);
        let req_at = self
            .noc
            .send(bank, mem, self.cfg.noc.ctrl_bytes, MsgClass::Request, t);
        let dram_done = self.dram.access(line, 64, DramKind::DataRead, req_at);
        let back = self.noc.send(
            mem,
            bank,
            self.cfg.noc.data_header_bytes + 64,
            MsgClass::Data,
            dram_done,
        );
        if let Some((victim, state)) = self.llc.fill(line, false) {
            if state.dirty {
                // Victim writeback: traffic + DRAM time, but off the
                // requester's critical path.
                let vmem = self.noc.mem_node(victim);
                let at = self.noc.send(
                    self.bank_node(victim),
                    vmem,
                    self.cfg.noc.data_header_bytes + 64,
                    MsgClass::Writeback,
                    back,
                );
                let _ = self.dram.access(victim, 64, DramKind::DataWrite, at);
            }
            self.trace(EventClass::Cache, || SimEvent {
                cycle: back.0,
                core: None,
                region: None,
                kind: rce_common::obs::EventKind::LlcEvict {
                    line: victim.0,
                    dirty: state.dirty,
                },
            });
        }
        back
    }

    /// Write `bytes` of dirty data for `line` into the LLC at `now`
    /// (the data is already at the bank). Marks the line dirty,
    /// allocating it if absent (without a DRAM fetch: full-line or
    /// partial writeback both overwrite).
    pub fn llc_put(&mut self, line: LineAddr, now: Cycles) -> Cycles {
        self.llc_accesses.inc();
        if self.llc.contains(line) {
            self.llc.mark_dirty(line);
        } else if let Some((victim, state)) = self.llc.fill(line, true) {
            if state.dirty {
                let vmem = self.noc.mem_node(victim);
                let at = self.noc.send(
                    self.bank_node(victim),
                    vmem,
                    self.cfg.noc.data_header_bytes + 64,
                    MsgClass::Writeback,
                    now,
                );
                let _ = self.dram.access(victim, 64, DramKind::DataWrite, at);
            }
            self.trace(EventClass::Cache, || SimEvent {
                cycle: now.0,
                core: None,
                region: None,
                kind: rce_common::obs::EventKind::LlcEvict {
                    line: victim.0,
                    dirty: state.dirty,
                },
            });
        }
        Cycles(now.0 + self.cfg.llc.latency)
    }

    /// Charge a directory access.
    #[inline]
    pub fn dir_access(&mut self) {
        self.dir_accesses.inc();
    }
}

/// One conflict-detection design (or the baseline).
///
/// `access` and `region_boundary` are fallible: a broken model
/// invariant (e.g. the directory naming a sharer whose L1 lost the
/// line) surfaces as [`rce_common::RceError::InvariantViolated`]
/// instead of a panic, so a long sweep fails only the offending run.
pub trait Engine {
    /// Perform a memory access of `len` bytes at `addr` by `core`,
    /// starting at `now`. `mask` is the word span within the line.
    fn access(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        addr: Addr,
        mask: WordMask,
        kind: AccessType,
        now: Cycles,
    ) -> RceResult<AccessResult>;

    /// The core reached a synchronization operation: finish its
    /// current region (flush/scrub/self-invalidate per design) and
    /// return when the boundary work completes, plus any conflicts
    /// detected during boundary processing. The machine advances the
    /// region clock *after* this returns.
    fn region_boundary(
        &mut self,
        sub: &mut Substrate,
        core: CoreId,
        now: Cycles,
    ) -> RceResult<AccessResult>;

    /// Engine display name.
    fn name(&self) -> &'static str;

    /// Turn the fast-path access filter on or off (see
    /// [`crate::fastpath::AccessFilter`]). Reports are byte-identical
    /// either way; CI runs the golden gate with the filter disabled to
    /// keep the slow path honest.
    fn set_fastpath(&mut self, on: bool);

    /// Aggregate L1 statistics: `(hits, misses, evictions)` summed
    /// over cores.
    fn l1_totals(&self) -> (u64, u64, u64);

    /// Total L1 data-array accesses (for energy): hits + misses.
    fn l1_accesses(&self) -> u64 {
        let (h, m, _) = self.l1_totals();
        h + m
    }

    /// AIM statistics if this design has one:
    /// `(accesses, hits, misses, spills_to_dram)`.
    fn aim_totals(&self) -> Option<(u64, u64, u64, u64)> {
        None
    }

    /// Design-specific named counters for the report.
    fn extra_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::ProtocolKind;

    fn sub() -> Substrate {
        Substrate::new(&MachineConfig::paper_default(4, ProtocolKind::MesiBaseline))
    }

    #[test]
    fn region_clock_advances() {
        let mut s = sub();
        let r0 = s.region_of(CoreId(0));
        let r1 = s.advance_region(CoreId(0));
        assert_ne!(r0, r1);
        assert!(s.is_live(CoreId(0), r1));
        assert!(!s.is_live(CoreId(0), r0));
        // Other cores unaffected.
        assert!(s.is_live(CoreId(1), s.region_of(CoreId(1))));
    }

    #[test]
    fn region_ids_globally_unique() {
        let mut s = sub();
        let mut seen = std::collections::HashSet::new();
        for c in 0..4u16 {
            assert!(seen.insert(s.region_of(CoreId(c))));
        }
        for c in 0..4u16 {
            assert!(seen.insert(s.advance_region(CoreId(c))));
        }
    }

    #[test]
    fn llc_data_miss_then_hit() {
        let mut s = sub();
        let line = LineAddr(100);
        let t_miss = s.llc_data(line, Cycles(0));
        assert!(t_miss.0 > s.cfg.llc.latency, "miss goes to DRAM");
        let t0 = Cycles(100_000);
        let t_hit = s.llc_data(line, t0);
        assert_eq!(t_hit.0 - t0.0, s.cfg.llc.latency);
        assert_eq!(s.llc_accesses.get(), 2);
        assert!(s.dram.stats().total_accesses() >= 1);
    }

    #[test]
    fn llc_put_marks_dirty() {
        let mut s = sub();
        let line = LineAddr(7);
        s.llc_put(line, Cycles(0));
        assert!(s.llc.contains(line));
        // Putting again is a hit-path dirty mark.
        let before = s.dram.stats().total_accesses();
        s.llc_put(line, Cycles(10));
        assert_eq!(s.dram.stats().total_accesses(), before);
    }

    /// A substrate with a tiny LLC (16 sets × 2 ways) so one set
    /// overflows after three same-set lines.
    fn tiny_llc_sub() -> Substrate {
        let mut cfg = MachineConfig::paper_default(4, ProtocolKind::MesiBaseline);
        cfg.llc = rce_common::CacheGeometry {
            capacity: rce_common::Bytes(2048),
            ways: 2,
            latency: cfg.llc.latency,
        };
        Substrate::new(&cfg)
    }

    /// Three lines mapping to the same LLC set, picked so the first
    /// (the eventual LRU victim) has its bank and memory controller on
    /// *different* tiles — its writeback must cross the NoC.
    fn colliding_lines(s: &Substrate) -> (LineAddr, LineAddr, LineAddr) {
        let sets = s.cfg.llc.sets();
        let victim = (0..64)
            .map(|k| LineAddr(k * sets))
            .find(|l| s.bank_node(*l) != s.noc.mem_node(*l))
            .expect("some set-0 line has a remote memory controller");
        let mut rest = (0..64).map(|k| LineAddr(k * sets)).filter(|l| *l != victim);
        let b = rest.next().unwrap();
        let c = rest.next().unwrap();
        (victim, b, c)
    }

    #[test]
    fn llc_put_dirty_victim_charges_writeback_once() {
        let mut s = tiny_llc_sub();
        assert_eq!(s.cfg.llc.sets(), 16);
        let (victim, b, c) = colliding_lines(&s);
        // Fill one set with two dirty lines, then overflow it.
        s.llc_put(victim, Cycles(0));
        s.llc_put(b, Cycles(0));
        let wb_idx = MsgClass::Writeback.index();
        let dw_idx = DramKind::DataWrite.index();
        assert_eq!(s.noc.stats().msgs[wb_idx].get(), 0);
        assert_eq!(s.dram.stats().accesses[dw_idx].get(), 0);

        let now = Cycles(1_000);
        let done = s.llc_put(c, now);

        // The dirty LRU victim is written back exactly once: one NoC
        // writeback message and one 64-byte DRAM data write.
        assert_eq!(s.noc.stats().msgs[wb_idx].get(), 1);
        assert_eq!(s.dram.stats().accesses[dw_idx].get(), 1);
        assert_eq!(s.dram.stats().bytes[dw_idx].0, 64);
        // Off the critical path: the put completes at the plain LLC
        // latency regardless of the victim traffic.
        assert_eq!(done.0, now.0 + s.cfg.llc.latency);
        assert!(!s.llc.contains(victim), "LRU victim evicted");
    }

    #[test]
    fn llc_data_dirty_victim_writeback_is_off_critical_path() {
        let (victim, b, c) = colliding_lines(&tiny_llc_sub());
        let now = Cycles(10_000);

        // Control: a cold miss with no victims to evict.
        let mut clean = tiny_llc_sub();
        let control = clean.llc_data(c, now);

        // Same miss, but the set is full of dirty lines. llc_put
        // touches neither the NoC nor DRAM, so both substrates face
        // the miss in identical contention state.
        let mut s = tiny_llc_sub();
        s.llc_put(victim, Cycles(0));
        s.llc_put(b, Cycles(0));
        let back = s.llc_data(c, now);

        let wb_idx = MsgClass::Writeback.index();
        let dw_idx = DramKind::DataWrite.index();
        assert_eq!(s.noc.stats().msgs[wb_idx].get(), 1);
        assert_eq!(s.dram.stats().accesses[dw_idx].get(), 1);
        assert_eq!(s.dram.stats().bytes[dw_idx].0, 64);
        assert_eq!(
            back, control,
            "victim writeback must not delay the requester"
        );
        // The writeback traffic is real: strictly more NoC bytes than
        // the clean miss.
        assert!(s.noc.total_bytes() > clean.noc.total_bytes());
    }
}
