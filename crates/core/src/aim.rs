//! The access information memory (AIM) — the on-chip metadata cache
//! that turns CE into CE+ and backs ARC's LLC-side detection.
//!
//! The AIM is a set-associative cache of [`MetaMap`]s keyed by line
//! address, physically distributed alongside the LLC banks (an AIM
//! slice sits at each line's home bank, so reaching it costs the same
//! NoC trip a coherence request already makes). Entries evicted from
//! the AIM spill to a DRAM-backed table and are refilled on demand;
//! the caller charges the DRAM traffic for both (the [`AimOutcome`]
//! flags tell it to).

use crate::access::MetaMap;
use rce_cache::SetAssoc;
use rce_common::{AimConfig, Counter, LineAddr};
use std::collections::HashMap;

/// What `ensure` had to do to make a line's entry resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AimOutcome {
    /// The entry was found resident (metadata hit).
    pub hit: bool,
    /// A spilled entry was brought back from the DRAM table (charge a
    /// metadata read).
    pub refilled: bool,
    /// A victim entry with live metadata was spilled to the DRAM table
    /// (charge a metadata write).
    pub spilled: bool,
}

/// The metadata cache.
#[derive(Debug, Clone)]
pub struct Aim {
    array: SetAssoc<MetaMap>,
    /// DRAM-backed overflow table (cost charged by the caller via
    /// [`AimOutcome`]).
    backing: HashMap<u64, MetaMap>,
    /// Entry size in bytes when spilled / transferred.
    pub entry_bytes: u64,
    /// Access latency in cycles.
    pub latency: u64,
    /// Total AIM lookups.
    pub accesses: Counter,
    /// Lookups that found the entry resident.
    pub hits: Counter,
    /// Lookups that did not.
    pub misses: Counter,
    /// Entries spilled to DRAM.
    pub spills: Counter,
    /// Entries refilled from DRAM.
    pub refills: Counter,
}

impl Aim {
    /// Build from configuration.
    pub fn new(cfg: &AimConfig) -> Self {
        Aim {
            array: SetAssoc::with_entries(cfg.entries, cfg.ways),
            backing: HashMap::new(),
            entry_bytes: cfg.entry_bytes,
            latency: cfg.latency,
            accesses: Counter::default(),
            hits: Counter::default(),
            misses: Counter::default(),
            spills: Counter::default(),
            refills: Counter::default(),
        }
    }

    /// Make `line`'s entry resident (allocating an empty one if truly
    /// new), possibly refilling from or spilling to the DRAM table.
    pub fn ensure(&mut self, line: LineAddr) -> AimOutcome {
        self.accesses.inc();
        if self.array.contains(line.0) {
            self.hits.inc();
            // Touch for recency.
            let _ = self.array.get_mut(line.0);
            return AimOutcome {
                hit: true,
                ..Default::default()
            };
        }
        self.misses.inc();
        let (entry, refilled) = match self.backing.remove(&line.0) {
            Some(m) => (m, true),
            None => (MetaMap::new(), false),
        };
        if refilled {
            self.refills.inc();
        }
        let mut spilled = false;
        if let Some((victim, vmeta)) = self.array.insert(line.0, entry) {
            if !vmeta.is_empty() {
                self.backing.insert(victim, vmeta);
                self.spills.inc();
                spilled = true;
            }
        }
        AimOutcome {
            hit: false,
            refilled,
            spilled,
        }
    }

    /// The resident entry for `line`. Panics if not ensured first.
    pub fn entry(&mut self, line: LineAddr) -> &mut MetaMap {
        self.array
            .get_mut(line.0)
            .expect("AIM entry must be ensured before use")
    }

    /// Scrub one core's bits for `line`, wherever the entry lives
    /// (resident or spilled). Returns true if bits were present.
    pub fn clear_core(&mut self, line: LineAddr, core: rce_common::CoreId) -> bool {
        self.accesses.inc();
        if let Some(m) = self.array.get_mut(line.0) {
            self.hits.inc();
            return m.clear_core(core);
        }
        self.misses.inc();
        if let Some(m) = self.backing.get_mut(&line.0) {
            let had = m.clear_core(core);
            if m.is_empty() {
                self.backing.remove(&line.0);
            }
            return had;
        }
        false
    }

    /// Drop dead entries everywhere (housekeeping; free of model cost
    /// because region tags already neutralize stale bits — see
    /// DESIGN.md).
    pub fn prune(&mut self, live: impl Fn(rce_common::CoreId, rce_common::RegionId) -> bool) {
        for (_, m) in self.array.iter_mut() {
            m.prune(&live);
        }
        self.backing.retain(|_, m| {
            m.prune(&live);
            !m.is_empty()
        });
    }

    /// Resident entry count.
    pub fn resident(&self) -> usize {
        self.array.len()
    }

    /// Spilled entry count.
    pub fn spilled_entries(&self) -> usize {
        self.backing.len()
    }

    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.as_f64() / total as f64
        }
    }

    /// `(accesses, hits, misses, spills)` for reports.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.accesses.get(),
            self.hits.get(),
            self.misses.get(),
            self.spills.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::AccessType;
    use rce_common::{CoreId, RegionId, WordIdx, WordMask};

    fn small_aim() -> Aim {
        Aim::new(&AimConfig {
            entries: 8,
            ways: 2,
            latency: 4,
            entry_bytes: 16,
        })
    }

    #[test]
    fn ensure_then_entry() {
        let mut a = small_aim();
        let o = a.ensure(LineAddr(1));
        assert!(!o.hit && !o.refilled && !o.spilled);
        a.entry(LineAddr(1)).record(
            CoreId(0),
            RegionId(1),
            AccessType::Write,
            WordMask::single(WordIdx(0)),
        );
        let o = a.ensure(LineAddr(1));
        assert!(o.hit);
        assert!(a.hit_rate() > 0.0);
    }

    #[test]
    fn spill_and_refill_roundtrip() {
        let mut a = small_aim(); // 4 sets x 2 ways
                                 // Fill set 0 (lines 0, 4) with live metadata, then overflow it.
        for l in [0u64, 4] {
            a.ensure(LineAddr(l));
            a.entry(LineAddr(l))
                .record(CoreId(0), RegionId(1), AccessType::Read, WordMask::FULL);
        }
        let o = a.ensure(LineAddr(8)); // same set, evicts LRU (line 0)
        assert!(o.spilled);
        assert_eq!(a.spilled_entries(), 1);
        // Touching line 0 again refills from backing.
        let o = a.ensure(LineAddr(0));
        assert!(o.refilled);
        assert!(
            !a.entry(LineAddr(0)).is_empty(),
            "metadata survived the spill"
        );
        assert!(a.spilled_entries() <= 1);
    }

    #[test]
    fn empty_victims_are_not_spilled() {
        let mut a = small_aim();
        for l in [0u64, 4, 8] {
            a.ensure(LineAddr(l)); // all empty entries
        }
        assert_eq!(a.spills.get(), 0);
        assert_eq!(a.spilled_entries(), 0);
    }

    #[test]
    fn clear_core_resident_and_spilled() {
        let mut a = small_aim();
        a.ensure(LineAddr(3));
        a.entry(LineAddr(3)).record(
            CoreId(2),
            RegionId(5),
            AccessType::Write,
            WordMask::single(WordIdx(1)),
        );
        assert!(a.clear_core(LineAddr(3), CoreId(2)));
        assert!(!a.clear_core(LineAddr(3), CoreId(2)));

        // Spilled path.
        a.entry(LineAddr(3)).record(
            CoreId(1),
            RegionId(9),
            AccessType::Read,
            WordMask::single(WordIdx(0)),
        );
        a.ensure(LineAddr(7));
        a.ensure(LineAddr(11)); // set 3: 3, 7, 11 -> spills line 3
        assert_eq!(a.spilled_entries(), 1);
        assert!(a.clear_core(LineAddr(3), CoreId(1)));
        assert_eq!(a.spilled_entries(), 0, "empty spilled entries are dropped");
    }

    #[test]
    fn prune_drops_dead_metadata() {
        let mut a = small_aim();
        a.ensure(LineAddr(1));
        a.entry(LineAddr(1))
            .record(CoreId(0), RegionId(1), AccessType::Write, WordMask::FULL);
        a.prune(|_, _| false);
        assert!(a.entry(LineAddr(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "ensured")]
    fn entry_requires_ensure() {
        let mut a = small_aim();
        let _ = a.entry(LineAddr(42));
    }
}
