//! Conflict forensics: provenance records and heatmaps for delivered
//! exceptions.
//!
//! A counter tells you *that* conflicts happened; this layer tells you
//! *where and why*. When [`rce_common::ForensicsConfig`] is on, the
//! machine feeds every materialized exception (pre-dedup) into the
//! heatmaps and captures a full [`ConflictRecord`] for every exception
//! it actually delivers: both access endpoints, the engine's
//! [`DetectPath`] (metadata placement, detection site, AIM state at
//! detection time), and a bounded window of recent trace events that
//! touched the conflicting line. Everything aggregates into a
//! [`ForensicsReport`] that rides `SimReport.forensics` — omitted
//! byte-for-byte when the layer is off, like every other observability
//! field.
//!
//! Invariant pinned by tests: the heatmap totals count *materialized*
//! detections, so the sum over any heatmap equals the detector's
//! `conflict_checks_hit` counter, while `delivered` equals
//! `SimReport.exceptions.len()`.

use crate::exception::ConflictException;
use crate::meta::AimOutcome;
use rce_common::obs::{ForensicsConfig, SimEvent, Tracer};
use rce_common::{
    impl_json_struct, impl_json_unit_enum, Histogram, LineMap, LineTable, MetaPlacement,
};
use std::collections::BTreeMap;

/// Where the opposing access bits lived when the conflict surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectSite {
    /// Bits riding the requester's L1 line (merged from sharers'
    /// acks / owner downgrades): the MESI family's common case.
    L1Bits,
    /// Bits displaced out of every L1 and fetched back from the
    /// metadata backend during this access (CE/CE+ displaced path).
    DisplacedFetch,
    /// ARC's LLC-side registration check against the line's metadata
    /// entry.
    Registration,
}

impl_json_unit_enum!(DetectSite {
    L1Bits,
    DisplacedFetch,
    Registration,
});

impl DetectSite {
    /// Human-readable phrase for `paper explain`.
    pub fn describe(self) -> &'static str {
        match self {
            DetectSite::L1Bits => "bits riding the L1 line",
            DetectSite::DisplacedFetch => "displaced bits fetched from the metadata store",
            DetectSite::Registration => "LLC-side registration check",
        }
    }
}

/// The metadata path one detection went through: which placement was
/// consulted, at which site, and what the AIM had to do (if one was
/// involved in this access).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectPath {
    /// The engine's metadata placement.
    pub placement: MetaPlacement,
    /// Where the opposing bits were found.
    pub site: DetectSite,
    /// AIM hit/miss/spill state at detection time; `None` when no AIM
    /// lookup was on this access's path.
    pub aim: Option<AimOutcome>,
}

impl_json_struct!(DetectPath {
    placement,
    site,
    aim,
});

impl DetectPath {
    /// One-line summary for `paper explain`.
    pub fn describe(&self) -> String {
        let mut s = format!("{} metadata, {}", self.placement, self.site.describe());
        if let Some(o) = self.aim {
            s.push_str(if o.hit { ", AIM hit" } else { ", AIM miss" });
            if o.refilled {
                s.push_str(" (refilled from DRAM)");
            }
            if o.spilled {
                s.push_str(", victim spilled");
            }
        }
        s
    }
}

/// One delivered exception with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictRecord {
    /// The exception itself: both endpoints (core, region serial,
    /// access type), the word address, and the delivery cycle.
    pub exception: ConflictException,
    /// How the engine found it.
    pub path: DetectPath,
    /// Recent trace events touching the conflicting line, oldest
    /// first, bounded by `ForensicsConfig::recent_window`.
    pub recent: Vec<SimEvent>,
}

impl_json_struct!(ConflictRecord {
    exception,
    path,
    recent,
});

/// Conflict count for one 64-byte line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineHeat {
    /// Line index.
    pub line: u64,
    /// Materialized detections on this line.
    pub conflicts: u64,
}

impl_json_struct!(LineHeat { line, conflicts });

/// Conflict count for one pair of cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairHeat {
    /// Lower core ID of the pair.
    pub core_a: u16,
    /// Higher core ID of the pair.
    pub core_b: u16,
    /// Materialized detections between the pair.
    pub conflicts: u64,
}

impl_json_struct!(PairHeat {
    core_a,
    core_b,
    conflicts,
});

/// Conflict count for one region serial (each endpoint region of a
/// detection is charged once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionHeat {
    /// Region serial.
    pub region: u64,
    /// Detection endpoints in this region.
    pub conflicts: u64,
}

impl_json_struct!(RegionHeat { region, conflicts });

/// The forensics section of a `SimReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsReport {
    /// Every materialized detection, pre-dedup (equals the engines'
    /// `conflict_checks_hit` counter).
    pub total_detections: u64,
    /// Deduplicated exceptions actually delivered (equals
    /// `SimReport.exceptions.len()`).
    pub delivered: u64,
    /// Delivered exceptions whose full record was dropped to the
    /// `max_records` bound (their heatmap contributions remain).
    pub truncated_records: u64,
    /// Full provenance records, delivery order.
    pub records: Vec<ConflictRecord>,
    /// Per-line conflict counts, hottest first (ties by line).
    pub line_heatmap: Vec<LineHeat>,
    /// Per-core-pair conflict counts, hottest first.
    pub core_pair_heatmap: Vec<PairHeat>,
    /// Per-region detection-endpoint counts, hottest first.
    pub region_heatmap: Vec<RegionHeat>,
    /// Completed-region lifetimes in cycles.
    pub region_lifetime: Histogram,
}

impl_json_struct!(ForensicsReport {
    total_detections,
    delivered,
    truncated_records,
    records,
    line_heatmap,
    core_pair_heatmap,
    region_heatmap,
    region_lifetime,
});

impl ForensicsReport {
    /// The `k` hottest conflict lines.
    pub fn hottest_lines(&self, k: usize) -> &[LineHeat] {
        &self.line_heatmap[..k.min(self.line_heatmap.len())]
    }

    /// The `k` hottest core pairs.
    pub fn hottest_pairs(&self, k: usize) -> &[PairHeat] {
        &self.core_pair_heatmap[..k.min(self.core_pair_heatmap.len())]
    }

    /// Sum over the line heatmap (equals `total_detections`).
    pub fn heatmap_total(&self) -> u64 {
        self.line_heatmap.iter().map(|h| h.conflicts).sum()
    }
}

/// The in-run collector the machine drives.
///
/// Line heat is on the hot path (charged once per materialized
/// detection), so it accumulates in a flat [`LineMap`] keyed by
/// interned line ids rather than an ordered map; `finish` re-sorts by
/// (count, line), which is a total order over distinct lines, so the
/// report is unchanged. Pair and region heat stay ordered maps — they
/// are tiny and off the hot path.
#[derive(Debug)]
pub struct Forensics {
    cfg: ForensicsConfig,
    total: u64,
    delivered: u64,
    truncated: u64,
    records: Vec<ConflictRecord>,
    lines: LineTable,
    line_heat: LineMap<u64>,
    pair_heat: BTreeMap<(u16, u16), u64>,
    region_heat: BTreeMap<u64, u64>,
    region_lifetime: Histogram,
}

impl Forensics {
    /// Fresh collector.
    pub fn new(cfg: ForensicsConfig) -> Self {
        Forensics {
            cfg,
            total: 0,
            delivered: 0,
            truncated: 0,
            records: Vec::new(),
            lines: LineTable::new(),
            line_heat: LineMap::new(),
            pair_heat: BTreeMap::new(),
            region_heat: BTreeMap::new(),
            region_lifetime: Histogram::new(),
        }
    }

    /// Feed one materialized detection (called for *every* exception an
    /// access raises, before the machine's delivery dedup, so heatmap
    /// totals match the detector's counter).
    pub fn observe(&mut self, ex: &ConflictException) {
        self.total += 1;
        let id = self.lines.intern(ex.word_addr.line());
        *self.line_heat.slot(id) += 1;
        *self
            .pair_heat
            .entry((ex.a.core.0, ex.b.core.0))
            .or_insert(0) += 1;
        *self.region_heat.entry(ex.a.region.0).or_insert(0) += 1;
        *self.region_heat.entry(ex.b.region.0).or_insert(0) += 1;
    }

    /// Capture a delivered (deduplicated) exception's full record.
    /// `recent` is the caller-built event window for the line.
    pub fn deliver(&mut self, ex: ConflictException, path: DetectPath, recent: Vec<SimEvent>) {
        self.delivered += 1;
        if self.records.len() < self.cfg.max_records {
            self.records.push(ConflictRecord {
                exception: ex,
                path,
                recent,
            });
        } else {
            self.truncated += 1;
        }
    }

    /// Build the recent-event window for a delivered exception: the
    /// newest `recent_window` tracer events whose address span overlaps
    /// the conflicting line, returned oldest first by cycle (engines
    /// emit substrate events mid-access, so ring order alone is not
    /// cycle order).
    pub fn window(&self, tracer: &Tracer, line: u64) -> Vec<SimEvent> {
        let (lo, hi) = (line * 64, line * 64 + 64);
        let mut v: Vec<SimEvent> = tracer
            .events()
            .rev()
            .filter(|e| matches!(e.kind.addr_span(), Some((a, b)) if a < hi && b > lo))
            .take(self.cfg.recent_window)
            .cloned()
            .collect();
        v.reverse();
        v.sort_by_key(|e| e.cycle);
        v
    }

    /// Record one completed region's lifetime in cycles.
    pub fn region_ended(&mut self, lifetime: u64) {
        self.region_lifetime.record(lifetime);
    }

    /// Finish: sort the heatmaps hottest-first (ties by key, so the
    /// output is deterministic) and assemble the report.
    pub fn finish(self) -> ForensicsReport {
        fn sorted<K: Copy + Ord, T>(m: BTreeMap<K, u64>, build: impl Fn(K, u64) -> T) -> Vec<T> {
            let mut v: Vec<(K, u64)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            v.into_iter().map(|(k, n)| build(k, n)).collect()
        }
        // Flat accumulation stores lines in first-touch order; the
        // (count desc, line asc) sort is a total order over distinct
        // lines, so the result matches the old ordered-map path.
        let mut line_heat: Vec<(u64, u64)> = self
            .lines
            .ids()
            .map(|id| {
                (
                    self.lines.addr(id).0,
                    self.line_heat.get(id).copied().unwrap_or(0),
                )
            })
            .collect();
        line_heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ForensicsReport {
            total_detections: self.total,
            delivered: self.delivered,
            truncated_records: self.truncated,
            records: self.records,
            line_heatmap: line_heat
                .into_iter()
                .map(|(line, conflicts)| LineHeat { line, conflicts })
                .collect(),
            core_pair_heatmap: sorted(self.pair_heat, |(core_a, core_b), conflicts| PairHeat {
                core_a,
                core_b,
                conflicts,
            }),
            region_heatmap: sorted(self.region_heat, |region, conflicts| RegionHeat {
                region,
                conflicts,
            }),
            region_lifetime: self.region_lifetime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::{AccessType, ConflictSide};
    use rce_common::obs::{EventKind, TraceConfig};
    use rce_common::{Addr, CoreId, Cycles, RegionId};

    fn ex(a: u16, b: u16, word_addr: u64, at: u64) -> ConflictException {
        ConflictException::new(
            ConflictSide {
                core: CoreId(a),
                region: RegionId(a as u64 + 10),
                kind: AccessType::Write,
            },
            ConflictSide {
                core: CoreId(b),
                region: RegionId(b as u64 + 10),
                kind: AccessType::Read,
            },
            Addr(word_addr),
            Cycles(at),
        )
    }

    fn path() -> DetectPath {
        DetectPath {
            placement: MetaPlacement::Aim,
            site: DetectSite::Registration,
            aim: Some(AimOutcome {
                hit: true,
                refilled: false,
                spilled: false,
            }),
        }
    }

    #[test]
    fn heatmaps_count_every_observation() {
        let mut f = Forensics::new(ForensicsConfig::default());
        // Same conflict observed twice (e.g. by two coherence actions),
        // plus one on another line.
        f.observe(&ex(0, 1, 64, 5));
        f.observe(&ex(0, 1, 64, 9));
        f.observe(&ex(2, 3, 256, 7));
        f.deliver(ex(0, 1, 64, 5), path(), vec![]);
        f.deliver(ex(2, 3, 256, 7), path(), vec![]);
        let r = f.finish();
        assert_eq!(r.total_detections, 3);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.heatmap_total(), 3, "heatmap counts pre-dedup detections");
        assert_eq!(
            r.line_heatmap[0],
            LineHeat {
                line: 1,
                conflicts: 2
            }
        );
        assert_eq!(
            r.core_pair_heatmap[0],
            PairHeat {
                core_a: 0,
                core_b: 1,
                conflicts: 2
            }
        );
        // Each endpoint region charged once per observation.
        let region_total: u64 = r.region_heatmap.iter().map(|h| h.conflicts).sum();
        assert_eq!(region_total, 6);
    }

    #[test]
    fn records_are_bounded_and_truncation_is_counted() {
        let mut f = Forensics::new(ForensicsConfig {
            recent_window: 4,
            max_records: 2,
        });
        for i in 0..5u64 {
            let e = ex(0, 1, i * 8, i);
            f.observe(&e);
            f.deliver(e, path(), vec![]);
        }
        let r = f.finish();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.truncated_records, 3);
        assert_eq!(r.delivered, 5);
        assert_eq!(r.heatmap_total(), 5, "truncation never drops heat");
    }

    #[test]
    fn window_filters_by_line_and_bounds_length() {
        let f = Forensics::new(ForensicsConfig {
            recent_window: 2,
            max_records: 8,
        });
        let mut t = Tracer::new(TraceConfig::default());
        for i in 0..6u64 {
            t.emit(SimEvent {
                cycle: i,
                core: Some(0),
                region: None,
                kind: EventKind::MemAccess {
                    // Alternate between line 1 and line 9.
                    addr: if i % 2 == 0 { 64 } else { 9 * 64 },
                    write: true,
                    exceptions: 0,
                },
            });
        }
        let w = f.window(&t, 1);
        assert_eq!(w.len(), 2, "window is bounded");
        assert!(
            w.windows(2).all(|p| p[0].cycle < p[1].cycle),
            "oldest first"
        );
        for e in &w {
            let (a, b) = e.kind.addr_span().unwrap();
            assert!(a < 128 && b > 64, "only line-1 events");
        }
        assert!(f.window(&t, 500).is_empty());
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut f = Forensics::new(ForensicsConfig::default());
        let e = ex(1, 3, 128, 42);
        f.observe(&e);
        f.deliver(
            e,
            DetectPath {
                placement: MetaPlacement::Dram,
                site: DetectSite::DisplacedFetch,
                aim: None,
            },
            vec![SimEvent {
                cycle: 40,
                core: Some(1),
                region: Some(11),
                kind: EventKind::MemAccess {
                    addr: 128,
                    write: true,
                    exceptions: 0,
                },
            }],
        );
        f.region_ended(777);
        let r = f.finish();
        let text = rce_common::json::to_string(&r);
        let back: ForensicsReport = rce_common::json::from_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.records[0].path.site, DetectSite::DisplacedFetch);
        assert!(back.records[0].path.aim.is_none());
        assert_eq!(back.region_lifetime.count(), 1);
    }

    #[test]
    fn describe_paths() {
        let p = path();
        let s = p.describe();
        assert!(s.contains("AIM hit"), "{s}");
        assert!(s.contains("registration"), "{s}");
        let d = DetectPath {
            placement: MetaPlacement::Aim,
            site: DetectSite::DisplacedFetch,
            aim: Some(AimOutcome {
                hit: false,
                refilled: true,
                spilled: true,
            }),
        };
        let s = d.describe();
        assert!(s.contains("AIM miss") && s.contains("refilled") && s.contains("spilled"));
    }
}
