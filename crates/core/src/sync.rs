//! Synchronization managers: FIFO mutexes and global barriers.
//!
//! Locks and barriers are modeled functionally (grant queues and
//! arrival counts) with fixed hardware-ish latencies, rather than as
//! memory accesses — the engines under study differ on *data*
//! accesses, and modeling synchronization through the coherence
//! protocol would entangle the designs with the semantics of atomics,
//! which the paper holds constant across designs. Lock handoff and
//! barrier release latencies are charged identically to every design.

use rce_common::{BarrierId, CoreId, Cycles, LockId};

/// Cycles charged for an uncontended acquire (atomic RMW round trip).
pub const ACQUIRE_LATENCY: u64 = 40;
/// Cycles from a release to the next waiter resuming.
pub const HANDOFF_LATENCY: u64 = 60;
/// Cycles from the last barrier arrival to every core resuming.
pub const BARRIER_RELEASE_LATENCY: u64 = 100;

/// FIFO mutexes.
#[derive(Debug, Clone)]
pub struct LockManager {
    /// holder + the time it acquired.
    holders: Vec<Option<CoreId>>,
    /// FIFO wait queues.
    waiters: Vec<Vec<CoreId>>,
    /// Total contended acquires (diagnostics).
    pub contended: u64,
}

/// Result of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Granted; the core resumes at the given time.
    Granted(Cycles),
    /// The core must block until a release hands the lock over.
    Blocked,
}

impl LockManager {
    /// Build for `n_locks` locks.
    pub fn new(n_locks: u32) -> Self {
        LockManager {
            holders: vec![None; n_locks as usize],
            waiters: vec![Vec::new(); n_locks as usize],
            contended: 0,
        }
    }

    /// Try to acquire at `now`.
    pub fn acquire(&mut self, lock: LockId, core: CoreId, now: Cycles) -> AcquireOutcome {
        let i = lock.index();
        match self.holders[i] {
            None => {
                self.holders[i] = Some(core);
                AcquireOutcome::Granted(Cycles(now.0 + ACQUIRE_LATENCY))
            }
            Some(h) => {
                assert_ne!(h, core, "recursive acquire must be caught by validation");
                self.contended += 1;
                self.waiters[i].push(core);
                AcquireOutcome::Blocked
            }
        }
    }

    /// Release at `now`; if a waiter exists it becomes the holder and
    /// `(waiter, resume_time)` is returned.
    pub fn release(&mut self, lock: LockId, core: CoreId, now: Cycles) -> Option<(CoreId, Cycles)> {
        let i = lock.index();
        assert_eq!(
            self.holders[i],
            Some(core),
            "release by non-holder must be caught by validation"
        );
        if self.waiters[i].is_empty() {
            self.holders[i] = None;
            None
        } else {
            let next = self.waiters[i].remove(0);
            self.holders[i] = Some(next);
            Some((next, Cycles(now.0 + HANDOFF_LATENCY)))
        }
    }

    /// Current holder (diagnostics).
    pub fn holder(&self, lock: LockId) -> Option<CoreId> {
        self.holders[lock.index()]
    }
}

/// Global barriers: every core participates in every barrier episode.
#[derive(Debug, Clone)]
pub struct BarrierManager {
    n_cores: usize,
    arrived: Vec<Vec<CoreId>>,
    /// Completed barrier episodes (diagnostics).
    pub episodes: u64,
}

/// Result of a barrier arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Not everyone is here yet; the core blocks.
    Blocked,
    /// This arrival completed the barrier: all listed cores resume at
    /// the given time.
    Released(Vec<CoreId>, Cycles),
}

impl BarrierManager {
    /// Build for `n_cores` cores and `n_barriers` barrier objects.
    pub fn new(n_cores: usize, n_barriers: u32) -> Self {
        BarrierManager {
            n_cores,
            arrived: vec![Vec::new(); n_barriers as usize],
            episodes: 0,
        }
    }

    /// A core arrives at `bar` at time `now`.
    pub fn arrive(&mut self, bar: BarrierId, core: CoreId, now: Cycles) -> BarrierOutcome {
        let q = &mut self.arrived[bar.index()];
        assert!(
            !q.contains(&core),
            "double arrival at {bar} by {core} without release"
        );
        q.push(core);
        if q.len() == self.n_cores {
            self.episodes += 1;
            let released = std::mem::take(q);
            BarrierOutcome::Released(released, Cycles(now.0 + BARRIER_RELEASE_LATENCY))
        } else {
            BarrierOutcome::Blocked
        }
    }

    /// How many cores are currently waiting at `bar`.
    pub fn waiting(&self, bar: BarrierId) -> usize {
        self.arrived[bar.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_grants() {
        let mut lm = LockManager::new(1);
        match lm.acquire(LockId(0), CoreId(0), Cycles(10)) {
            AcquireOutcome::Granted(t) => assert_eq!(t.0, 10 + ACQUIRE_LATENCY),
            _ => panic!("should grant"),
        }
        assert_eq!(lm.holder(LockId(0)), Some(CoreId(0)));
    }

    #[test]
    fn contended_acquire_blocks_then_hands_off_fifo() {
        let mut lm = LockManager::new(1);
        lm.acquire(LockId(0), CoreId(0), Cycles(0));
        assert_eq!(
            lm.acquire(LockId(0), CoreId(1), Cycles(5)),
            AcquireOutcome::Blocked
        );
        assert_eq!(
            lm.acquire(LockId(0), CoreId(2), Cycles(6)),
            AcquireOutcome::Blocked
        );
        assert_eq!(lm.contended, 2);
        // FIFO: core 1 first.
        let (next, t) = lm.release(LockId(0), CoreId(0), Cycles(100)).unwrap();
        assert_eq!(next, CoreId(1));
        assert_eq!(t.0, 100 + HANDOFF_LATENCY);
        assert_eq!(lm.holder(LockId(0)), Some(CoreId(1)));
        let (next, _) = lm.release(LockId(0), CoreId(1), Cycles(200)).unwrap();
        assert_eq!(next, CoreId(2));
        assert!(lm.release(LockId(0), CoreId(2), Cycles(300)).is_none());
        assert_eq!(lm.holder(LockId(0)), None);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut lm = LockManager::new(1);
        lm.acquire(LockId(0), CoreId(0), Cycles(0));
        lm.release(LockId(0), CoreId(1), Cycles(1));
    }

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut bm = BarrierManager::new(3, 1);
        assert_eq!(
            bm.arrive(BarrierId(0), CoreId(0), Cycles(10)),
            BarrierOutcome::Blocked
        );
        assert_eq!(
            bm.arrive(BarrierId(0), CoreId(1), Cycles(20)),
            BarrierOutcome::Blocked
        );
        assert_eq!(bm.waiting(BarrierId(0)), 2);
        match bm.arrive(BarrierId(0), CoreId(2), Cycles(30)) {
            BarrierOutcome::Released(cores, t) => {
                assert_eq!(cores.len(), 3);
                assert_eq!(t.0, 30 + BARRIER_RELEASE_LATENCY);
            }
            _ => panic!("should release"),
        }
        assert_eq!(bm.episodes, 1);
        assert_eq!(bm.waiting(BarrierId(0)), 0);
    }

    #[test]
    fn barrier_reusable_across_episodes() {
        let mut bm = BarrierManager::new(2, 1);
        bm.arrive(BarrierId(0), CoreId(0), Cycles(0));
        bm.arrive(BarrierId(0), CoreId(1), Cycles(1));
        bm.arrive(BarrierId(0), CoreId(1), Cycles(2));
        match bm.arrive(BarrierId(0), CoreId(0), Cycles(3)) {
            BarrierOutcome::Released(_, _) => {}
            _ => panic!("second episode should release"),
        }
        assert_eq!(bm.episodes, 2);
    }

    #[test]
    fn single_core_barrier_releases_immediately() {
        let mut bm = BarrierManager::new(1, 1);
        match bm.arrive(BarrierId(0), CoreId(0), Cycles(5)) {
            BarrierOutcome::Released(cores, _) => assert_eq!(cores, vec![CoreId(0)]),
            _ => panic!(),
        }
    }
}
