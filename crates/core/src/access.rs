//! Access metadata: per-line, per-core, per-word read/write bits.
//!
//! A [`MetaMap`] is the unit of conflict-detection state attached to a
//! cache line wherever it lives (an L1 line, the in-memory metadata
//! table, an AIM entry). Every entry is tagged with the region that
//! created it; entries from regions that have since ended are treated
//! as cleared (region tags make stale metadata harmless while the
//! engines still pay the modeled cost of explicitly scrubbing it —
//! see DESIGN.md).

use crate::exception::{AccessType, ConflictSide};
use rce_common::{CoreId, RegionId, WordMask};

/// One core's access bits for one line within one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaEntry {
    /// Which core.
    pub core: CoreId,
    /// The region the bits belong to. Bits are live only while this
    /// is the core's current region.
    pub region: RegionId,
    /// Words read.
    pub read: WordMask,
    /// Words written.
    pub written: WordMask,
}

impl MetaEntry {
    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.read.is_empty() && self.written.is_empty()
    }
}

/// All cores' access bits for one line.
///
/// Stored as a small vector (cores touching one line concurrently are
/// few); lookups are linear scans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaMap {
    entries: Vec<MetaEntry>,
}

/// The result of checking an access against a [`MetaMap`]: the
/// conflicting opposing sides and the overlapping words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictCheck {
    /// `(opposing side, overlapping words)` pairs.
    pub conflicts: Vec<(ConflictSide, WordMask)>,
}

impl ConflictCheck {
    /// No conflicts.
    pub fn empty() -> Self {
        ConflictCheck {
            conflicts: Vec::new(),
        }
    }

    /// True if any conflict was found.
    pub fn any(&self) -> bool {
        !self.conflicts.is_empty()
    }
}

impl MetaMap {
    /// Empty map.
    pub fn new() -> Self {
        MetaMap::default()
    }

    /// True if there are no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries (including possibly-stale ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `core`, if present.
    pub fn get(&self, core: CoreId) -> Option<&MetaEntry> {
        self.entries.iter().find(|e| e.core == core)
    }

    /// Record an access by `core` in `region`: set `mask` bits of the
    /// given kind. If the core's existing entry is from an older
    /// region it is replaced (its bits are dead by definition).
    pub fn record(&mut self, core: CoreId, region: RegionId, kind: AccessType, mask: WordMask) {
        match self.entries.iter_mut().find(|e| e.core == core) {
            Some(e) => {
                if e.region != region {
                    e.region = region;
                    e.read = WordMask::EMPTY;
                    e.written = WordMask::EMPTY;
                }
                match kind {
                    AccessType::Read => e.read |= mask,
                    AccessType::Write => e.written |= mask,
                }
            }
            None => {
                let (read, written) = match kind {
                    AccessType::Read => (mask, WordMask::EMPTY),
                    AccessType::Write => (WordMask::EMPTY, mask),
                };
                self.entries.push(MetaEntry {
                    core,
                    region,
                    read,
                    written,
                });
            }
        }
    }

    /// Check an access (`core`, `kind`, `mask`) against every *live*
    /// opposing entry. `live` decides whether an entry's region is
    /// still the owning core's current region.
    pub fn check(
        &self,
        core: CoreId,
        kind: AccessType,
        mask: WordMask,
        live: impl Fn(CoreId, RegionId) -> bool,
    ) -> ConflictCheck {
        let mut conflicts = Vec::new();
        for e in &self.entries {
            if e.core == core || !live(e.core, e.region) {
                continue;
            }
            // A write conflicts with remote reads and writes; a read
            // conflicts with remote writes only. When the remote
            // region both read and wrote a word, *both* identities are
            // reported: conflict identity follows set-intersection
            // semantics (each overlapping kind pair is one conflict),
            // which is what makes eager (CE) and lazy/self-invalidation
            // (ARC) detection agree — a stale re-read in ARC dedups
            // against the identity created when the remote write first
            // met the read bit.
            let (write_part, read_part) = match kind {
                AccessType::Write => (mask.intersect(e.written), mask.intersect(e.read)),
                AccessType::Read => (mask.intersect(e.written), WordMask::EMPTY),
            };
            if !write_part.is_empty() {
                conflicts.push((
                    ConflictSide {
                        core: e.core,
                        region: e.region,
                        kind: AccessType::Write,
                    },
                    write_part,
                ));
            }
            if !read_part.is_empty() {
                conflicts.push((
                    ConflictSide {
                        core: e.core,
                        region: e.region,
                        kind: AccessType::Read,
                    },
                    read_part,
                ));
            }
        }
        ConflictCheck { conflicts }
    }

    /// Merge another map into this one (entry-wise union; newer region
    /// wins within a core).
    pub fn merge(&mut self, other: &MetaMap) {
        for e in &other.entries {
            match self.entries.iter_mut().find(|m| m.core == e.core) {
                Some(m) => {
                    use std::cmp::Ordering;
                    match m.region.cmp(&e.region) {
                        Ordering::Less => *m = *e,
                        Ordering::Equal => {
                            m.read |= e.read;
                            m.written |= e.written;
                        }
                        Ordering::Greater => {}
                    }
                }
                None => self.entries.push(*e),
            }
        }
    }

    /// Remove `core`'s entry (explicit scrub), returning whether one
    /// was present.
    pub fn clear_core(&mut self, core: CoreId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.core != core);
        self.entries.len() != before
    }

    /// Drop entries that are no longer live (housekeeping to bound
    /// growth in long simulations).
    pub fn prune(&mut self, live: impl Fn(CoreId, RegionId) -> bool) {
        self.entries.retain(|e| live(e.core, e.region));
    }

    /// Iterate all entries (live or stale).
    pub fn iter(&self) -> impl Iterator<Item = &MetaEntry> {
        self.entries.iter()
    }

    /// True if any *live* bits exist for a core other than `except`.
    pub fn any_live_other(&self, except: CoreId, live: impl Fn(CoreId, RegionId) -> bool) -> bool {
        self.entries
            .iter()
            .any(|e| e.core != except && !e.is_empty() && live(e.core, e.region))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::WordIdx;

    const fn c(i: u16) -> CoreId {
        CoreId(i)
    }
    const fn r(i: u64) -> RegionId {
        RegionId(i)
    }
    fn w(i: u8) -> WordMask {
        WordMask::single(WordIdx(i))
    }
    fn live_all(_: CoreId, _: RegionId) -> bool {
        true
    }

    #[test]
    fn record_and_get() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Read, w(2));
        m.record(c(0), r(1), AccessType::Write, w(3));
        let e = m.get(c(0)).unwrap();
        assert_eq!(e.read, w(2));
        assert_eq!(e.written, w(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn newer_region_replaces_stale_bits() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Write, w(0));
        m.record(c(0), r(2), AccessType::Read, w(1));
        let e = m.get(c(0)).unwrap();
        assert_eq!(e.region, r(2));
        assert!(e.written.is_empty(), "old region's bits are dead");
        assert_eq!(e.read, w(1));
    }

    #[test]
    fn write_read_conflict_detected() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Read, w(4));
        let chk = m.check(c(1), AccessType::Write, w(4), live_all);
        assert!(chk.any());
        assert_eq!(chk.conflicts[0].0.core, c(0));
        assert_eq!(chk.conflicts[0].0.kind, AccessType::Read);
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Read, w(4));
        let chk = m.check(c(1), AccessType::Read, w(4), live_all);
        assert!(!chk.any());
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Write, w(7));
        let chk = m.check(c(1), AccessType::Write, w(7), live_all);
        assert!(chk.any());
        assert_eq!(chk.conflicts[0].0.kind, AccessType::Write);
    }

    #[test]
    fn disjoint_words_do_not_conflict() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Write, w(0));
        let chk = m.check(c(1), AccessType::Write, w(1), live_all);
        assert!(!chk.any());
    }

    #[test]
    fn own_bits_never_conflict() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Write, w(0));
        let chk = m.check(c(0), AccessType::Write, w(0), live_all);
        assert!(!chk.any());
    }

    #[test]
    fn stale_entries_are_ignored_by_liveness() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Write, w(0));
        let live = |core: CoreId, region: RegionId| !(core == c(0) && region == r(1));
        let chk = m.check(c(1), AccessType::Write, w(0), live);
        assert!(!chk.any());
    }

    #[test]
    fn both_kinds_reported_when_opponent_read_and_wrote() {
        // Word both read and written by the opponent: a write against
        // it is two conflict identities (W-W and W-R). See the check()
        // comment for why this matters for lazy detection.
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Read, w(5));
        m.record(c(0), r(1), AccessType::Write, w(5));
        let chk = m.check(c(1), AccessType::Write, w(5), live_all);
        assert_eq!(chk.conflicts.len(), 2);
        let kinds: Vec<_> = chk.conflicts.iter().map(|(s, _)| s.kind).collect();
        assert!(kinds.contains(&AccessType::Write));
        assert!(kinds.contains(&AccessType::Read));
        // A read against the same map conflicts only with the write.
        let chk = m.check(c(1), AccessType::Read, w(5), live_all);
        assert_eq!(chk.conflicts.len(), 1);
        assert_eq!(chk.conflicts[0].0.kind, AccessType::Write);
    }

    #[test]
    fn merge_unions_same_region() {
        let mut a = MetaMap::new();
        a.record(c(0), r(1), AccessType::Read, w(0));
        let mut b = MetaMap::new();
        b.record(c(0), r(1), AccessType::Write, w(1));
        b.record(c(1), r(3), AccessType::Read, w(2));
        a.merge(&b);
        let e = a.get(c(0)).unwrap();
        assert_eq!(e.read, w(0));
        assert_eq!(e.written, w(1));
        assert!(a.get(c(1)).is_some());
    }

    #[test]
    fn merge_newer_region_wins() {
        let mut a = MetaMap::new();
        a.record(c(0), r(1), AccessType::Read, w(0));
        let mut b = MetaMap::new();
        b.record(c(0), r(2), AccessType::Write, w(1));
        a.merge(&b);
        let e = a.get(c(0)).unwrap();
        assert_eq!(e.region, r(2));
        assert!(e.read.is_empty());
        // And merging the older one back changes nothing.
        let mut old = MetaMap::new();
        old.record(c(0), r(1), AccessType::Read, w(3));
        a.merge(&old);
        assert_eq!(a.get(c(0)).unwrap().region, r(2));
    }

    #[test]
    fn clear_and_prune() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Read, w(0));
        m.record(c(1), r(2), AccessType::Write, w(1));
        assert!(m.clear_core(c(0)));
        assert!(!m.clear_core(c(0)));
        assert_eq!(m.len(), 1);
        m.prune(|_, _| false);
        assert!(m.is_empty());
    }

    #[test]
    fn any_live_other() {
        let mut m = MetaMap::new();
        m.record(c(0), r(1), AccessType::Read, w(0));
        assert!(m.any_live_other(c(1), live_all));
        assert!(!m.any_live_other(c(0), live_all));
        assert!(!m.any_live_other(c(1), |_, _| false));
    }
}
