//! The detection layer: region-conflict checking over access bits.
//!
//! Both coherence families funnel their conflict checks through one
//! [`Detector`]: look up the opposing bits in a [`MetaMap`] (wherever
//! the metadata layer keeps it — an L1 line's riding bits, an AIM
//! entry, the DRAM table), materialize a per-word
//! [`ConflictException`] for every overlap with a *live* region, count
//! it, and record the new access so later accesses see it. The
//! coherence layer decides *when* a check happens (on every coherence
//! action for the MESI family, on first-touch registration for ARC)
//! and *which* map is consulted; the detector owns *what a conflict
//! is*.

use crate::access::MetaMap;
use crate::exception::{ConflictException, ConflictSide};
use rce_common::{CoreId, Counter, Cycles, LineAddr, RegionId, WordMask};

/// Materialize per-word exceptions from a conflict check result.
pub(crate) fn exceptions_from(
    check: &crate::access::ConflictCheck,
    me: ConflictSide,
    line: LineAddr,
    at: Cycles,
) -> Vec<ConflictException> {
    let mut out = Vec::new();
    for (side, words) in &check.conflicts {
        for w in words.iter() {
            out.push(ConflictException::new(me, *side, line.word_addr(w), at));
        }
    }
    out
}

/// The conflict detector shared by every engine family.
///
/// Stateless apart from its exception counter: the access bits
/// themselves live in the metadata layer (or ride L1 lines), and the
/// liveness oracle is the substrate's region table.
#[derive(Debug, Default)]
pub struct Detector {
    conflicts: Counter,
}

impl Detector {
    /// Fresh detector.
    pub fn new() -> Self {
        Detector::default()
    }

    /// Check `me`'s access against the opposing bits in `entry`,
    /// record the access, and return the exceptions raised (empty when
    /// no live opposing bits overlap `dmask`). `live` is the region
    /// liveness oracle — entries of ended regions are treated as
    /// absent, which is what makes lazy scrubbing harmless.
    pub fn check_and_record(
        &mut self,
        entry: &mut MetaMap,
        me: ConflictSide,
        dmask: WordMask,
        line: LineAddr,
        at: Cycles,
        live: impl Fn(CoreId, RegionId) -> bool,
    ) -> Vec<ConflictException> {
        let chk = entry.check(me.core, me.kind, dmask, live);
        let mut exceptions = Vec::new();
        if chk.any() {
            exceptions = exceptions_from(&chk, me, line, at);
            self.conflicts.add(exceptions.len() as u64);
        }
        entry.record(me.core, me.region, me.kind, dmask);
        exceptions
    }

    /// Exceptions raised so far (the `conflict_checks_hit` counter).
    pub fn conflicts(&self) -> u64 {
        self.conflicts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::AccessType;
    use rce_common::WordIdx;

    fn side(core: u16, region: u64, kind: AccessType) -> ConflictSide {
        ConflictSide {
            core: CoreId(core),
            region: RegionId(region),
            kind,
        }
    }

    #[test]
    fn detects_and_counts_live_overlaps() {
        let mut d = Detector::new();
        let mut m = MetaMap::new();
        let w = WordMask::single(WordIdx(3));
        let none = d.check_and_record(
            &mut m,
            side(0, 1, AccessType::Write),
            w,
            LineAddr(7),
            Cycles(5),
            |_, _| true,
        );
        assert!(none.is_empty(), "first access conflicts with nothing");
        let ex = d.check_and_record(
            &mut m,
            side(1, 2, AccessType::Write),
            w,
            LineAddr(7),
            Cycles(9),
            |_, _| true,
        );
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].word_addr, LineAddr(7).word_addr(WordIdx(3)));
        assert_eq!(d.conflicts(), 1);
    }

    #[test]
    fn dead_regions_do_not_conflict() {
        let mut d = Detector::new();
        let mut m = MetaMap::new();
        let w = WordMask::single(WordIdx(0));
        let _ = d.check_and_record(
            &mut m,
            side(0, 1, AccessType::Write),
            w,
            LineAddr(1),
            Cycles(0),
            |_, _| true,
        );
        // Core 0's region 1 has ended by the time core 1 accesses.
        let ex = d.check_and_record(
            &mut m,
            side(1, 5, AccessType::Write),
            w,
            LineAddr(1),
            Cycles(1),
            |c, r| !(c == CoreId(0) && r == RegionId(1)),
        );
        assert!(ex.is_empty());
        assert_eq!(d.conflicts(), 0);
    }

    #[test]
    fn recording_happens_even_without_conflict() {
        let mut d = Detector::new();
        let mut m = MetaMap::new();
        let w = WordMask::single(WordIdx(2));
        let _ = d.check_and_record(
            &mut m,
            side(0, 1, AccessType::Read),
            w,
            LineAddr(3),
            Cycles(0),
            |_, _| true,
        );
        assert!(!m.is_empty(), "the access was recorded");
        // A second same-core access never self-conflicts.
        let ex = d.check_and_record(
            &mut m,
            side(0, 1, AccessType::Write),
            w,
            LineAddr(3),
            Cycles(1),
            |_, _| true,
        );
        assert!(ex.is_empty());
    }
}
