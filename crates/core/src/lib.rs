//! Region conflict exception engines — the paper's contribution.
//!
//! Four architectures share one machine driver and one substrate
//! (NoC + DRAM + LLC + directory):
//!
//! - [`engines::MesiFamilyEngine`] in *baseline* mode: plain MESI
//!   write-invalidation coherence, no detection. Every figure
//!   normalizes to this.
//! - The same engine in *CE* mode: Conflict Exceptions — per-word
//!   access bits ride with cache lines, are checked on every coherence
//!   action, and spill to an **in-memory** metadata table when an
//!   accessed line leaves the L1 mid-region. Region ends must scrub
//!   spilled bits in memory: the off-chip metadata tax the paper
//!   starts from.
//! - *CE+* mode: identical coherence, but spills/scrubs go to the
//!   **access information memory (AIM)** — an on-chip metadata cache at
//!   the LLC banks ([`meta`]). Off-chip metadata traffic mostly
//!   disappears (claim C1) while eager invalidation coherence plus
//!   per-message metadata piggybacks keep stressing the NoC (claim C2).
//! - [`engines::ArcEngine`]: the ARC design — coherence based on
//!   release consistency + self-invalidation (DeNovo-flavored
//!   private/shared classification, word registration at the LLC,
//!   acquire-time self-invalidation, release-time dirty-word flush),
//!   with conflict detection at the LLC-side AIM. No invalidation
//!   storms, no piggybacks (claim C3).
//!
//! [`Machine`] drives a `rce-trace` [`rce_trace::Program`] through a
//! chosen engine and produces a [`SimReport`]. An independent
//! [`oracle::Oracle`] observes the same committed access stream and
//! computes ground-truth region conflicts; differential tests require
//! every engine to detect exactly the oracle's conflict set.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod access;
pub mod detect;
pub mod engines;
pub mod exception;
pub mod fastpath;
pub mod forensics;
pub mod machine;
pub mod meta;
pub mod oracle;
pub mod protocol;
pub mod report;
pub mod sched;
pub mod sync;

pub use access::{ConflictCheck, MetaMap};
pub use detect::Detector;
pub use engines::{find_variant, ArcEngine, EngineVariant, MesiFamilyEngine, REGISTRY};
pub use exception::{AccessType, ConflictException, ExceptionPolicy};
pub use fastpath::AccessFilter;
pub use forensics::{
    ConflictRecord, DetectPath, DetectSite, Forensics, ForensicsReport, LineHeat, PairHeat,
    RegionHeat,
};
pub use machine::Machine;
pub use meta::{backend_for, AimMeta, AimOutcome, DramMeta, IdealMeta, MetaBackend, NoMeta};
pub use oracle::Oracle;
pub use protocol::{AccessResult, Engine, Substrate};
pub use report::SimReport;
pub use sched::ReadyQueue;

/// Build the engine selected by a configuration.
pub fn engine_for(cfg: &rce_common::MachineConfig) -> Box<dyn Engine> {
    use rce_common::ProtocolKind::*;
    match cfg.protocol {
        MesiBaseline | Ce | CePlus => Box::new(MesiFamilyEngine::new(cfg)),
        Arc => Box::new(ArcEngine::new(cfg)),
    }
}
