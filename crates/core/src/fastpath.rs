//! The region-epoch access filter: the fast path for repeat accesses.
//!
//! Most accesses in region-structured programs are *repeats*: the same
//! core touching words it already touched, in the same region, on a
//! line still resident in its L1. For such an access nothing can
//! change — the protocol state transition is a no-op, the metadata
//! bits are already recorded, and the detection outcome is already
//! known to be "no conflict" (conflicting accesses never arm the
//! filter, so they always re-run the slow path and re-materialize
//! their detections). The engines can therefore short-circuit the
//! whole access after the L1 lookup, replaying only the deterministic
//! L1-hit latency charge; the machine skips the oracle's per-word
//! observation for the same reason. Reports stay byte-identical — the
//! golden gate and the `fastpath_equiv` property tests pin this.
//!
//! [`AccessFilter`] is a per-core direct-mapped cache of
//! `(line, region, covered-read-mask, covered-write-mask)`:
//!
//! - **Hit** iff the slot holds the same line, tagged with the core's
//!   *current* region, and the access's raw word mask is a subset of
//!   the covered mask *of the same kind*. Raw-mask coverage implies
//!   detection-mask coverage at any granularity (at `Word` they are
//!   equal; at `Line` both widen to the full line), and for ARC it
//!   additionally guarantees the per-word dirty bits are already set.
//!   Cross-kind coverage is deliberately not honored: a first read of
//!   written words (or vice versa) can change recorded metadata and
//!   must take the slow path.
//! - **Arm** after a slow-path access that raised no exception: the
//!   covered mask of that kind grows by the access's raw mask. A
//!   region or line mismatch resets the slot first. Accesses that
//!   found conflicts never arm, so repeat conflicting accesses keep
//!   re-running detection (the forensics heatmap counts those
//!   re-materializations).
//! - **Invalidated** explicitly on every event that could change a
//!   repeat's outcome: L1 eviction of the line, any remote coherence
//!   transition touching the core's copy (invalidation, downgrade,
//!   ARC recall). Region boundaries need no hook — region IDs are
//!   globally unique ([`crate::protocol::Substrate`] never reuses
//!   one), so the region tag doubles as an epoch and a stale slot
//!   simply mismatches.
//!
//! The filter defaults on; `RCE_DISABLE_FASTPATH=1` in the environment
//! (read at engine construction) or
//! [`crate::protocol::Engine::set_fastpath`] turns it off, which CI
//! uses to prove the slow path stays correct.

use crate::exception::AccessType;
use rce_common::{CoreId, LineAddr, RegionId, WordMask};

/// Slots per core. Direct-mapped on the low line-index bits; 512 slots
/// comfortably cover an 8 KiB / 128-line L1 with room for aliasing
/// slack, at 16 KiB of filter state per core.
const SLOTS: usize = 512;

/// Tag meaning "this slot is empty".
const NO_LINE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Line index tag ([`LineAddr`]'s raw value), or [`NO_LINE`].
    line: u64,
    /// Region the covered masks were recorded in. Region IDs are
    /// globally unique, so this is also the epoch check.
    region: RegionId,
    /// Words this core has read on the line this region, conflict-free.
    read: WordMask,
    /// Words this core has written on the line this region,
    /// conflict-free.
    write: WordMask,
}

const EMPTY_SLOT: Slot = Slot {
    line: NO_LINE,
    region: RegionId(0),
    read: WordMask::EMPTY,
    write: WordMask::EMPTY,
};

/// Per-core, region-epoch-versioned filter over repeat accesses.
#[derive(Debug, Clone)]
pub struct AccessFilter {
    enabled: bool,
    /// `cores * SLOTS` slots, direct-mapped per core.
    slots: Vec<Slot>,
    lookups: u64,
    hits: u64,
}

impl AccessFilter {
    /// Build for `cores` cores. The filter starts enabled unless
    /// `RCE_DISABLE_FASTPATH` is set in the environment.
    pub fn new(cores: usize) -> Self {
        Self::with_enabled(cores, std::env::var_os("RCE_DISABLE_FASTPATH").is_none())
    }

    /// Build with an explicit on/off state (tests and benchmarks).
    pub fn with_enabled(cores: usize, enabled: bool) -> Self {
        AccessFilter {
            enabled,
            slots: vec![EMPTY_SLOT; cores * SLOTS],
            lookups: 0,
            hits: 0,
        }
    }

    /// Is the fast path on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn the fast path on or off. Turning it off (or back on)
    /// clears every slot, so stale coverage can never be consulted.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.slots.fill(EMPTY_SLOT);
    }

    #[inline]
    fn index(&self, core: CoreId, line: LineAddr) -> usize {
        core.index() * SLOTS + (line.0 as usize & (SLOTS - 1))
    }

    /// Can this access short-circuit? True iff the slot covers the
    /// access's raw mask for its kind in the core's current region.
    #[inline]
    pub fn hit(
        &mut self,
        core: CoreId,
        line: LineAddr,
        region: RegionId,
        kind: AccessType,
        mask: WordMask,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        self.lookups += 1;
        let s = &self.slots[self.index(core, line)];
        let covered = match kind {
            AccessType::Read => s.read,
            AccessType::Write => s.write,
        };
        let hit = s.line == line.0 && s.region == region && mask.minus(covered).is_empty();
        self.hits += u64::from(hit);
        hit
    }

    /// A slow-path access completed with no exception: extend the
    /// covered mask for its kind. A line or region mismatch replaces
    /// the slot.
    #[inline]
    pub fn arm(
        &mut self,
        core: CoreId,
        line: LineAddr,
        region: RegionId,
        kind: AccessType,
        mask: WordMask,
    ) {
        if !self.enabled {
            return;
        }
        let i = self.index(core, line);
        let s = &mut self.slots[i];
        if s.line != line.0 || s.region != region {
            *s = Slot {
                line: line.0,
                region,
                read: WordMask::EMPTY,
                write: WordMask::EMPTY,
            };
        }
        match kind {
            AccessType::Read => s.read = s.read.union(mask),
            AccessType::Write => s.write = s.write.union(mask),
        }
    }

    /// Drop any coverage `core` holds for `line` — called on eviction
    /// and on every remote transition touching the core's copy.
    #[inline]
    pub fn invalidate(&mut self, core: CoreId, line: LineAddr) {
        if !self.enabled {
            return;
        }
        let i = self.index(core, line);
        if self.slots[i].line == line.0 {
            self.slots[i] = EMPTY_SLOT;
        }
    }

    /// Filter probes so far (diagnostics and benchmarks; never
    /// reported — reports must stay byte-identical either way).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Filter hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate in [0, 1] (0 when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::{Addr, WordIdx};

    const R: AccessType = AccessType::Read;
    const W: AccessType = AccessType::Write;

    fn mask(words: &[u8]) -> WordMask {
        let mut m = WordMask::EMPTY;
        for &w in words {
            m = m.union(WordMask::single(WordIdx(w)));
        }
        m
    }

    fn filter() -> AccessFilter {
        AccessFilter::with_enabled(2, true)
    }

    #[test]
    fn arm_then_hit_same_kind_and_subset() {
        let mut f = filter();
        let line = Addr(0x1000).line();
        let r1 = RegionId(7);
        f.arm(CoreId(0), line, r1, W, mask(&[0, 1]));
        assert!(f.hit(CoreId(0), line, r1, W, mask(&[0])));
        assert!(f.hit(CoreId(0), line, r1, W, mask(&[0, 1])));
        assert!(!f.hit(CoreId(0), line, r1, W, mask(&[2])), "not covered");
        assert!(!f.hit(CoreId(0), line, r1, R, mask(&[0])), "cross-kind");
        assert!(
            !f.hit(CoreId(1), line, r1, W, mask(&[0])),
            "filters are per-core"
        );
    }

    #[test]
    fn region_mismatch_misses_and_rearms() {
        let mut f = filter();
        let line = Addr(0x40).line();
        f.arm(CoreId(0), line, RegionId(1), R, mask(&[3]));
        assert!(f.hit(CoreId(0), line, RegionId(1), R, mask(&[3])));
        // The region ended: the same slot no longer applies.
        assert!(!f.hit(CoreId(0), line, RegionId(2), R, mask(&[3])));
        // Arming in the new region resets coverage entirely.
        f.arm(CoreId(0), line, RegionId(2), W, mask(&[5]));
        assert!(!f.hit(CoreId(0), line, RegionId(2), R, mask(&[3])));
        assert!(f.hit(CoreId(0), line, RegionId(2), W, mask(&[5])));
    }

    #[test]
    fn invalidate_drops_coverage() {
        let mut f = filter();
        let line = Addr(0x80).line();
        f.arm(CoreId(1), line, RegionId(3), W, mask(&[0]));
        assert!(f.hit(CoreId(1), line, RegionId(3), W, mask(&[0])));
        f.invalidate(CoreId(1), line);
        assert!(!f.hit(CoreId(1), line, RegionId(3), W, mask(&[0])));
        // Invalidating an unrelated line leaves other slots alone.
        f.arm(CoreId(1), line, RegionId(3), W, mask(&[0]));
        f.invalidate(CoreId(1), Addr(0x5000).line());
        assert!(f.hit(CoreId(1), line, RegionId(3), W, mask(&[0])));
    }

    #[test]
    fn aliasing_lines_evict_each_other() {
        let mut f = filter();
        // Two lines SLOTS apart map to the same slot.
        let a = LineAddr(10);
        let b = LineAddr(10 + SLOTS as u64);
        f.arm(CoreId(0), a, RegionId(1), R, mask(&[0]));
        f.arm(CoreId(0), b, RegionId(1), R, mask(&[0]));
        assert!(!f.hit(CoreId(0), a, RegionId(1), R, mask(&[0])));
        assert!(f.hit(CoreId(0), b, RegionId(1), R, mask(&[0])));
    }

    #[test]
    fn disabled_filter_never_hits_or_arms() {
        let mut f = AccessFilter::with_enabled(1, false);
        let line = Addr(0).line();
        f.arm(CoreId(0), line, RegionId(1), W, mask(&[0]));
        assert!(!f.hit(CoreId(0), line, RegionId(1), W, mask(&[0])));
        assert_eq!(f.lookups(), 0, "disabled probes are free");
        // Flipping enabled clears state armed... nothing; and arming
        // works again.
        f.set_enabled(true);
        assert!(!f.hit(CoreId(0), line, RegionId(1), W, mask(&[0])));
        f.arm(CoreId(0), line, RegionId(1), W, mask(&[0]));
        assert!(f.hit(CoreId(0), line, RegionId(1), W, mask(&[0])));
        assert!(f.hit_rate() > 0.0);
    }
}
