//! The metadata layer: pluggable backends for displaced/registered
//! access bits.
//!
//! Every detection design needs a home for access metadata that is no
//! longer attached to a private cache line: CE keeps it in an off-chip
//! DRAM table, CE+ and ARC in the on-chip **access information memory
//! (AIM)** colocated with the LLC banks, spilling AIM victims to a
//! DRAM overflow table. The [`MetaBackend`] trait captures everything
//! the coherence layers need from that store — fetch/push/scrub for
//! the MESI family's displaced-bits protocol, ensure/entry/clear for
//! ARC's LLC-side registration protocol — and each implementation owns
//! its full cost model: NoC messages, DRAM metadata accesses,
//! [`EventClass::Aim`] trace events, and hit/miss/spill accounting.
//!
//! Placements ([`rce_common::MetaPlacement`]):
//! - [`DramMeta`] — CE's table; every touch is an off-chip round trip.
//! - [`AimMeta`] — the bounded set-associative AIM (subsumes the old
//!   `aim` module); only victims with live bits spill to DRAM.
//! - [`IdealMeta`] — infinite capacity, zero latency, zero traffic:
//!   the bound no real AIM geometry can beat.
//! - [`NoMeta`] — the baseline's placeholder; using it is a bug.
//!
//! The engines stay storage-agnostic: they decide *when* metadata
//! moves, the backend decides *what that costs*.

use crate::access::MetaMap;
use crate::protocol::Substrate;
use rce_cache::SetAssoc;
use rce_common::obs::{EventClass, EventKind, SimEvent};
use rce_common::{
    impl_json_struct, AimConfig, CoreId, Counter, Cycles, LineAddr, LineFlags, LineId, LineMap,
    LineTable, MachineConfig, MetaPlacement,
};
use rce_dram::AccessKind as DramKind;
use rce_noc::{MsgClass, NodeId};

/// Bytes of a metadata request/response header on the NoC (the entry
/// payload itself is charged via `AimConfig::entry_bytes`).
const META_MSG_BYTES: u64 = 16;

/// What an AIM `ensure` had to do to make a line's entry resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AimOutcome {
    /// The entry was found resident (metadata hit).
    pub hit: bool,
    /// A spilled entry was brought back from the DRAM table (charge a
    /// metadata read).
    pub refilled: bool,
    /// A victim entry with live metadata was spilled to the DRAM table
    /// (charge a metadata write).
    pub spilled: bool,
}

impl_json_struct!(AimOutcome {
    hit,
    refilled,
    spilled,
});

/// One home for not-in-L1 access metadata, with its cost model.
///
/// The first three methods implement the MESI family's displaced-bits
/// protocol, the last three ARC's LLC-side registration protocol; both
/// families may be composed with any placement. Implementations must
/// charge their NoC/DRAM costs through `sub` in a fixed order — the
/// byte-identity golden tests pin the resulting contention patterns.
pub trait MetaBackend {
    /// Consult the store for displaced metadata of `line`; the request
    /// is at the line's home bank at `t`. Returns the ready time and
    /// the *removed* metadata — bits ride back into the requesting L1,
    /// matching CE's bits-travel-with-the-line design.
    fn fetch(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> (Cycles, MetaMap);

    /// Merge displaced metadata (from an evicted/invalidated copy)
    /// into the store. `src` is the node the bits leave from. Off the
    /// critical path: traffic and store occupancy only.
    fn push(&mut self, sub: &mut Substrate, src: NodeId, line: LineAddr, meta: MetaMap, at: Cycles);

    /// Region-end scrub of one displaced line: clear `core`'s bits
    /// wherever they live, charging the round trip from `src`. Returns
    /// the completion time and whether the line's entry emptied out
    /// and was dropped (so the engine can forget the displacement).
    fn scrub(
        &mut self,
        sub: &mut Substrate,
        src: NodeId,
        core: CoreId,
        line: LineAddr,
        at: Cycles,
    ) -> (Cycles, bool);

    /// Make `line`'s entry usable for [`MetaBackend::entry_mut`]; the
    /// request is already at the line's home bank at `t`. Returns when
    /// the entry is ready (after any spill/refill side effects).
    fn ensure_at(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> Cycles;

    /// The entry for `line`. For the AIM this requires a prior
    /// [`MetaBackend::ensure_at`] (the entry must be resident);
    /// unbounded placements allocate on demand.
    fn entry_mut(&mut self, line: LineAddr) -> &mut MetaMap;

    /// ARC region-end registration clear for one line: drop `core`'s
    /// bits, with the clearing message already at the home bank at
    /// `t`. Returns when the clear completes.
    fn boundary_clear(
        &mut self,
        sub: &mut Substrate,
        line: LineAddr,
        core: CoreId,
        t: Cycles,
    ) -> Cycles;

    /// `(accesses, hits, misses, spills)` when the placement has a
    /// meaningful cache behind it; `None` otherwise (the report's AIM
    /// section is omitted).
    fn totals(&self) -> Option<(u64, u64, u64, u64)>;

    /// The outcome of the most recent AIM `ensure`, for forensics
    /// provenance: what the metadata cache had to do the last time an
    /// entry was made resident. `None` for placements without a
    /// bounded cache (DRAM/ideal never hit, miss, or spill).
    fn last_outcome(&self) -> Option<AimOutcome> {
        None
    }

    /// Which placement this backend implements.
    fn placement(&self) -> MetaPlacement;
}

/// Build the backend selected by `cfg.meta_placement`.
pub fn backend_for(cfg: &MachineConfig) -> Box<dyn MetaBackend> {
    match cfg.meta_placement {
        MetaPlacement::None => Box::new(NoMeta),
        MetaPlacement::Dram => Box::new(DramMeta::new()),
        MetaPlacement::Aim => Box::new(AimMeta::new(&cfg.aim)),
        MetaPlacement::Ideal => Box::new(IdealMeta::new()),
    }
}

// ---------------------------------------------------------- FlatMetaTable

/// Flat line → [`MetaMap`] store shared by every unbounded table in
/// this module (CE's DRAM table, the AIM overflow table, the ideal
/// store).
///
/// Lines are interned once into a [`LineTable`] and maps live in a
/// dense vector, so the per-access path is a hash-free array index
/// after the first touch of a line. Presence is tracked explicitly
/// (the old `HashMap` versions distinguished "absent" from "present
/// but empty" — `ensure_at` creates present-but-empty entries); a
/// non-present slot always holds an empty map, which is what makes
/// re-insertion equivalent to the old `entry().or_default()`.
#[derive(Debug, Clone, Default)]
struct FlatMetaTable {
    table: LineTable,
    maps: LineMap<MetaMap>,
    present: LineFlags,
    count: usize,
}

impl FlatMetaTable {
    /// Number of present entries.
    fn len(&self) -> usize {
        self.count
    }

    /// The entry for `line`, creating an empty present entry if absent
    /// (the flat `entry().or_default()`).
    fn entry(&mut self, line: LineAddr) -> &mut MetaMap {
        let id = self.table.intern(line);
        if self.present.insert(id) {
            self.count += 1;
        }
        self.maps.slot(id)
    }

    /// Remove and return `line`'s entry; `(map, was_present)`.
    fn take(&mut self, line: LineAddr) -> (MetaMap, bool) {
        match self.table.lookup(line) {
            Some(id) if self.present.contains(id) => {
                self.present.remove(id);
                self.count -= 1;
                (std::mem::take(self.maps.slot(id)), true)
            }
            _ => (MetaMap::new(), false),
        }
    }

    /// Clear `core`'s bits in `line`'s entry, dropping the entry if it
    /// empties out; `(had_bits, entry_gone)`. Absent lines are a
    /// no-op.
    fn clear_core(&mut self, line: LineAddr, core: CoreId) -> (bool, bool) {
        match self.table.lookup(line) {
            Some(id) if self.present.contains(id) => {
                let m = self.maps.slot(id);
                let had = m.clear_core(core);
                let gone = m.is_empty();
                if gone {
                    self.present.remove(id);
                    self.count -= 1;
                }
                (had, gone)
            }
            _ => (false, false),
        }
    }

    /// Prune dead bits from every present entry, dropping the ones
    /// that empty out.
    fn prune(&mut self, live: impl Fn(CoreId, rce_common::RegionId) -> bool) {
        for i in 0..self.table.len() as u32 {
            let id = LineId(i);
            if !self.present.contains(id) {
                continue;
            }
            let m = self.maps.slot(id);
            m.prune(&live);
            if m.is_empty() {
                self.present.remove(id);
                self.count -= 1;
            }
        }
    }
}

// ---------------------------------------------------------------- NoMeta

/// The baseline's placeholder: no metadata exists, so no operation is
/// ever legal except the trivially-empty fetch.
pub struct NoMeta;

impl MetaBackend for NoMeta {
    fn fetch(&mut self, _sub: &mut Substrate, _line: LineAddr, t: Cycles) -> (Cycles, MetaMap) {
        (t, MetaMap::new())
    }

    fn push(
        &mut self,
        _sub: &mut Substrate,
        _src: NodeId,
        _line: LineAddr,
        _meta: MetaMap,
        _at: Cycles,
    ) {
        unreachable!("no pushes in baseline mode")
    }

    fn scrub(
        &mut self,
        _sub: &mut Substrate,
        _src: NodeId,
        _core: CoreId,
        _line: LineAddr,
        at: Cycles,
    ) -> (Cycles, bool) {
        (at, false)
    }

    fn ensure_at(&mut self, _sub: &mut Substrate, _line: LineAddr, _t: Cycles) -> Cycles {
        unreachable!("no registrations in baseline mode")
    }

    fn entry_mut(&mut self, _line: LineAddr) -> &mut MetaMap {
        unreachable!("no metadata entries in baseline mode")
    }

    fn boundary_clear(
        &mut self,
        _sub: &mut Substrate,
        _line: LineAddr,
        _core: CoreId,
        _t: Cycles,
    ) -> Cycles {
        unreachable!("no registrations in baseline mode")
    }

    fn totals(&self) -> Option<(u64, u64, u64, u64)> {
        None
    }

    fn placement(&self) -> MetaPlacement {
        MetaPlacement::None
    }
}

// --------------------------------------------------------------- DramMeta

/// CE's off-chip metadata table: a DRAM-resident map, reached through
/// the line's home bank and memory controller. Every touch is a full
/// off-chip round trip — the metadata tax CE+ exists to remove.
#[derive(Debug, Clone, Default)]
pub struct DramMeta {
    table: FlatMetaTable,
}

impl DramMeta {
    /// Empty table.
    pub fn new() -> Self {
        DramMeta::default()
    }

    /// Number of lines with displaced metadata.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl MetaBackend for DramMeta {
    fn fetch(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> (Cycles, MetaMap) {
        let (m, _) = self.table.take(line);
        let bank = sub.bank_node(line);
        let mem = sub.noc.mem_node(line);
        let t1 = sub
            .noc
            .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
        let t2 = sub
            .dram
            .access(line, sub.cfg.aim.entry_bytes, DramKind::MetaRead, t1);
        let t3 = sub
            .noc
            .send(mem, bank, META_MSG_BYTES, MsgClass::Metadata, t2);
        (t3, m)
    }

    fn push(
        &mut self,
        sub: &mut Substrate,
        src: NodeId,
        line: LineAddr,
        meta: MetaMap,
        at: Cycles,
    ) {
        let mem = sub.noc.mem_node(line);
        let t1 = sub
            .noc
            .send(src, mem, META_MSG_BYTES, MsgClass::Metadata, at);
        let _ = sub
            .dram
            .access(line, sub.cfg.aim.entry_bytes, DramKind::MetaWrite, t1);
        self.table.entry(line).merge(&meta);
    }

    fn scrub(
        &mut self,
        sub: &mut Substrate,
        src: NodeId,
        core: CoreId,
        line: LineAddr,
        at: Cycles,
    ) -> (Cycles, bool) {
        let (_, gone) = self.table.clear_core(line, core);
        let mem = sub.noc.mem_node(line);
        let t1 = sub
            .noc
            .send(src, mem, META_MSG_BYTES, MsgClass::Metadata, at);
        let done = sub
            .dram
            .access(line, sub.cfg.aim.entry_bytes, DramKind::MetaWrite, t1);
        (done, gone)
    }

    fn ensure_at(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> Cycles {
        // The registration must consult the off-chip table: bank ->
        // memory controller -> DRAM -> back.
        self.table.entry(line);
        let bank = sub.bank_node(line);
        let mem = sub.noc.mem_node(line);
        let t1 = sub
            .noc
            .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
        let t2 = sub
            .dram
            .access(line, sub.cfg.aim.entry_bytes, DramKind::MetaRead, t1);
        sub.noc
            .send(mem, bank, META_MSG_BYTES, MsgClass::Metadata, t2)
    }

    fn entry_mut(&mut self, line: LineAddr) -> &mut MetaMap {
        self.table.entry(line)
    }

    fn boundary_clear(
        &mut self,
        sub: &mut Substrate,
        line: LineAddr,
        core: CoreId,
        t: Cycles,
    ) -> Cycles {
        self.table.clear_core(line, core);
        // The clear is forwarded to the off-chip table.
        let bank = sub.bank_node(line);
        let mem = sub.noc.mem_node(line);
        let t1 = sub
            .noc
            .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
        sub.dram
            .access(line, sub.cfg.aim.entry_bytes, DramKind::MetaWrite, t1)
    }

    fn totals(&self) -> Option<(u64, u64, u64, u64)> {
        None
    }

    fn placement(&self) -> MetaPlacement {
        MetaPlacement::Dram
    }
}

// ---------------------------------------------------------------- AimMeta

/// The access information memory — the on-chip metadata cache that
/// turns CE into CE+ and backs ARC's LLC-side detection.
///
/// A set-associative cache of [`MetaMap`]s keyed by line address,
/// physically distributed alongside the LLC banks (an AIM slice sits
/// at each line's home bank, so reaching it costs the same NoC trip a
/// coherence request already makes). Entries evicted from the AIM
/// spill to a DRAM-backed table and are refilled on demand.
#[derive(Debug, Clone)]
pub struct AimMeta {
    array: SetAssoc<MetaMap>,
    /// DRAM-backed overflow table.
    backing: FlatMetaTable,
    /// Entry size in bytes when spilled / transferred.
    pub entry_bytes: u64,
    /// Access latency in cycles.
    pub latency: u64,
    /// Total AIM lookups.
    pub accesses: Counter,
    /// Lookups that found the entry resident.
    pub hits: Counter,
    /// Lookups that did not.
    pub misses: Counter,
    /// Entries spilled to DRAM.
    pub spills: Counter,
    /// Entries refilled from DRAM.
    pub refills: Counter,
    /// Outcome of the most recent `ensure` (forensics provenance).
    last: Option<AimOutcome>,
}

impl AimMeta {
    /// Build from configuration.
    pub fn new(cfg: &AimConfig) -> Self {
        AimMeta {
            array: SetAssoc::with_entries(cfg.entries, cfg.ways),
            backing: FlatMetaTable::default(),
            entry_bytes: cfg.entry_bytes,
            latency: cfg.latency,
            accesses: Counter::default(),
            hits: Counter::default(),
            misses: Counter::default(),
            spills: Counter::default(),
            refills: Counter::default(),
            last: None,
        }
    }

    /// Make `line`'s entry resident (allocating an empty one if truly
    /// new), possibly refilling from or spilling to the DRAM table.
    pub fn ensure(&mut self, line: LineAddr) -> AimOutcome {
        self.accesses.inc();
        let outcome = if self.array.contains(line.0) {
            self.hits.inc();
            // Touch for recency.
            let _ = self.array.get_mut(line.0);
            AimOutcome {
                hit: true,
                ..Default::default()
            }
        } else {
            self.misses.inc();
            let (entry, refilled) = self.backing.take(line);
            if refilled {
                self.refills.inc();
            }
            let mut spilled = false;
            if let Some((victim, vmeta)) = self.array.insert(line.0, entry) {
                if !vmeta.is_empty() {
                    *self.backing.entry(LineAddr(victim)) = vmeta;
                    self.spills.inc();
                    spilled = true;
                }
            }
            AimOutcome {
                hit: false,
                refilled,
                spilled,
            }
        };
        self.last = Some(outcome);
        outcome
    }

    /// The resident entry for `line`. Panics if not ensured first.
    pub fn entry(&mut self, line: LineAddr) -> &mut MetaMap {
        self.array
            .get_mut(line.0)
            .expect("AIM entry must be ensured before use")
    }

    /// Scrub one core's bits for `line`, wherever the entry lives
    /// (resident or spilled). Returns true if bits were present.
    pub fn clear_core(&mut self, line: LineAddr, core: CoreId) -> bool {
        self.accesses.inc();
        if let Some(m) = self.array.get_mut(line.0) {
            self.hits.inc();
            return m.clear_core(core);
        }
        self.misses.inc();
        let (had, _) = self.backing.clear_core(line, core);
        had
    }

    /// Drop dead entries everywhere (housekeeping; free of model cost
    /// because region tags already neutralize stale bits — see
    /// DESIGN.md).
    pub fn prune(&mut self, live: impl Fn(CoreId, rce_common::RegionId) -> bool) {
        for (_, m) in self.array.iter_mut() {
            m.prune(&live);
        }
        self.backing.prune(live);
    }

    /// Resident entry count.
    pub fn resident(&self) -> usize {
        self.array.len()
    }

    /// Spilled entry count.
    pub fn spilled_entries(&self) -> usize {
        self.backing.len()
    }

    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.get() + self.misses.get();
        if total == 0 {
            0.0
        } else {
            self.hits.as_f64() / total as f64
        }
    }

    /// Emit the hit/miss (and spill) trace events for one `ensure`.
    fn trace_outcome(&self, sub: &Substrate, line: LineAddr, o: AimOutcome, t: Cycles) {
        sub.trace(EventClass::Aim, || SimEvent {
            cycle: t.0,
            core: None,
            region: None,
            kind: if o.hit {
                EventKind::AimHit { line: line.0 }
            } else {
                EventKind::AimMiss {
                    line: line.0,
                    refilled: o.refilled,
                }
            },
        });
        if o.spilled {
            sub.trace(EventClass::Aim, || SimEvent {
                cycle: t.0,
                core: None,
                region: None,
                kind: EventKind::AimSpill { line: line.0 },
            });
        }
    }
}

impl MetaBackend for AimMeta {
    fn fetch(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> (Cycles, MetaMap) {
        let o = self.ensure(line);
        self.trace_outcome(sub, line, o, t);
        let bank = sub.bank_node(line);
        let mem = sub.noc.mem_node(line);
        let mut ready = Cycles(t.0 + self.latency);
        if o.refilled {
            // The entry itself had spilled to DRAM: fetch it.
            let t1 = sub
                .noc
                .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
            let t2 = sub
                .dram
                .access(line, self.entry_bytes, DramKind::MetaRead, t1);
            ready = sub
                .noc
                .send(mem, bank, META_MSG_BYTES, MsgClass::Metadata, t2);
        }
        if o.spilled {
            // Victim spill: traffic only, off the critical path.
            let t1 = sub
                .noc
                .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
            let _ = sub
                .dram
                .access(line, self.entry_bytes, DramKind::MetaWrite, t1);
        }
        let m = std::mem::take(self.entry(line));
        (ready, m)
    }

    fn push(
        &mut self,
        sub: &mut Substrate,
        src: NodeId,
        line: LineAddr,
        meta: MetaMap,
        at: Cycles,
    ) {
        let bank = sub.bank_node(line);
        let t1 = sub
            .noc
            .send(src, bank, META_MSG_BYTES, MsgClass::Metadata, at);
        let o = self.ensure(line);
        self.trace_outcome(sub, line, o, at);
        if o.spilled {
            let mem = sub.noc.mem_node(line);
            let t2 = sub
                .noc
                .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t1);
            let _ = sub
                .dram
                .access(line, self.entry_bytes, DramKind::MetaWrite, t2);
        }
        if o.refilled {
            let mem = sub.noc.mem_node(line);
            let t2 = sub
                .noc
                .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t1);
            let _ = sub
                .dram
                .access(line, self.entry_bytes, DramKind::MetaRead, t2);
        }
        self.entry(line).merge(&meta);
    }

    fn scrub(
        &mut self,
        sub: &mut Substrate,
        src: NodeId,
        core: CoreId,
        line: LineAddr,
        at: Cycles,
    ) -> (Cycles, bool) {
        let bank = sub.bank_node(line);
        let t1 = sub
            .noc
            .send(src, bank, META_MSG_BYTES, MsgClass::Metadata, at);
        self.clear_core(line, core);
        (Cycles(t1.0 + self.latency), false)
    }

    fn ensure_at(&mut self, sub: &mut Substrate, line: LineAddr, t: Cycles) -> Cycles {
        let o = self.ensure(line);
        self.trace_outcome(sub, line, o, t);
        let bank = sub.bank_node(line);
        let mem = sub.noc.mem_node(line);
        let mut ready = Cycles(t.0 + self.latency);
        if o.refilled {
            let t1 = sub
                .noc
                .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
            let t2 = sub
                .dram
                .access(line, self.entry_bytes, DramKind::MetaRead, t1);
            ready = sub
                .noc
                .send(mem, bank, META_MSG_BYTES, MsgClass::Metadata, t2);
        }
        if o.spilled {
            let t1 = sub
                .noc
                .send(bank, mem, META_MSG_BYTES, MsgClass::Metadata, t);
            let _ = sub
                .dram
                .access(line, self.entry_bytes, DramKind::MetaWrite, t1);
        }
        ready
    }

    fn entry_mut(&mut self, line: LineAddr) -> &mut MetaMap {
        self.entry(line)
    }

    fn boundary_clear(
        &mut self,
        _sub: &mut Substrate,
        line: LineAddr,
        core: CoreId,
        t: Cycles,
    ) -> Cycles {
        self.clear_core(line, core);
        Cycles(t.0 + self.latency)
    }

    fn totals(&self) -> Option<(u64, u64, u64, u64)> {
        Some((
            self.accesses.get(),
            self.hits.get(),
            self.misses.get(),
            self.spills.get(),
        ))
    }

    fn last_outcome(&self) -> Option<AimOutcome> {
        self.last
    }

    fn placement(&self) -> MetaPlacement {
        MetaPlacement::Aim
    }
}

// -------------------------------------------------------------- IdealMeta

/// An infinite zero-latency metadata store: never spills, never pays a
/// cycle or a byte. Physically unbuildable; it bounds from below what
/// any AIM geometry could achieve, which is exactly what the
/// sensitivity study needs.
#[derive(Debug, Clone, Default)]
pub struct IdealMeta {
    table: FlatMetaTable,
}

impl IdealMeta {
    /// Empty store.
    pub fn new() -> Self {
        IdealMeta::default()
    }

    /// Number of lines with metadata.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl MetaBackend for IdealMeta {
    fn fetch(&mut self, _sub: &mut Substrate, line: LineAddr, t: Cycles) -> (Cycles, MetaMap) {
        (t, self.table.take(line).0)
    }

    fn push(
        &mut self,
        _sub: &mut Substrate,
        _src: NodeId,
        line: LineAddr,
        meta: MetaMap,
        _at: Cycles,
    ) {
        self.table.entry(line).merge(&meta);
    }

    fn scrub(
        &mut self,
        _sub: &mut Substrate,
        _src: NodeId,
        core: CoreId,
        line: LineAddr,
        at: Cycles,
    ) -> (Cycles, bool) {
        let (_, gone) = self.table.clear_core(line, core);
        (at, gone)
    }

    fn ensure_at(&mut self, _sub: &mut Substrate, line: LineAddr, t: Cycles) -> Cycles {
        self.table.entry(line);
        t
    }

    fn entry_mut(&mut self, line: LineAddr) -> &mut MetaMap {
        self.table.entry(line)
    }

    fn boundary_clear(
        &mut self,
        _sub: &mut Substrate,
        line: LineAddr,
        core: CoreId,
        t: Cycles,
    ) -> Cycles {
        self.table.clear_core(line, core);
        t
    }

    fn totals(&self) -> Option<(u64, u64, u64, u64)> {
        None
    }

    fn placement(&self) -> MetaPlacement {
        MetaPlacement::Ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::AccessType;
    use rce_common::{ProtocolKind, RegionId, WordIdx, WordMask};

    fn small_aim() -> AimMeta {
        AimMeta::new(&AimConfig {
            entries: 8,
            ways: 2,
            latency: 4,
            entry_bytes: 16,
        })
    }

    #[test]
    fn ensure_then_entry() {
        let mut a = small_aim();
        let o = a.ensure(LineAddr(1));
        assert!(!o.hit && !o.refilled && !o.spilled);
        a.entry(LineAddr(1)).record(
            CoreId(0),
            RegionId(1),
            AccessType::Write,
            WordMask::single(WordIdx(0)),
        );
        let o = a.ensure(LineAddr(1));
        assert!(o.hit);
        assert!(a.hit_rate() > 0.0);
    }

    #[test]
    fn spill_and_refill_roundtrip() {
        let mut a = small_aim(); // 4 sets x 2 ways
                                 // Fill set 0 (lines 0, 4) with live metadata, then overflow it.
        for l in [0u64, 4] {
            a.ensure(LineAddr(l));
            a.entry(LineAddr(l))
                .record(CoreId(0), RegionId(1), AccessType::Read, WordMask::FULL);
        }
        let o = a.ensure(LineAddr(8)); // same set, evicts LRU (line 0)
        assert!(o.spilled);
        assert_eq!(a.spilled_entries(), 1);
        // Touching line 0 again refills from backing.
        let o = a.ensure(LineAddr(0));
        assert!(o.refilled);
        assert!(
            !a.entry(LineAddr(0)).is_empty(),
            "metadata survived the spill"
        );
        assert!(a.spilled_entries() <= 1);
    }

    #[test]
    fn empty_victims_are_not_spilled() {
        let mut a = small_aim();
        for l in [0u64, 4, 8] {
            a.ensure(LineAddr(l)); // all empty entries
        }
        assert_eq!(a.spills.get(), 0);
        assert_eq!(a.spilled_entries(), 0);
    }

    #[test]
    fn clear_core_resident_and_spilled() {
        let mut a = small_aim();
        a.ensure(LineAddr(3));
        a.entry(LineAddr(3)).record(
            CoreId(2),
            RegionId(5),
            AccessType::Write,
            WordMask::single(WordIdx(1)),
        );
        assert!(a.clear_core(LineAddr(3), CoreId(2)));
        assert!(!a.clear_core(LineAddr(3), CoreId(2)));

        // Spilled path.
        a.entry(LineAddr(3)).record(
            CoreId(1),
            RegionId(9),
            AccessType::Read,
            WordMask::single(WordIdx(0)),
        );
        a.ensure(LineAddr(7));
        a.ensure(LineAddr(11)); // set 3: 3, 7, 11 -> spills line 3
        assert_eq!(a.spilled_entries(), 1);
        assert!(a.clear_core(LineAddr(3), CoreId(1)));
        assert_eq!(a.spilled_entries(), 0, "empty spilled entries are dropped");
    }

    #[test]
    fn prune_drops_dead_metadata() {
        let mut a = small_aim();
        a.ensure(LineAddr(1));
        a.entry(LineAddr(1))
            .record(CoreId(0), RegionId(1), AccessType::Write, WordMask::FULL);
        a.prune(|_, _| false);
        assert!(a.entry(LineAddr(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "ensured")]
    fn entry_requires_ensure() {
        let mut a = small_aim();
        let _ = a.entry(LineAddr(42));
    }

    fn sub() -> Substrate {
        Substrate::new(&MachineConfig::paper_default(4, ProtocolKind::CePlus))
    }

    fn meta_with_bits(core: u16, region: u64) -> MetaMap {
        let mut m = MetaMap::new();
        m.record(
            CoreId(core),
            RegionId(region),
            AccessType::Write,
            WordMask::single(WordIdx(2)),
        );
        m
    }

    /// Property (interned-storage equivalence): an AIM big enough to
    /// never evict holds exactly the metadata the ideal unbounded
    /// store does, under any interleaving of the `MetaBackend` ops.
    /// Timing differs (the AIM charges latency); contents must not.
    #[test]
    fn prop_unbounded_aim_equals_ideal() {
        use rce_common::check::check_n;
        use rce_common::{prop_assert, prop_assert_eq, Rng, SplitMix64};
        check_n(
            "prop_unbounded_aim_equals_ideal",
            64,
            |rng: &mut SplitMix64| {
                let n = 1 + rng.gen_range(120) as usize;
                (0..n).map(|_| rng.next_u64()).collect::<Vec<u64>>()
            },
            |ops| {
                let mut s = sub();
                // 1024 entries / 16 distinct lines: no eviction, so no
                // spill path — the AIM degenerates to an unbounded map.
                let mut aim = AimMeta::new(&AimConfig {
                    entries: 1024,
                    ways: 4,
                    latency: 4,
                    entry_bytes: 16,
                });
                let mut ideal = IdealMeta::new();
                let src = s.core_node(CoreId(0));
                for (step, &raw) in ops.iter().enumerate() {
                    let line = LineAddr((raw >> 8) % 16);
                    let core = CoreId(((raw >> 16) % 4) as u16);
                    let region = RegionId((raw >> 24) % 8);
                    let at = Cycles(step as u64 * 10);
                    match raw % 5 {
                        0 => {
                            // Displaced-bits push of one core's access.
                            let mut m = MetaMap::new();
                            m.record(
                                core,
                                region,
                                if raw & 1 == 0 {
                                    AccessType::Read
                                } else {
                                    AccessType::Write
                                },
                                WordMask::single(WordIdx(((raw >> 32) % 8) as u8)),
                            );
                            aim.push(&mut s, src, line, m.clone(), at);
                            ideal.push(&mut s, src, line, m, at);
                        }
                        1 => {
                            let (_, got_a) = aim.fetch(&mut s, line, at);
                            let (_, got_i) = ideal.fetch(&mut s, line, at);
                            prop_assert_eq!(got_a, got_i, "fetched bits diverge at op {step}");
                        }
                        2 => {
                            // `gone` flags legitimately differ (the AIM
                            // keeps scrubbed entries resident; the ideal
                            // store drops them) — only contents must
                            // agree, which the fetches below check.
                            let _ = aim.scrub(&mut s, src, core, line, at);
                            let _ = ideal.scrub(&mut s, src, core, line, at);
                        }
                        3 => {
                            // ARC-style registration write-through.
                            aim.ensure_at(&mut s, line, at);
                            ideal.ensure_at(&mut s, line, at);
                            aim.entry_mut(line).record(
                                core,
                                region,
                                AccessType::Write,
                                WordMask::single(WordIdx(0)),
                            );
                            ideal.entry_mut(line).record(
                                core,
                                region,
                                AccessType::Write,
                                WordMask::single(WordIdx(0)),
                            );
                        }
                        _ => {
                            aim.boundary_clear(&mut s, line, core, at);
                            ideal.boundary_clear(&mut s, line, core, at);
                        }
                    }
                    if let Some((_, _, _, spills)) = aim.totals() {
                        prop_assert_eq!(spills, 0, "unbounded AIM must never spill");
                    }
                }
                // Final sweep: every line's surviving metadata matches.
                for l in 0..16u64 {
                    let at = Cycles(1_000_000);
                    let (_, got_a) = aim.fetch(&mut s, LineAddr(l), at);
                    let (_, got_i) = ideal.fetch(&mut s, LineAddr(l), at);
                    prop_assert_eq!(got_a, got_i, "line {l} diverges in the final sweep");
                }
                prop_assert!(
                    aim.spilled_entries() == 0,
                    "nothing may have reached the overflow table"
                );
                Ok(())
            },
        );
    }

    #[test]
    fn backend_for_matches_placement() {
        for (proto, placement) in [
            (ProtocolKind::MesiBaseline, MetaPlacement::None),
            (ProtocolKind::Ce, MetaPlacement::Dram),
            (ProtocolKind::CePlus, MetaPlacement::Aim),
            (ProtocolKind::Arc, MetaPlacement::Aim),
        ] {
            let cfg = MachineConfig::paper_default(4, proto);
            assert_eq!(backend_for(&cfg).placement(), placement);
        }
        let cfg = MachineConfig::paper_default(4, ProtocolKind::CePlus)
            .with_meta_placement(MetaPlacement::Ideal);
        assert_eq!(backend_for(&cfg).placement(), MetaPlacement::Ideal);
    }

    #[test]
    fn dram_push_fetch_roundtrip_charges_offchip() {
        let mut s = sub();
        let mut b = DramMeta::new();
        let line = LineAddr(12);
        let src = s.core_node(CoreId(0));
        b.push(&mut s, src, line, meta_with_bits(0, 0), Cycles(0));
        assert_eq!(b.entries(), 1);
        assert!(s.dram.stats().metadata_bytes().0 > 0, "push writes DRAM");
        let before = s.dram.stats().metadata_bytes().0;
        let (ready, m) = b.fetch(&mut s, line, Cycles(100));
        assert!(ready.0 > 100, "fetch is an off-chip round trip");
        assert!(!m.is_empty(), "bits came back");
        assert_eq!(b.entries(), 0, "fetch removes the entry");
        assert!(s.dram.stats().metadata_bytes().0 > before);
    }

    #[test]
    fn dram_scrub_reports_emptied_entries() {
        let mut s = sub();
        let mut b = DramMeta::new();
        let line = LineAddr(5);
        let src = s.core_node(CoreId(1));
        b.push(&mut s, src, line, meta_with_bits(1, 7), Cycles(0));
        let (t, gone) = b.scrub(&mut s, src, CoreId(1), line, Cycles(50));
        assert!(gone, "the only core's bits were cleared");
        assert!(t.0 > 50, "scrub pays the off-chip write");
        // Scrubbing an absent line still charges (the hardware cannot
        // know the entry is gone without the round trip).
        let (_, gone2) = b.scrub(&mut s, src, CoreId(1), line, t);
        assert!(!gone2);
    }

    #[test]
    fn ideal_is_free_and_lossless() {
        let mut s = sub();
        let mut b = IdealMeta::new();
        let line = LineAddr(3);
        let src = s.core_node(CoreId(0));
        let noc0 = s.noc.stats().total_bytes().0;
        let dram0 = s.dram.stats().total_bytes().0;
        b.push(&mut s, src, line, meta_with_bits(0, 0), Cycles(0));
        assert_eq!(b.ensure_at(&mut s, line, Cycles(9)), Cycles(9));
        let t = b.boundary_clear(&mut s, line, CoreId(3), Cycles(11));
        assert_eq!(t, Cycles(11));
        let (ready, m) = b.fetch(&mut s, line, Cycles(20));
        assert_eq!(ready, Cycles(20), "ideal fetch is instantaneous");
        assert_eq!(m, meta_with_bits(0, 0), "ideal storage is lossless");
        assert_eq!(s.noc.stats().total_bytes().0, noc0, "no NoC traffic");
        assert_eq!(s.dram.stats().total_bytes().0, dram0, "no DRAM traffic");
        assert!(b.totals().is_none(), "no cache, no hit statistics");
    }

    #[test]
    fn aim_backend_fetch_removes_bits_and_counts() {
        let mut s = sub();
        let mut b = AimMeta::new(&s.cfg.aim.clone());
        let line = LineAddr(9);
        let src = s.core_node(CoreId(2));
        b.push(&mut s, src, line, meta_with_bits(2, 4), Cycles(0));
        let (ready, m) = b.fetch(&mut s, line, Cycles(30));
        assert_eq!(ready, Cycles(30 + b.latency), "resident: latency only");
        assert_eq!(m, meta_with_bits(2, 4));
        assert!(b.entry(line).is_empty(), "fetch drains the entry");
        let (a, h, miss, sp) = b.totals().unwrap();
        assert_eq!((a, h, miss, sp), (2, 1, 1, 0));
        assert_eq!(
            s.dram.stats().metadata_bytes().0,
            0,
            "no spill, no off-chip traffic"
        );
    }
}
