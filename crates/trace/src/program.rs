//! A complete multithreaded program trace.

use crate::op::Op;
use rce_common::{impl_json_struct, Addr};

/// A multithreaded program: one operation list per thread, plus the
/// synchronization-object universe it uses.
///
/// Thread `i` is pinned to core `i` by the simulator. Programs are
/// produced by [`crate::workloads::WorkloadSpec::build`] or assembled
/// by hand through [`crate::builder::Builder`]; either way they should
/// satisfy [`crate::validate::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable workload name (figure row label).
    pub name: String,
    /// Per-thread operation lists.
    pub threads: Vec<Vec<Op>>,
    /// Number of distinct lock objects referenced.
    pub n_locks: u32,
    /// Number of distinct barrier objects referenced.
    pub n_barriers: u32,
    /// First byte of the shared address range (for characterization;
    /// addresses below this are thread-private by construction).
    pub shared_base: Addr,
    /// One past the last shared byte.
    pub shared_end: Addr,
}

impl_json_struct!(Program {
    name,
    threads,
    n_locks,
    n_barriers,
    shared_base,
    shared_end,
});

impl Program {
    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total operations across all threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Total memory operations across all threads.
    pub fn total_mem_ops(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.iter())
            .filter(|o| o.is_mem())
            .count()
    }

    /// Total synchronization operations across all threads.
    pub fn total_sync_ops(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| t.iter())
            .filter(|o| o.is_sync())
            .count()
    }

    /// True if `a` lies in the shared range.
    pub fn is_shared_addr(&self, a: Addr) -> bool {
        a >= self.shared_base && a < self.shared_end
    }

    /// Iterate `(thread_index, &op)` over every operation.
    pub fn iter_ops(&self) -> impl Iterator<Item = (usize, &Op)> {
        self.threads
            .iter()
            .enumerate()
            .flat_map(|(t, ops)| ops.iter().map(move |o| (t, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::LockId;

    fn tiny() -> Program {
        Program {
            name: "tiny".into(),
            threads: vec![
                vec![
                    Op::Read {
                        addr: Addr(0x100),
                        len: 8,
                    },
                    Op::Acquire { lock: LockId(0) },
                    Op::Write {
                        addr: Addr(0x108),
                        len: 8,
                    },
                    Op::Release { lock: LockId(0) },
                ],
                vec![Op::Work { cycles: 5 }],
            ],
            n_locks: 1,
            n_barriers: 0,
            shared_base: Addr(0x100),
            shared_end: Addr(0x200),
        }
    }

    #[test]
    fn counting_helpers() {
        let p = tiny();
        assert_eq!(p.n_threads(), 2);
        assert_eq!(p.total_ops(), 5);
        assert_eq!(p.total_mem_ops(), 2);
        assert_eq!(p.total_sync_ops(), 2);
    }

    #[test]
    fn shared_range_check() {
        let p = tiny();
        assert!(p.is_shared_addr(Addr(0x100)));
        assert!(p.is_shared_addr(Addr(0x1ff)));
        assert!(!p.is_shared_addr(Addr(0x200)));
        assert!(!p.is_shared_addr(Addr(0x0)));
    }

    #[test]
    fn iter_ops_tags_threads() {
        let p = tiny();
        let tags: Vec<usize> = p.iter_ops().map(|(t, _)| t).collect();
        assert_eq!(tags, vec![0, 0, 0, 0, 1]);
    }
}
