//! Synthetic multithreaded memory-trace workloads with SFR structure.
//!
//! The paper evaluates CE/CE+/ARC on PARSEC applications running on a
//! cycle-level simulator. Neither the simulator nor the traces are
//! available, so this crate provides the substitution described in
//! DESIGN.md: seed-deterministic generators that reproduce each PARSEC
//! application's *sharing pattern* — the property that actually drives
//! conflict-exception cost (region length, synchronization density,
//! eviction pressure, and which lines are shared between which cores).
//!
//! A workload is a [`Program`]: one operation list per thread, where
//! operations are reads/writes (with byte addresses), lock
//! acquire/release, barriers, and local compute. *Synchronization-free
//! regions* (SFRs) — the unit conflict exceptions protect — are implied:
//! every synchronization operation is a region boundary.
//!
//! Entry points:
//! - [`workloads::WorkloadSpec`] enumerates the PARSEC-like suite and
//!   builds a `Program` from `(cores, scale, seed)`.
//! - [`racey::inject_races`] plants unsynchronized conflicting accesses
//!   into any program.
//! - [`chars::characterize`] computes the Table II statistics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod chars;
pub mod op;
pub mod program;
pub mod racey;
pub mod regions;
pub mod validate;
pub mod workloads;

pub use builder::{Arena, Builder};
pub use chars::{characterize, WorkloadChar};
pub use op::Op;
pub use program::Program;
pub use racey::inject_races;
pub use regions::{region_lengths, RegionStats};
pub use validate::validate;
pub use workloads::WorkloadSpec;
