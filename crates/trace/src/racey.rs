//! Race injection: plant unsynchronized conflicting accesses into any
//! program.
//!
//! Used by the exception-delivery experiments (reconstructed Table
//! III): starting from a race-free workload, inject `n` conflicting
//! pairs and check that every engine detects conflicts the oracle
//! confirms. Injection appends a *pre-barrier racy prologue*: the
//! chosen pair of threads both access a fresh shared word before their
//! first synchronization operation, so the two accesses are in
//! concurrent regions under any interleaving — the conflict is
//! guaranteed, not probabilistic.

use crate::op::Op;
use crate::program::Program;
use rce_common::{Addr, Rng, SplitMix64};

/// Inject `n` guaranteed region conflicts into `p`.
///
/// Each injected race `i` allocates a fresh shared word above the
/// program's existing shared range and prepends a write on one thread
/// and a read or write on another. Returns the injected addresses so
/// tests can check detection provenance.
///
/// Requires at least two threads; panics otherwise.
pub fn inject_races(p: &mut Program, n: usize, seed: u64) -> Vec<Addr> {
    assert!(
        p.n_threads() >= 2,
        "race injection needs at least two threads"
    );
    let mut rng = SplitMix64::new(seed ^ 0x4acf);
    let mut injected = Vec::with_capacity(n);
    // Fresh line-aligned words beyond the current shared range.
    let base = (p.shared_end.0 + 63) & !63;
    for i in 0..n {
        let addr = Addr(base + (i as u64) * 64);
        let tw = rng.gen_range(p.n_threads() as u64) as usize;
        let mut tr = rng.gen_range(p.n_threads() as u64) as usize;
        if tr == tw {
            tr = (tr + 1) % p.n_threads();
        }
        // Prepend (insert at front) so both accesses precede any sync
        // op of their thread: their enclosing regions must overlap.
        p.threads[tw].insert(0, Op::Write { addr, len: 8 });
        let second = if rng.gen_bool(0.5) {
            Op::Read { addr, len: 8 }
        } else {
            Op::Write { addr, len: 8 }
        };
        p.threads[tr].insert(0, second);
        injected.push(addr);
    }
    p.shared_end = Addr(base + n as u64 * 64);
    p.name = format!("{}+{}races", p.name, n);
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use crate::workloads::WorkloadSpec;

    #[test]
    fn injection_preserves_validity() {
        let mut p = WorkloadSpec::Blackscholes.build(4, 1, 1);
        let addrs = inject_races(&mut p, 3, 9);
        assert_eq!(addrs.len(), 3);
        validate(&p).unwrap();
    }

    #[test]
    fn injected_accesses_precede_all_sync() {
        let mut p = WorkloadSpec::Streamcluster.build(4, 1, 2);
        let addrs = inject_races(&mut p, 2, 5);
        for addr in &addrs {
            let mut touchers = 0;
            for ops in &p.threads {
                let pre_sync_touch = ops
                    .iter()
                    .take_while(|o| !o.is_sync())
                    .any(|o| o.addr() == Some(*addr));
                if pre_sync_touch {
                    touchers += 1;
                }
            }
            assert!(touchers >= 2, "race at {addr} not concurrent");
        }
    }

    #[test]
    fn injected_addrs_are_fresh() {
        let mut p = WorkloadSpec::Canneal.build(2, 1, 3);
        let before_end = p.shared_end;
        let addrs = inject_races(&mut p, 4, 11);
        for a in addrs {
            assert!(
                a >= before_end,
                "injected address collides with workload data"
            );
            assert!(p.is_shared_addr(a));
        }
    }

    #[test]
    fn name_records_injection() {
        let mut p = WorkloadSpec::Vips.build(2, 1, 1);
        inject_races(&mut p, 2, 1);
        assert!(p.name.ends_with("+2races"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_thread_rejected() {
        let mut p = WorkloadSpec::Swaptions.build(1, 1, 1);
        inject_races(&mut p, 1, 1);
    }
}
