//! Workload characterization — the data behind the paper's Table II.
//!
//! For each program we report the static properties that explain the
//! designs' relative costs: total memory operations, synchronization
//! density, dynamic region count and mean size, the footprint in
//! distinct lines, and what fraction of accesses touch data that more
//! than one thread touches (true sharing at line granularity).

use crate::program::Program;
use crate::regions::region_stats;
use rce_common::impl_json_struct;
use std::collections::{HashMap, HashSet};

/// Table II row for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadChar {
    /// Workload name.
    pub name: String,
    /// Number of threads.
    pub threads: usize,
    /// Total memory operations.
    pub mem_ops: u64,
    /// Total synchronization operations.
    pub sync_ops: u64,
    /// Dynamic regions containing at least one memory op.
    pub regions: u64,
    /// Mean memory ops per region.
    pub mean_region_len: f64,
    /// Distinct lines touched.
    pub footprint_lines: u64,
    /// Distinct lines touched by more than one thread.
    pub shared_lines: u64,
    /// Fraction of memory ops that touch multi-thread lines.
    pub shared_access_frac: f64,
    /// Fraction of memory ops that are writes.
    pub write_frac: f64,
}

impl_json_struct!(WorkloadChar {
    name,
    threads,
    mem_ops,
    sync_ops,
    regions,
    mean_region_len,
    footprint_lines,
    shared_lines,
    shared_access_frac,
    write_frac,
});

/// Compute the Table II row for `p`.
pub fn characterize(p: &Program) -> WorkloadChar {
    let rs = region_stats(p);
    let mut toucher: HashMap<u64, (usize, bool)> = HashMap::new(); // line -> (first thread, multi)
    let mut mem_ops = 0u64;
    let mut writes = 0u64;
    for (t, op) in p.iter_ops() {
        if let Some(a) = op.addr() {
            mem_ops += 1;
            if op.is_write() {
                writes += 1;
            }
            let e = toucher.entry(a.line().0).or_insert((t, false));
            if e.0 != t {
                e.1 = true;
            }
        }
    }
    let shared_lines: HashSet<u64> = toucher
        .iter()
        .filter(|(_, (_, multi))| *multi)
        .map(|(l, _)| *l)
        .collect();
    let mut shared_accesses = 0u64;
    for (_, op) in p.iter_ops() {
        if let Some(a) = op.addr() {
            if shared_lines.contains(&a.line().0) {
                shared_accesses += 1;
            }
        }
    }
    WorkloadChar {
        name: p.name.clone(),
        threads: p.n_threads(),
        mem_ops,
        sync_ops: p.total_sync_ops() as u64,
        regions: rs.regions,
        mean_region_len: rs.mean_mem_ops_per_region,
        footprint_lines: toucher.len() as u64,
        shared_lines: shared_lines.len() as u64,
        shared_access_frac: if mem_ops == 0 {
            0.0
        } else {
            shared_accesses as f64 / mem_ops as f64
        },
        write_frac: if mem_ops == 0 {
            0.0
        } else {
            writes as f64 / mem_ops as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadSpec;

    #[test]
    fn swaptions_has_no_sharing() {
        let c = characterize(&WorkloadSpec::Swaptions.build(4, 1, 1));
        assert_eq!(c.shared_lines, 0);
        assert_eq!(c.shared_access_frac, 0.0);
        assert!(c.mem_ops > 0);
    }

    #[test]
    fn canneal_is_heavily_shared() {
        let c = characterize(&WorkloadSpec::Canneal.build(4, 1, 1));
        assert!(c.shared_access_frac > 0.3, "frac={}", c.shared_access_frac);
    }

    #[test]
    fn fluidanimate_has_short_regions() {
        let c = characterize(&WorkloadSpec::Fluidanimate.build(4, 1, 1));
        let b = characterize(&WorkloadSpec::Blackscholes.build(4, 1, 1));
        assert!(c.mean_region_len < b.mean_region_len);
    }

    #[test]
    fn fractions_are_in_range() {
        for w in WorkloadSpec::PARSEC {
            let c = characterize(&w.build(2, 1, 3));
            assert!((0.0..=1.0).contains(&c.shared_access_frac), "{w}");
            assert!((0.0..=1.0).contains(&c.write_frac), "{w}");
            assert!(c.footprint_lines >= c.shared_lines, "{w}");
        }
    }
}
