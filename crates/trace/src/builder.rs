//! Program assembly: arenas, locks, barriers, per-thread op emission.
//!
//! The builder enforces the address-space discipline the rest of the
//! workspace relies on: *shared* arenas live in a low address range,
//! *private* arenas in disjoint high per-thread ranges, and neither
//! overlaps. Workload generators only speak in terms of arenas and the
//! typed emit helpers, which keeps them short and makes structural
//! validity (balanced locks, global barriers) easy to audit.

use crate::op::Op;
use crate::program::Program;
use rce_common::{Addr, BarrierId, LineGeometry, LockId};

/// Base of the shared address range.
const SHARED_BASE: u64 = 0x1000_0000;
/// Base of the private ranges; thread `t` owns
/// `[PRIVATE_BASE + t*PRIVATE_SPAN, …)`.
const PRIVATE_BASE: u64 = 0x1_0000_0000;
/// Span reserved per thread for private data.
const PRIVATE_SPAN: u64 = 0x1000_0000;

/// A contiguous allocated address range.
///
/// Arenas hand out word- and line-granularity addresses; generators
/// index them instead of doing address arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arena {
    base: Addr,
    bytes: u64,
}

impl Arena {
    /// First byte.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of 8-byte words.
    pub fn words(&self) -> u64 {
        self.bytes / LineGeometry::WORD_BYTES
    }

    /// Number of 64-byte lines.
    pub fn lines(&self) -> u64 {
        self.bytes / LineGeometry::LINE_BYTES
    }

    /// Byte address of word `i` (panics if out of range).
    pub fn word(&self, i: u64) -> Addr {
        assert!(i < self.words(), "word index {i} out of range");
        Addr(self.base.0 + i * LineGeometry::WORD_BYTES)
    }

    /// Byte address of the first word of line `i`.
    pub fn line(&self, i: u64) -> Addr {
        assert!(i < self.lines(), "line index {i} out of range");
        Addr(self.base.0 + i * LineGeometry::LINE_BYTES)
    }

    /// Split into `n` equal contiguous chunks (for per-thread slices of
    /// a shared array). `bytes` must divide evenly by `n` lines.
    pub fn chunks(&self, n: usize) -> Vec<Arena> {
        let lines = self.lines();
        assert!(
            n > 0 && lines >= n as u64,
            "cannot split {lines} lines into {n}"
        );
        let per = lines / n as u64;
        (0..n as u64)
            .map(|i| Arena {
                base: Addr(self.base.0 + i * per * LineGeometry::LINE_BYTES),
                bytes: per * LineGeometry::LINE_BYTES,
            })
            .collect()
    }
}

/// Incrementally builds a [`Program`].
#[derive(Debug)]
pub struct Builder {
    name: String,
    threads: Vec<Vec<Op>>,
    next_shared: u64,
    next_private: Vec<u64>,
    n_locks: u32,
    n_barriers: u32,
}

impl Builder {
    /// Start a program with `n_threads` threads.
    pub fn new(name: impl Into<String>, n_threads: usize) -> Self {
        assert!(n_threads > 0, "need at least one thread");
        Builder {
            name: name.into(),
            threads: vec![Vec::new(); n_threads],
            next_shared: SHARED_BASE,
            next_private: (0..n_threads as u64)
                .map(|t| PRIVATE_BASE + t * PRIVATE_SPAN)
                .collect(),
            // locks/barriers allocated on demand
            n_locks: 0,
            n_barriers: 0,
        }
    }

    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Allocate a fresh lock object.
    pub fn lock(&mut self) -> LockId {
        let id = LockId(self.n_locks);
        self.n_locks += 1;
        id
    }

    /// Allocate a fresh barrier object.
    pub fn barrier(&mut self) -> BarrierId {
        let id = BarrierId(self.n_barriers);
        self.n_barriers += 1;
        id
    }

    /// Allocate a line-aligned shared arena of at least `bytes` bytes.
    pub fn shared(&mut self, bytes: u64) -> Arena {
        let bytes = round_lines(bytes);
        let a = Arena {
            base: Addr(self.next_shared),
            bytes,
        };
        self.next_shared += bytes;
        assert!(
            self.next_shared <= PRIVATE_BASE,
            "shared arena space exhausted"
        );
        a
    }

    /// Allocate a line-aligned private arena for thread `t`.
    pub fn private(&mut self, t: usize, bytes: u64) -> Arena {
        let bytes = round_lines(bytes);
        let a = Arena {
            base: Addr(self.next_private[t]),
            bytes,
        };
        self.next_private[t] += bytes;
        assert!(
            self.next_private[t] <= PRIVATE_BASE + (t as u64 + 1) * PRIVATE_SPAN,
            "private arena space exhausted for thread {t}"
        );
        a
    }

    /// Emit an 8-byte read on thread `t`.
    pub fn read(&mut self, t: usize, addr: Addr) {
        self.threads[t].push(Op::Read { addr, len: 8 });
    }

    /// Emit a read of `len` bytes on thread `t`.
    pub fn read_n(&mut self, t: usize, addr: Addr, len: u32) {
        debug_assert!(len >= 1 && len as u64 <= LineGeometry::LINE_BYTES);
        self.threads[t].push(Op::Read { addr, len });
    }

    /// Emit an 8-byte write on thread `t`.
    pub fn write(&mut self, t: usize, addr: Addr) {
        self.threads[t].push(Op::Write { addr, len: 8 });
    }

    /// Emit a write of `len` bytes on thread `t`.
    pub fn write_n(&mut self, t: usize, addr: Addr, len: u32) {
        debug_assert!(len >= 1 && len as u64 <= LineGeometry::LINE_BYTES);
        self.threads[t].push(Op::Write { addr, len });
    }

    /// Emit local compute on thread `t`.
    pub fn work(&mut self, t: usize, cycles: u32) {
        self.threads[t].push(Op::Work { cycles });
    }

    /// Emit an acquire on thread `t`.
    pub fn acquire(&mut self, t: usize, lock: LockId) {
        self.threads[t].push(Op::Acquire { lock });
    }

    /// Emit a release on thread `t`.
    pub fn release(&mut self, t: usize, lock: LockId) {
        self.threads[t].push(Op::Release { lock });
    }

    /// Emit a critical section on thread `t`: acquire, body, release.
    pub fn critical(&mut self, t: usize, lock: LockId, body: impl FnOnce(&mut Self)) {
        self.acquire(t, lock);
        body(self);
        self.release(t, lock);
    }

    /// Emit a barrier arrival on **every** thread (global barrier).
    pub fn barrier_all(&mut self, bar: BarrierId) {
        for t in 0..self.threads.len() {
            self.threads[t].push(Op::Barrier { bar });
        }
    }

    /// Emit a barrier arrival on one thread (caller must ensure every
    /// thread eventually arrives the same number of times).
    pub fn barrier_one(&mut self, t: usize, bar: BarrierId) {
        self.threads[t].push(Op::Barrier { bar });
    }

    /// Raw op emission (escape hatch for tests).
    pub fn push(&mut self, t: usize, op: Op) {
        self.threads[t].push(op);
    }

    /// Finish and produce the program.
    pub fn finish(self) -> Program {
        Program {
            name: self.name,
            threads: self.threads,
            n_locks: self.n_locks,
            n_barriers: self.n_barriers,
            shared_base: Addr(SHARED_BASE),
            shared_end: Addr(self.next_shared),
        }
    }
}

fn round_lines(bytes: u64) -> u64 {
    let b = bytes.max(1);
    b.div_ceil(LineGeometry::LINE_BYTES) * LineGeometry::LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_do_not_overlap() {
        let mut b = Builder::new("t", 2);
        let s1 = b.shared(100);
        let s2 = b.shared(64);
        let p0 = b.private(0, 64);
        let p1 = b.private(1, 64);
        assert_eq!(s1.bytes(), 128); // rounded to lines
        assert!(s1.base().0 + s1.bytes() <= s2.base().0);
        assert!(s2.base().0 + s2.bytes() <= p0.base().0);
        assert_ne!(p0.base(), p1.base());
        // private ranges are per-thread disjoint
        assert!(p0.base().0 + PRIVATE_SPAN <= p1.base().0 + PRIVATE_SPAN);
    }

    #[test]
    fn arena_indexing() {
        let mut b = Builder::new("t", 1);
        let a = b.shared(128);
        assert_eq!(a.words(), 16);
        assert_eq!(a.lines(), 2);
        assert_eq!(a.word(0), a.base());
        assert_eq!(a.word(8), a.line(1));
        assert_eq!(a.word(1).0 - a.word(0).0, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arena_word_bounds_checked() {
        let mut b = Builder::new("t", 1);
        let a = b.shared(64);
        let _ = a.word(8);
    }

    #[test]
    fn chunks_partition_evenly() {
        let mut b = Builder::new("t", 1);
        let a = b.shared(4 * 64);
        let cs = a.chunks(2);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].lines(), 2);
        assert_eq!(cs[1].base().0, a.base().0 + 2 * 64);
    }

    #[test]
    fn critical_emits_balanced_section() {
        let mut b = Builder::new("t", 1);
        let l = b.lock();
        let a = b.shared(64);
        b.critical(0, l, |b| b.write(0, a.word(0)));
        let p = b.finish();
        assert_eq!(p.threads[0].len(), 3);
        assert!(matches!(p.threads[0][0], Op::Acquire { .. }));
        assert!(matches!(p.threads[0][1], Op::Write { .. }));
        assert!(matches!(p.threads[0][2], Op::Release { .. }));
    }

    #[test]
    fn barrier_all_hits_every_thread() {
        let mut b = Builder::new("t", 3);
        let bar = b.barrier();
        b.barrier_all(bar);
        let p = b.finish();
        for t in &p.threads {
            assert_eq!(t.len(), 1);
            assert!(matches!(t[0], Op::Barrier { .. }));
        }
        assert_eq!(p.n_barriers, 1);
    }

    #[test]
    fn finish_records_shared_span() {
        let mut b = Builder::new("t", 1);
        b.shared(64);
        b.shared(64);
        let p = b.finish();
        assert_eq!(p.shared_base, Addr(SHARED_BASE));
        assert_eq!(p.shared_end, Addr(SHARED_BASE + 128));
    }
}
