//! `x264`-like workload: wavefront row pipeline with migratory
//! boundary lines.
//!
//! Real x264 encodes frames with one thread per row band; a band can
//! only encode a macroblock once its upper neighbor has finished the
//! blocks it predicts from, producing a diagonal wavefront. We model
//! the wavefront with per-step barriers (the real code uses condition
//! variables; the dependency structure — thread `t` reads what thread
//! `t-1` wrote in the previous step — is identical), plus a
//! lock-protected shared rate-control accumulator.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Macroblocks per row band per step.
const BLOCKS: u64 = 6;
/// Wavefront steps per frame.
const STEPS: u32 = 4;
/// Frames (scaled).
const FRAMES: u32 = 2;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("x264", cores);
    let root = SplitMix64::new(seed ^ 0x2640);
    let bar = b.barrier();
    let rc_lock = b.lock();
    let rc = b.shared(64);
    // One row band per thread; each band has a line per step holding
    // the reconstructed boundary pixels the next band predicts from.
    let bands: Vec<_> = (0..cores)
        .map(|_| b.shared(STEPS as u64 * scale as u64 * 64))
        .collect();
    let scratch: Vec<_> = (0..cores).map(|t| b.private(t, 8 * 1024)).collect();

    for frame in 0..FRAMES * scale {
        for step in 0..STEPS * scale {
            for t in 0..cores {
                let mut rng = root.split(((frame as u64) << 40) | ((step as u64) << 20) | t as u64);
                // Read the boundary line the upper band produced in the
                // previous wavefront step.
                if t > 0 && step > 0 {
                    b.read_n(t, bands[t - 1].line((step - 1) as u64), 64);
                }
                // Encode the blocks: private scratch traffic.
                for blk in 0..BLOCKS {
                    let w = (blk * 17 + step as u64) % scratch[t].words();
                    b.read(t, scratch[t].word(w));
                    b.work(t, 8 + rng.gen_range(8) as u32);
                    b.write(t, scratch[t].word(w));
                }
                // Publish this band's boundary for the next step.
                b.write_n(t, bands[t].line(step as u64), 64);
                // Rate control update (contended).
                if rng.gen_bool(0.25) {
                    b.critical(t, rc_lock, |b| {
                        b.read(t, rc.word(0));
                        b.write(t, rc.word(0));
                    });
                }
            }
            // Wavefront step boundary.
            b.barrier_all(bar);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        for cores in [1, 2, 4] {
            validate(&build(cores, 1, 1)).unwrap_or_else(|e| panic!("cores={cores}: {e}"));
        }
    }

    #[test]
    fn wavefront_dependency_exists() {
        let p = build(3, 1, 4);
        // Thread 1 reads lines thread 0 writes.
        use std::collections::HashSet;
        let w0: HashSet<u64> = p.threads[0]
            .iter()
            .filter(|o| o.is_write())
            .filter_map(|o| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .map(|a| a.line().0)
            .collect();
        let r1: HashSet<u64> = p.threads[1]
            .iter()
            .filter(|o| o.is_mem() && !o.is_write())
            .filter_map(|o| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .map(|a| a.line().0)
            .collect();
        assert!(w0.intersection(&r1).count() > 0);
    }

    #[test]
    fn full_line_accesses_used() {
        // x264 moves whole boundary lines, exercising multi-word ops.
        let p = build(2, 1, 3);
        assert!(p
            .iter_ops()
            .any(|(_, o)| matches!(o, crate::op::Op::Write { len: 64, .. })));
    }
}
