//! Microbenchmarks: minimal programs that isolate one sharing pattern
//! each. Used heavily by unit/integration tests and the ablation
//! benches.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Threads alternate lock-protected read-modify-writes of one shared
/// line: pure migratory sharing, tiny regions, no conflicts.
pub fn ping_pong(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("ping_pong", cores);
    let mut rng = SplitMix64::new(seed ^ 0x9199);
    let l = b.lock();
    let line = b.shared(64);
    let rounds = 16 * scale as u64;
    for _ in 0..rounds {
        for t in 0..cores {
            b.critical(t, l, |b| {
                b.read(t, line.word(0));
                b.write(t, line.word(0));
            });
            b.work(t, 2 + rng.gen_range(4) as u32);
        }
    }
    b.finish()
}

/// Every access is private; the only sync is a final barrier. The
/// zero-sharing control: all designs should match the MESI baseline.
pub fn private_only(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("private_only", cores);
    let root = SplitMix64::new(seed ^ 0x9417);
    let bar = b.barrier();
    let arenas: Vec<_> = (0..cores).map(|t| b.private(t, 4 * 1024)).collect();
    for t in 0..cores {
        let mut rng = root.split(t as u64);
        for _ in 0..64 * scale as u64 {
            let w = rng.gen_range(arenas[t].words());
            b.read(t, arenas[t].word(w));
            b.work(t, 3);
            b.write(t, arenas[t].word(w));
        }
    }
    b.barrier_all(bar);
    b.finish()
}

/// A guaranteed region conflict: with at least two threads, thread 0
/// writes a shared word and thread 1 writes the same word, both in
/// unbounded regions (no sync until the end), so the regions overlap
/// in any interleaving. With one thread, degenerates to private use.
pub fn racy_pair(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("racy_pair", cores);
    let mut rng = SplitMix64::new(seed ^ 0x4ace);
    let bar = b.barrier();
    let hot = b.shared(64);
    let pads: Vec<_> = (0..cores).map(|t| b.private(t, 1024)).collect();
    for t in 0..cores {
        // Padding work so the conflicting accesses overlap in time.
        for i in 0..8 * scale as u64 {
            b.read(t, pads[t].word(i % pads[t].words()));
            b.work(t, 4 + rng.gen_range(4) as u32);
        }
        if t < 2 {
            // The race: both threads write word 0 with no ordering.
            b.write(t, hot.word(0));
            if t == 1 {
                b.read(t, hot.word(0));
            }
        }
        for i in 0..8 * scale as u64 {
            b.write(t, pads[t].word(i % pads[t].words()));
        }
    }
    b.barrier_all(bar);
    b.finish()
}

/// False sharing: each thread hammers its *own* word of one shared
/// line with no synchronization. At word granularity there is no
/// conflict (disjoint words), but MESI-based designs ping-pong the
/// line. Distinguishes word-granularity detection from line-granularity.
pub fn false_sharing(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("false_sharing", cores);
    let mut rng = SplitMix64::new(seed ^ 0xfa15e);
    let bar = b.barrier();
    // One line per 8 threads; thread t uses word t%8 of line t/8.
    let n_lines = cores.div_ceil(8) as u64;
    let arena = b.shared(n_lines * 64);
    for t in 0..cores {
        let line = (t / 8) as u64;
        let word = (t % 8) as u64;
        let addr = rce_common::Addr(arena.line(line).0 + word * 8);
        for _ in 0..32 * scale as u64 {
            b.read(t, addr);
            b.work(t, 1 + rng.gen_range(3) as u32);
            b.write(t, addr);
        }
    }
    b.barrier_all(bar);
    b.finish()
}

/// A working-set token passed around the cores under one lock: each
/// holder reads and rewrites the whole token block, so its lines
/// migrate core-to-core on every handoff. The sharpest migratory
/// pattern we have; stresses cache-to-cache transfers (MESI family)
/// and region-end flushes (ARC).
pub fn migratory(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("migratory", cores);
    let mut rng = SplitMix64::new(seed ^ 0x3194);
    let l = b.lock();
    // A 4-line token block.
    let token = b.shared(4 * 64);
    for _ in 0..8 * scale as u64 {
        for t in 0..cores {
            b.critical(t, l, |b| {
                for line in 0..token.lines() {
                    b.read(t, token.line(line));
                    b.write(t, token.line(line));
                }
            });
            b.work(t, 4 + rng.gen_range(8) as u32);
        }
    }
    b.finish()
}

/// Phased reader/writer: a writer thread updates a shared table in
/// its phase, then all threads read it in the next phase, with
/// barriers between. Models configuration/epoch data: single-writer,
/// many-reader, never conflicting.
pub fn reader_writer(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("reader_writer", cores);
    let root = SplitMix64::new(seed ^ 0x4ead);
    let bar = b.barrier();
    let table = b.shared(32 * 64);
    for epoch in 0..4 * scale as u64 {
        // Writer phase: thread (epoch % cores) rewrites part of the
        // table.
        let writer = (epoch % cores as u64) as usize;
        let mut rng = root.split(epoch);
        for _ in 0..12 {
            b.write(writer, table.word(rng.gen_range(table.words())));
        }
        b.barrier_all(bar);
        // Reader phase: everyone reads.
        for t in 0..cores {
            let mut rng = root.split(epoch << 16 | t as u64);
            for _ in 0..8 {
                b.read(t, table.word(rng.gen_range(table.words())));
            }
            b.work(t, 6);
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn all_micro_validate() {
        for cores in [1, 2, 4, 8, 9] {
            validate(&ping_pong(cores, 1, 1)).unwrap();
            validate(&private_only(cores, 1, 1)).unwrap();
            validate(&racy_pair(cores, 1, 1)).unwrap();
            validate(&false_sharing(cores, 1, 1)).unwrap();
            validate(&migratory(cores, 1, 1)).unwrap();
            validate(&reader_writer(cores, 1, 1)).unwrap();
        }
    }

    #[test]
    fn migratory_lines_visit_every_core() {
        let p = migratory(4, 1, 5);
        use std::collections::HashSet;
        let token_line = p.shared_base.line().0;
        let writers: HashSet<usize> = p
            .iter_ops()
            .filter(|(_, o)| o.is_write())
            .filter(|(_, o)| o.addr().is_some_and(|a| a.line().0 == token_line))
            .map(|(t, _)| t)
            .collect();
        assert_eq!(writers.len(), 4, "every core writes the token");
    }

    #[test]
    fn reader_writer_is_single_writer_per_epoch() {
        let p = reader_writer(4, 1, 9);
        // Between two consecutive barriers, at most one thread writes
        // shared data. Check per-thread: writes only happen in the
        // thread's own writer epochs — structurally, every write is
        // immediately followed (eventually) by a barrier before any
        // other thread's write. Simplest check: total write phases ==
        // epochs.
        let writers = p
            .threads
            .iter()
            .map(|ops| ops.iter().filter(|o| o.is_write()).count())
            .sum::<usize>();
        assert_eq!(writers, 4 * 12, "4 epochs x 12 writes each");
    }

    #[test]
    fn private_only_touches_no_shared() {
        let p = private_only(4, 1, 3);
        assert_eq!(
            p.iter_ops()
                .filter_map(|(_, o)| o.addr())
                .filter(|a| p.is_shared_addr(*a))
                .count(),
            0
        );
    }

    #[test]
    fn racy_pair_has_overlapping_unsynchronized_writes() {
        let p = racy_pair(2, 1, 7);
        // Both threads write the same shared word with no sync op
        // before it.
        for t in 0..2 {
            let pre_sync: Vec<_> = p.threads[t].iter().take_while(|o| !o.is_sync()).collect();
            assert!(
                pre_sync
                    .iter()
                    .any(|o| o.is_write() && o.addr().is_some_and(|a| p.is_shared_addr(a))),
                "thread {t} lacks the racy write"
            );
        }
    }

    #[test]
    fn false_sharing_words_are_disjoint() {
        let p = false_sharing(8, 1, 1);
        use std::collections::HashMap;
        let mut word_owner: HashMap<u64, usize> = HashMap::new();
        for (t, op) in p.iter_ops() {
            if let Some(a) = op.addr() {
                if p.is_shared_addr(a) {
                    let prev = word_owner.insert(a.0, t);
                    assert!(
                        prev.is_none() || prev == Some(t),
                        "word shared between threads"
                    );
                }
            }
        }
        // But all 8 threads share one line.
        let lines: std::collections::HashSet<u64> = p
            .iter_ops()
            .filter_map(|(_, o)| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .map(|a| a.line().0)
            .collect();
        assert_eq!(lines.len(), 1);
    }
}
