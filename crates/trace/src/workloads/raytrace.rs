//! `raytrace`-like workload: read-shared scene plus a lock-protected
//! work queue.
//!
//! Real raytrace casts rays against a large read-only scene structure
//! (BVH + geometry) and writes a private framebuffer tile; tiles are
//! claimed from a central counter under a lock. The signature is
//! overwhelming read-sharing with a single contended word — which
//! isolates the cost each design pays for *read-only* shared data
//! (ideally nothing).

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Tiles rendered per thread (scaled).
const TILES: u64 = 12;
/// Rays per tile.
const RAYS: u64 = 6;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("raytrace", cores);
    let root = SplitMix64::new(seed ^ 0x4a71);
    let bar = b.barrier();
    let queue_lock = b.lock();
    let queue = b.shared(64);
    // Large read-only scene.
    let scene = b.shared(512 * 1024);
    let framebuf: Vec<_> = (0..cores).map(|t| b.private(t, 16 * 1024)).collect();

    for t in 0..cores {
        let mut rng = root.split(t as u64);
        for tile in 0..TILES * scale as u64 {
            // Claim the next tile.
            b.critical(t, queue_lock, |b| {
                b.read(t, queue.word(0));
                b.write(t, queue.word(0));
            });
            for ray in 0..RAYS {
                // BVH traversal: a chain of dependent scene reads.
                for _ in 0..10 {
                    b.read(t, scene.word(rng.gen_range(scene.words())));
                }
                b.work(t, 12 + rng.gen_range(10) as u32);
                // Write the pixel (private).
                let px = (tile * RAYS + ray) % framebuf[t].words();
                b.write(t, framebuf[t].word(px));
            }
        }
    }
    b.barrier_all(bar);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        validate(&build(4, 1, 1)).unwrap();
    }

    #[test]
    fn only_queue_words_are_written_shared() {
        let p = build(4, 1, 8);
        use std::collections::HashSet;
        let shared_written: HashSet<u64> = p
            .iter_ops()
            .filter(|(_, o)| o.is_write())
            .filter_map(|(_, o)| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .map(|a| a.0)
            .collect();
        assert_eq!(shared_written.len(), 1, "only the queue counter is written");
    }

    #[test]
    fn scene_reads_dominate_traffic() {
        let p = build(2, 1, 4);
        let shared_reads = p
            .iter_ops()
            .filter(|(_, o)| o.is_mem() && !o.is_write())
            .filter_map(|(_, o)| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .count();
        let writes = p.iter_ops().filter(|(_, o)| o.is_write()).count();
        assert!(
            shared_reads > writes,
            "reads={shared_reads} writes={writes}"
        );
    }
}
