//! `canneal`-like workload: lock-free random element swaps —
//! *intentionally racy*.
//!
//! Real canneal performs simulated-annealing swaps of netlist elements
//! using unsynchronized (deliberately racy) pointer exchanges; PARSEC
//! documents the races as benign-by-design. For a region-conflict
//! system this is the stress case: conflicting accesses between
//! concurrent regions are *expected*, so an exception-delivering
//! design must detect them (and a deployment would either tolerate or
//! annotate them). Regions are short (a barrier every few dozen moves
//! models temperature steps) and the footprint is large and random.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Swap moves per thread per temperature step (scaled).
const MOVES: u64 = 24;
/// Temperature steps (scaled).
const STEPS: u32 = 3;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("canneal", cores);
    let root = SplitMix64::new(seed ^ 0xca22);
    let bar = b.barrier();
    // Shared netlist elements: uniformly accessed. Sized so the
    // scaled-down move count still produces real inter-thread line
    // sharing (as the full-size app does at full scale).
    let elements = b.shared(16 * 1024);

    for step in 0..STEPS * scale {
        for t in 0..cores {
            let mut rng = root.split((step as u64) << 32 | t as u64);
            for _ in 0..MOVES * scale as u64 {
                // Pick two random elements; read both, maybe swap.
                let i = rng.gen_range(elements.words());
                let j = rng.gen_range(elements.words());
                b.read(t, elements.word(i));
                b.read(t, elements.word(j));
                b.work(t, 6 + rng.gen_range(6) as u32);
                if rng.gen_bool(0.7) {
                    b.write(t, elements.word(i));
                    b.write(t, elements.word(j));
                }
            }
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        let p = build(4, 1, 1);
        validate(&p).unwrap();
        assert_eq!(p.n_locks, 0, "canneal's swaps are lock-free");
    }

    #[test]
    fn has_unsynchronized_shared_writes() {
        let p = build(2, 1, 2);
        let shared_writes = p
            .iter_ops()
            .filter(|(_, o)| o.is_write() && o.addr().is_some_and(|a| p.is_shared_addr(a)))
            .count();
        assert!(shared_writes > 0, "canneal must write shared data racily");
    }

    #[test]
    fn footprint_is_large() {
        let p = build(2, 1, 4);
        use std::collections::HashSet;
        let lines: HashSet<_> = p
            .iter_ops()
            .filter_map(|(_, o)| o.addr())
            .map(|a| a.line())
            .collect();
        assert!(lines.len() > 64, "only {} distinct lines", lines.len());
    }
}
