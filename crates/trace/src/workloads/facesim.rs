//! `facesim`-like workload: row-partitioned stencil with neighbor
//! boundary reads.
//!
//! Real facesim integrates a physical face model whose mesh is
//! partitioned across threads; each iteration a thread updates its
//! partition and reads the boundary of adjacent partitions, with a
//! barrier per iteration. The sharing signature is stable
//! producer→consumer pairs at partition borders, synchronized by
//! barriers (so the sharing is *not* conflicting).

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Lines per thread partition (scaled).
const PART_LINES: u64 = 12;
/// Stencil iterations (scaled).
const ITERS: u32 = 4;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("facesim", cores);
    let root = SplitMix64::new(seed ^ 0xface);
    let bar = b.barrier();
    let part_lines = PART_LINES * scale as u64;
    // Double-buffered grid: read generation g, write generation g+1.
    // This is how the real application avoids racing on boundaries.
    let grid_a = b.shared(cores as u64 * part_lines * 64);
    let grid_b = b.shared(cores as u64 * part_lines * 64);
    let parts = [grid_a.chunks(cores), grid_b.chunks(cores)];

    for it in 0..ITERS * scale {
        let src = &parts[it as usize % 2];
        let dst = &parts[(it as usize + 1) % 2];
        for t in 0..cores {
            let mut rng = root.split((it as u64) << 32 | t as u64);
            // Read the boundary line of each neighbor's *previous*
            // generation.
            if t > 0 {
                let nb = &src[t - 1];
                let base = nb.line(nb.lines() - 1);
                for w in 0..8u64 {
                    b.read(t, rce_common::Addr(base.0 + w * 8));
                }
            }
            if t + 1 < cores {
                let nb = &src[t + 1];
                let base = nb.line(0);
                for w in 0..8u64 {
                    b.read(t, rce_common::Addr(base.0 + w * 8));
                }
            }
            // Read own previous generation, write next generation.
            for l in 0..src[t].lines() {
                b.read(t, src[t].line(l));
                b.work(t, 4 + rng.gen_range(4) as u32);
                b.write(t, dst[t].line(l));
            }
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        for cores in [1, 2, 4] {
            validate(&build(cores, 1, 1)).unwrap();
        }
    }

    #[test]
    fn neighbors_read_each_others_boundaries() {
        let p = build(4, 1, 3);
        // Thread 1 must read a line that thread 0 writes.
        use std::collections::HashSet;
        let writes0: HashSet<u64> = p.threads[0]
            .iter()
            .filter(|o| o.is_write())
            .filter_map(|o| o.addr())
            .map(|a| a.line().0)
            .collect();
        let reads1: HashSet<u64> = p.threads[1]
            .iter()
            .filter(|o| o.is_mem() && !o.is_write())
            .filter_map(|o| o.addr())
            .map(|a| a.line().0)
            .collect();
        assert!(
            writes0.intersection(&reads1).count() > 0,
            "no boundary sharing found"
        );
    }

    #[test]
    fn all_sharing_is_barrier_separated() {
        // facesim writes shared data but never under a lock; the only
        // sync is the barrier, so the generator must emit barriers.
        let p = build(4, 1, 3);
        assert_eq!(p.n_locks, 0);
        assert!(p.total_sync_ops() > 0);
    }
}
