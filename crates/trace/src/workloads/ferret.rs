//! `ferret`-like workload: deep pipeline over a large read-shared
//! database.
//!
//! Real ferret is a four-stage similarity-search pipeline
//! (segment → extract → index → rank) whose index/rank stages probe a
//! large read-only database. The signature is dedup-style migratory
//! query buffers plus heavy read-sharing of database lines that every
//! core caches — which stresses L1 capacity and, for CE, evicts lines
//! whose access bits must spill.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Queries per pass (scaled).
const QUERIES: u64 = 16;
/// Passes (scaled).
const PASSES: u32 = 2;
/// Words per query buffer.
const QUERY_WORDS: u64 = 8;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("ferret", cores);
    let root = SplitMix64::new(seed ^ 0xfe44);
    let bar = b.barrier();
    let n_queries = QUERIES * scale as u64;
    let queries = b.shared(n_queries * QUERY_WORDS * 8);
    // Large read-only database.
    let db = b.shared(256 * 1024);
    let qlock = b.lock();
    let qcounters = b.shared(64);
    // Striped per-query locks express the queue's happens-before at
    // trace level (see dedup.rs for the rationale).
    let query_locks: Vec<_> = (0..16.min(n_queries) as usize).map(|_| b.lock()).collect();
    let lock_of = |q: u64| query_locks[(q % query_locks.len() as u64) as usize];

    let nstages = 4.min(cores);

    for pass in 0..PASSES * scale {
        for t in 0..cores {
            let mut rng = root.split((pass as u64) << 32 | t as u64);
            let stage = t % nstages;
            let lane = t / nstages;
            let lanes = (cores - stage).div_ceil(nstages);
            for q in (lane..n_queries as usize).step_by(lanes) {
                let q = q as u64;
                // Claim work from the stage queue.
                b.critical(t, qlock, |b| {
                    b.read(t, qcounters.word(stage as u64));
                    b.write(t, qcounters.word(stage as u64));
                });
                match stage {
                    0 => {
                        // Segment: produce the query descriptor.
                        b.critical(t, lock_of(q), |b| {
                            for w in 0..QUERY_WORDS / 2 {
                                b.write(t, queries.word(q * QUERY_WORDS + w));
                            }
                        });
                        b.work(t, 10 + rng.gen_range(6) as u32);
                    }
                    1 => {
                        // Extract: read descriptor, append features.
                        b.critical(t, lock_of(q), |b| {
                            for w in 0..QUERY_WORDS / 2 {
                                b.read(t, queries.word(q * QUERY_WORDS + w));
                            }
                            for w in QUERY_WORDS / 2..QUERY_WORDS * 3 / 4 {
                                b.write(t, queries.word(q * QUERY_WORDS + w));
                            }
                        });
                        b.work(t, 14 + rng.gen_range(8) as u32);
                    }
                    2 => {
                        // Index: probe the database.
                        b.critical(t, lock_of(q), |b| {
                            for w in 0..QUERY_WORDS * 3 / 4 {
                                b.read(t, queries.word(q * QUERY_WORDS + w));
                            }
                        });
                        for _ in 0..12 {
                            b.read(t, db.word(rng.gen_range(db.words())));
                        }
                        b.work(t, 20 + rng.gen_range(10) as u32);
                    }
                    _ => {
                        // Rank: probe + finalize the query.
                        for _ in 0..8 {
                            b.read(t, db.word(rng.gen_range(db.words())));
                        }
                        b.work(t, 16 + rng.gen_range(8) as u32);
                        b.critical(t, lock_of(q), |b| {
                            for w in QUERY_WORDS * 3 / 4..QUERY_WORDS {
                                b.write(t, queries.word(q * QUERY_WORDS + w));
                            }
                        });
                    }
                }
            }
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        for cores in [1, 2, 4, 8] {
            validate(&build(cores, 1, 1)).unwrap_or_else(|e| panic!("cores={cores}: {e}"));
        }
    }

    #[test]
    fn database_reads_are_widespread() {
        let p = build(8, 1, 5);
        use std::collections::HashSet;
        let lines: HashSet<u64> = p
            .iter_ops()
            .filter(|(_, o)| o.is_mem() && !o.is_write())
            .filter_map(|(_, o)| o.addr())
            .map(|a| a.line().0)
            .collect();
        assert!(
            lines.len() > 100,
            "only {} distinct read lines",
            lines.len()
        );
    }
}
