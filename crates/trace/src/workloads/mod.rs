//! The workload catalog.
//!
//! Thirteen PARSEC-like applications (the suite the paper evaluates)
//! plus four microbenchmarks used by tests and ablations. Each
//! generator is seed-deterministic: `build(cores, scale, seed)` always
//! returns the identical [`Program`].
//!
//! The PARSEC stand-ins reproduce each application's *sharing
//! pattern*, which is what determines conflict-exception cost:
//!
//! | Workload | Pattern |
//! |---|---|
//! | blackscholes | embarrassingly parallel, barrier-separated phases |
//! | bodytrack | read-shared model + lock-protected reductions |
//! | canneal | lock-free random swaps — *intentionally racy* |
//! | dedup | multi-stage pipeline, migratory chunk lines |
//! | facesim | row stencil, neighbor boundary reads |
//! | ferret | deeper pipeline + large read-shared database |
//! | fluidanimate | fine-grained per-cell locks, border sharing |
//! | freqmine | private build + lock-protected merges |
//! | raytrace | read-shared scene + lock-protected work queue |
//! | streamcluster | read-shared points, contended center updates |
//! | swaptions | fully private, almost no synchronization |
//! | vips | producer/consumer tiles |
//! | x264 | wavefront row pipeline, migratory boundary lines |

// Generators index per-thread arenas by the thread loop variable —
// the clearest expression of "thread t's arena".
#![allow(clippy::needless_range_loop)]

use crate::program::Program;

mod blackscholes;
mod bodytrack;
mod canneal;
mod dedup;
mod facesim;
mod ferret;
mod fluidanimate;
mod freqmine;
mod micro;
mod raytrace;
mod streamcluster;
mod swaptions;
mod vips;
mod x264;

/// Identifies a workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum WorkloadSpec {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
    /// Micro: two threads ping-pong one line under a lock.
    PingPong,
    /// Micro: purely private accesses, no sharing at all.
    PrivateOnly,
    /// Micro: a guaranteed region conflict on one shared word.
    RacyPair,
    /// Micro: threads write distinct words of one line (false sharing —
    /// no word-granularity conflict, heavy line ping-pong).
    FalseSharing,
    /// Micro: a token block passed around all cores under a lock
    /// (sharpest migratory pattern).
    Migratory,
    /// Micro: barrier-phased single-writer/many-reader table.
    ReaderWriter,
}

impl WorkloadSpec {
    /// The PARSEC-like evaluation suite, in figure order.
    pub const PARSEC: [WorkloadSpec; 13] = [
        WorkloadSpec::Blackscholes,
        WorkloadSpec::Bodytrack,
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
        WorkloadSpec::Facesim,
        WorkloadSpec::Ferret,
        WorkloadSpec::Fluidanimate,
        WorkloadSpec::Freqmine,
        WorkloadSpec::Raytrace,
        WorkloadSpec::Streamcluster,
        WorkloadSpec::Swaptions,
        WorkloadSpec::Vips,
        WorkloadSpec::X264,
    ];

    /// The microbenchmarks.
    pub const MICRO: [WorkloadSpec; 6] = [
        WorkloadSpec::PingPong,
        WorkloadSpec::PrivateOnly,
        WorkloadSpec::RacyPair,
        WorkloadSpec::FalseSharing,
        WorkloadSpec::Migratory,
        WorkloadSpec::ReaderWriter,
    ];

    /// Figure row label.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadSpec::Blackscholes => "blackscholes",
            WorkloadSpec::Bodytrack => "bodytrack",
            WorkloadSpec::Canneal => "canneal",
            WorkloadSpec::Dedup => "dedup",
            WorkloadSpec::Facesim => "facesim",
            WorkloadSpec::Ferret => "ferret",
            WorkloadSpec::Fluidanimate => "fluidanimate",
            WorkloadSpec::Freqmine => "freqmine",
            WorkloadSpec::Raytrace => "raytrace",
            WorkloadSpec::Streamcluster => "streamcluster",
            WorkloadSpec::Swaptions => "swaptions",
            WorkloadSpec::Vips => "vips",
            WorkloadSpec::X264 => "x264",
            WorkloadSpec::PingPong => "ping_pong",
            WorkloadSpec::PrivateOnly => "private_only",
            WorkloadSpec::RacyPair => "racy_pair",
            WorkloadSpec::FalseSharing => "false_sharing",
            WorkloadSpec::Migratory => "migratory",
            WorkloadSpec::ReaderWriter => "reader_writer",
        }
    }

    /// Parse a name as produced by [`WorkloadSpec::name`].
    pub fn parse(s: &str) -> Option<WorkloadSpec> {
        WorkloadSpec::PARSEC
            .iter()
            .chain(WorkloadSpec::MICRO.iter())
            .copied()
            .find(|w| w.name() == s)
    }

    /// True for workloads whose *intended* behavior contains data
    /// races (conflict exceptions are expected even on a correct run).
    pub fn is_racy(self) -> bool {
        matches!(self, WorkloadSpec::Canneal | WorkloadSpec::RacyPair)
    }

    /// Build the program for `cores` threads at difficulty `scale`
    /// (linear in trace length) with deterministic `seed`.
    pub fn build(self, cores: usize, scale: u32, seed: u64) -> Program {
        assert!(cores >= 1, "need at least one core");
        assert!(scale >= 1, "scale must be at least 1");
        match self {
            WorkloadSpec::Blackscholes => blackscholes::build(cores, scale, seed),
            WorkloadSpec::Bodytrack => bodytrack::build(cores, scale, seed),
            WorkloadSpec::Canneal => canneal::build(cores, scale, seed),
            WorkloadSpec::Dedup => dedup::build(cores, scale, seed),
            WorkloadSpec::Facesim => facesim::build(cores, scale, seed),
            WorkloadSpec::Ferret => ferret::build(cores, scale, seed),
            WorkloadSpec::Fluidanimate => fluidanimate::build(cores, scale, seed),
            WorkloadSpec::Freqmine => freqmine::build(cores, scale, seed),
            WorkloadSpec::Raytrace => raytrace::build(cores, scale, seed),
            WorkloadSpec::Streamcluster => streamcluster::build(cores, scale, seed),
            WorkloadSpec::Swaptions => swaptions::build(cores, scale, seed),
            WorkloadSpec::Vips => vips::build(cores, scale, seed),
            WorkloadSpec::X264 => x264::build(cores, scale, seed),
            WorkloadSpec::PingPong => micro::ping_pong(cores, scale, seed),
            WorkloadSpec::PrivateOnly => micro::private_only(cores, scale, seed),
            WorkloadSpec::RacyPair => micro::racy_pair(cores, scale, seed),
            WorkloadSpec::FalseSharing => micro::false_sharing(cores, scale, seed),
            WorkloadSpec::Migratory => micro::migratory(cores, scale, seed),
            WorkloadSpec::ReaderWriter => micro::reader_writer(cores, scale, seed),
        }
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn every_workload_builds_valid_programs() {
        for w in WorkloadSpec::PARSEC
            .iter()
            .chain(WorkloadSpec::MICRO.iter())
        {
            for cores in [1, 2, 4, 8] {
                let p = w.build(cores, 1, 42);
                validate(&p).unwrap_or_else(|e| panic!("{w} cores={cores}: {e}"));
                assert_eq!(p.n_threads(), cores, "{w}");
                assert!(p.total_mem_ops() > 0, "{w} has no memory ops");
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for w in WorkloadSpec::PARSEC
            .iter()
            .chain(WorkloadSpec::MICRO.iter())
        {
            let a = w.build(4, 2, 7);
            let b = w.build(4, 2, 7);
            assert_eq!(a, b, "{w} not deterministic");
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        // Deterministic-but-seedless generators (pure structure) are
        // allowed; at least the stochastic ones must differ.
        let mut differing = 0;
        for w in WorkloadSpec::PARSEC {
            if w.build(4, 1, 1) != w.build(4, 1, 2) {
                differing += 1;
            }
        }
        assert!(differing >= 6, "only {differing} workloads vary with seed");
    }

    #[test]
    fn scale_grows_traces() {
        for w in WorkloadSpec::PARSEC {
            let small = w.build(4, 1, 3).total_ops();
            let big = w.build(4, 4, 3).total_ops();
            assert!(
                big > small,
                "{w}: scale did not grow trace ({small} -> {big})"
            );
        }
    }

    #[test]
    fn name_parse_roundtrip() {
        for w in WorkloadSpec::PARSEC
            .iter()
            .chain(WorkloadSpec::MICRO.iter())
        {
            assert_eq!(WorkloadSpec::parse(w.name()), Some(*w));
        }
        assert_eq!(WorkloadSpec::parse("nonesuch"), None);
    }

    #[test]
    fn racy_flags() {
        assert!(WorkloadSpec::Canneal.is_racy());
        assert!(WorkloadSpec::RacyPair.is_racy());
        assert!(!WorkloadSpec::Blackscholes.is_racy());
        assert!(!WorkloadSpec::FalseSharing.is_racy());
    }
}
