//! `fluidanimate`-like workload: fine-grained per-cell locking with
//! border sharing.
//!
//! Real fluidanimate partitions a particle grid across threads and
//! protects each cell with its own mutex; updating a cell touches its
//! neighbors, so border cells are locked and written by two threads.
//! The signature is *many tiny critical sections* — the highest
//! synchronization density in the suite — which makes regions very
//! short. Short regions are the worst case for ARC's region-end work
//! and the best case for its self-invalidation (little to invalidate).

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Grid cells per thread (scaled).
const CELLS_PER_THREAD: u64 = 12;
/// Timesteps (scaled).
const STEPS: u32 = 3;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("fluidanimate", cores);
    let root = SplitMix64::new(seed ^ 0xf1d0);
    let bar = b.barrier();
    let n_cells = cores as u64 * CELLS_PER_THREAD * scale as u64;
    // One line per cell.
    let cells = b.shared(n_cells * 64);
    // One lock per cell (capped; lock striping beyond the cap).
    let n_locks = n_cells.min(256) as usize;
    let locks: Vec<_> = (0..n_locks).map(|_| b.lock()).collect();
    let lock_of = |cell: u64| locks[(cell % n_locks as u64) as usize];

    for step in 0..STEPS * scale {
        for t in 0..cores {
            let mut rng = root.split((step as u64) << 32 | t as u64);
            let first = t as u64 * CELLS_PER_THREAD * scale as u64;
            let last = first + CELLS_PER_THREAD * scale as u64;
            for cell in first..last {
                // Update the cell and one neighbor (maybe owned by the
                // adjacent thread). Locks are taken in ascending ID
                // order to avoid deadlock.
                let neighbor = if rng.gen_bool(0.3) && cell + 1 < n_cells {
                    cell + 1
                } else if cell > 0 {
                    cell - 1
                } else {
                    cell
                };
                let (l_lo, l_hi) = {
                    let a = lock_of(cell);
                    let b = lock_of(neighbor);
                    if a.0 <= b.0 {
                        (a, b)
                    } else {
                        (b, a)
                    }
                };
                b.acquire(t, l_lo);
                if l_hi != l_lo {
                    b.acquire(t, l_hi);
                }
                b.read(t, cells.line(cell));
                if neighbor != cell {
                    b.read(t, cells.line(neighbor));
                }
                b.work(t, 4 + rng.gen_range(4) as u32);
                b.write(t, cells.line(cell));
                if neighbor != cell && rng.gen_bool(0.5) {
                    b.write(t, cells.line(neighbor));
                }
                if l_hi != l_lo {
                    b.release(t, l_hi);
                }
                b.release(t, l_lo);
            }
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        for cores in [1, 2, 4, 8] {
            validate(&build(cores, 1, 1)).unwrap_or_else(|e| panic!("cores={cores}: {e}"));
        }
    }

    #[test]
    fn many_locks_allocated() {
        let p = build(4, 1, 1);
        assert!(
            p.n_locks >= 16,
            "expected fine-grained locks, got {}",
            p.n_locks
        );
    }

    #[test]
    fn regions_are_short() {
        let p = build(4, 1, 2);
        let s = crate::regions::region_stats(&p);
        assert!(
            s.mean_mem_ops_per_region < 8.0,
            "expected tiny critical-section regions, got {}",
            s.mean_mem_ops_per_region
        );
    }

    #[test]
    fn lock_order_is_ascending() {
        // Guard against deadlock: within any nest, the second acquire
        // has a lock ID greater than the first.
        let p = build(8, 1, 3);
        for ops in &p.threads {
            let mut held: Vec<u32> = Vec::new();
            for op in ops {
                match op {
                    crate::op::Op::Acquire { lock } => {
                        if let Some(&top) = held.last() {
                            assert!(lock.0 > top, "non-ascending lock nest");
                        }
                        held.push(lock.0);
                    }
                    crate::op::Op::Release { lock } => {
                        held.retain(|l| l != &lock.0);
                    }
                    _ => {}
                }
            }
        }
    }
}
