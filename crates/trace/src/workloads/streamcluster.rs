//! `streamcluster`-like workload: read-shared points with contended
//! center updates.
//!
//! Real streamcluster repeatedly scans a shared point set, computes
//! distances to candidate centers, and updates shared cost/center
//! state under locks, with barriers between phases. It is the
//! most barrier-dense PARSEC application; its signature is wide
//! read-sharing plus a small, hot, write-shared working set.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Points per thread (scaled).
const POINTS: u64 = 32;
/// Clustering phases (scaled).
const PHASES: u32 = 4;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("streamcluster", cores);
    let root = SplitMix64::new(seed ^ 0x57c1);
    let bar = b.barrier();
    let cost_lock = b.lock();
    let n_points = cores as u64 * POINTS * scale as u64;
    // Shared point coordinates: read by the owning thread each phase.
    let points = b.shared(n_points * 64);
    let point_chunks = points.chunks(cores);
    // Hot shared center/cost block.
    let centers = b.shared(512);

    for phase in 0..PHASES * scale {
        // Compute sub-phase: read points and centers (centers are
        // read-only here; updates happen in the next sub-phase, after
        // the barrier — the same phase structure the real application
        // uses to keep cost evaluation race-free).
        for t in 0..cores {
            let mut rng = root.split((phase as u64) << 32 | t as u64);
            for l in 0..point_chunks[t].lines() {
                b.read(t, point_chunks[t].line(l));
                for _ in 0..2 {
                    b.read(t, centers.word(rng.gen_range(centers.words())));
                }
                b.work(t, 10 + rng.gen_range(6) as u32);
            }
        }
        b.barrier_all(bar);
        // Update sub-phase: fold per-thread costs into the shared
        // centers under the lock.
        for t in 0..cores {
            let mut rng = root.split((phase as u64) << 32 | (t as u64) << 16);
            b.critical(t, cost_lock, |b| {
                let w = rng.gen_range(centers.words());
                b.read(t, centers.word(w));
                b.write(t, centers.word(w));
            });
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        validate(&build(4, 1, 1)).unwrap();
    }

    #[test]
    fn barrier_dense() {
        let p = build(4, 2, 3);
        let barriers = p
            .iter_ops()
            .filter(|(_, o)| matches!(o, crate::op::Op::Barrier { .. }))
            .count();
        assert!(barriers >= 4 * 4, "expected many barriers, got {barriers}");
    }

    #[test]
    fn center_block_is_hot() {
        // Center words are both read and written by multiple threads.
        let p = build(4, 1, 9);
        use std::collections::HashSet;
        let mut writers_per_line: std::collections::HashMap<u64, HashSet<usize>> =
            Default::default();
        for (t, op) in p.iter_ops() {
            if op.is_write() {
                if let Some(a) = op.addr() {
                    if p.is_shared_addr(a) {
                        writers_per_line.entry(a.line().0).or_default().insert(t);
                    }
                }
            }
        }
        assert!(
            writers_per_line.values().any(|s| s.len() > 1),
            "no line written by multiple threads"
        );
    }
}
