//! `bodytrack`-like workload: read-shared model with lock-protected
//! reductions.
//!
//! Real bodytrack evaluates particle likelihoods against a shared body
//! model: all threads read the model heavily, keep private particles,
//! and fold per-thread results into shared accumulators under a lock
//! at the end of every frame, with a barrier between frames. The
//! sharing signature is read-mostly with bursts of contended writes.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Particles evaluated per thread per frame (scaled).
const PARTICLES: u64 = 16;
/// Frames (scaled).
const FRAMES: u32 = 3;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("bodytrack", cores);
    let root = SplitMix64::new(seed ^ 0xb0d7);
    let bar = b.barrier();
    let reduce_lock = b.lock();
    // Shared read-mostly model (large enough to spill small L1s).
    let model = b.shared(64 * 1024);
    // Shared accumulator block, written under the lock.
    let accum = b.shared(256);
    let scratch: Vec<_> = (0..cores).map(|t| b.private(t, 4096)).collect();

    for frame in 0..FRAMES * scale {
        for t in 0..cores {
            let mut rng = root.split((frame as u64) << 32 | t as u64);
            for p in 0..PARTICLES {
                // Gather model samples (read-shared).
                for _ in 0..6 {
                    b.read(t, model.word(rng.gen_range(model.words())));
                }
                b.work(t, 12 + rng.gen_range(12) as u32);
                // Private particle state update.
                let w = (p * 7 + frame as u64) % scratch[t].words();
                b.write(t, scratch[t].word(w));
            }
            // Fold this thread's result into shared accumulators.
            b.critical(t, reduce_lock, |b| {
                let w = rng.gen_range(accum.words());
                b.read(t, accum.word(w));
                b.write(t, accum.word(w));
            });
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        let p = build(4, 1, 1);
        validate(&p).unwrap();
        assert_eq!(p.n_locks, 1);
        assert!(p.n_barriers >= 1);
    }

    #[test]
    fn shared_writes_happen_only_in_critical_sections() {
        let p = build(3, 1, 5);
        for (t, ops) in p.threads.iter().enumerate() {
            let mut depth = 0i32;
            for op in ops {
                match op {
                    crate::op::Op::Acquire { .. } => depth += 1,
                    crate::op::Op::Release { .. } => depth -= 1,
                    crate::op::Op::Write { addr, .. } if p.is_shared_addr(*addr) => {
                        assert!(depth > 0, "thread {t}: unlocked shared write");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn model_reads_dominate() {
        let p = build(2, 1, 3);
        let reads = p
            .iter_ops()
            .filter(|(_, o)| o.is_mem() && !o.is_write())
            .count();
        let writes = p.iter_ops().filter(|(_, o)| o.is_write()).count();
        assert!(reads > 3 * writes, "reads={reads} writes={writes}");
    }
}
