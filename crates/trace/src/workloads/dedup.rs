//! `dedup`-like workload: multi-stage pipeline with migratory chunk
//! lines.
//!
//! Real dedup streams data chunks through fragment → hash → compress
//! stages connected by locked queues. Chunk buffers are written by one
//! stage and read by the next, so their lines migrate core-to-core —
//! the pattern that triggers the most coherence (and metadata) traffic
//! per access. Threads are assigned round-robin to three stage groups.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Chunks processed per pipeline pass (scaled).
const CHUNKS: u64 = 24;
/// Pipeline passes (scaled).
const PASSES: u32 = 2;
/// Words per chunk buffer.
const CHUNK_WORDS: u64 = 16;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("dedup", cores);
    let root = SplitMix64::new(seed ^ 0xdedb);
    let bar = b.barrier();
    let n_chunks = CHUNKS * scale as u64;
    // One buffer per in-flight chunk (written by stage s, read by s+1).
    let chunk_buf = b.shared(n_chunks * CHUNK_WORDS * 8);
    // Locked queue head/tail counters per stage boundary.
    let q0 = b.lock();
    let q1 = b.lock();
    let queues = b.shared(128);
    // Striped per-chunk locks: the real code's queues block a consumer
    // until its chunk is produced; at trace level the same
    // happens-before is expressed by putting each chunk's buffer
    // accesses under the chunk's lock (critical sections under one
    // lock are never concurrent).
    let chunk_locks: Vec<_> = (0..16.min(n_chunks) as usize).map(|_| b.lock()).collect();
    let lock_of = |c: u64| chunk_locks[(c % chunk_locks.len() as u64) as usize];

    // Assign threads round-robin to 3 stages (all stages nonempty when
    // cores >= 3; with fewer cores threads take multiple roles).
    let nstages = 3.min(cores);

    for pass in 0..PASSES * scale {
        for t in 0..cores {
            let mut rng = root.split((pass as u64) << 32 | t as u64);
            let stage = t % nstages;
            let lane = t / nstages; // index within the stage group
            let lanes = (cores - stage).div_ceil(nstages); // group size
                                                           // Threads in a stage group partition the chunks.
            for c in (lane..n_chunks as usize).step_by(lanes) {
                let c = c as u64;
                match stage {
                    0 => {
                        // Fragment: produce the chunk, enqueue.
                        b.critical(t, lock_of(c), |b| {
                            for w in 0..CHUNK_WORDS / 2 {
                                b.write(t, chunk_buf.word(c * CHUNK_WORDS + w));
                            }
                        });
                        b.work(t, 8 + rng.gen_range(8) as u32);
                        b.critical(t, q0, |b| {
                            b.read(t, queues.word(0));
                            b.write(t, queues.word(0));
                        });
                    }
                    1 => {
                        // Hash: dequeue, read chunk, write digest words.
                        b.critical(t, q0, |b| {
                            b.read(t, queues.word(1));
                            b.write(t, queues.word(1));
                        });
                        b.critical(t, lock_of(c), |b| {
                            for w in 0..CHUNK_WORDS / 2 {
                                b.read(t, chunk_buf.word(c * CHUNK_WORDS + w));
                            }
                            for w in CHUNK_WORDS / 2..CHUNK_WORDS * 3 / 4 {
                                b.write(t, chunk_buf.word(c * CHUNK_WORDS + w));
                            }
                        });
                        b.work(t, 20 + rng.gen_range(10) as u32);
                        b.critical(t, q1, |b| {
                            b.read(t, queues.word(2));
                            b.write(t, queues.word(2));
                        });
                    }
                    _ => {
                        // Compress: dequeue, read digest, write output.
                        b.critical(t, q1, |b| {
                            b.read(t, queues.word(3));
                            b.write(t, queues.word(3));
                        });
                        b.critical(t, lock_of(c), |b| {
                            for w in 0..CHUNK_WORDS * 3 / 4 {
                                b.read(t, chunk_buf.word(c * CHUNK_WORDS + w));
                            }
                            for w in CHUNK_WORDS * 3 / 4..CHUNK_WORDS {
                                b.write(t, chunk_buf.word(c * CHUNK_WORDS + w));
                            }
                        });
                        b.work(t, 24 + rng.gen_range(12) as u32);
                    }
                }
            }
        }
        // Pass boundary: pipeline drains.
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        for cores in [1, 2, 3, 4, 8] {
            let p = build(cores, 1, 1);
            validate(&p).unwrap_or_else(|e| panic!("cores={cores}: {e}"));
        }
        let p = build(6, 1, 1);
        // Two queue locks plus the striped chunk locks.
        assert_eq!(p.n_locks, 2 + 16);
    }

    #[test]
    fn chunk_lines_migrate_between_stage_threads() {
        let p = build(6, 1, 7);
        // Some shared line must be written by one thread and read by
        // a different one.
        use std::collections::HashMap;
        let mut writers: HashMap<u64, usize> = HashMap::new();
        let mut migratory = false;
        for (t, op) in p.iter_ops() {
            if let Some(a) = op.addr() {
                if !p.is_shared_addr(a) {
                    continue;
                }
                let l = a.line().0;
                if op.is_write() {
                    writers.insert(l, t);
                } else if let Some(&w) = writers.get(&l) {
                    if w != t {
                        migratory = true;
                    }
                }
            }
        }
        assert!(migratory, "dedup should migrate chunk lines across threads");
    }
}
