//! `freqmine`-like workload: private tree building with lock-protected
//! merges.
//!
//! Real freqmine builds per-thread FP-tree fragments (long private
//! phases) and periodically merges them into shared structures. The
//! signature is long private regions punctuated by bursty contended
//! writes — CE-friendly between merges, contention-bound at merges.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Items mined per thread per round (scaled).
const ITEMS: u64 = 48;
/// Mining rounds (scaled).
const ROUNDS: u32 = 3;
/// Merge into the shared tree every this many items.
const MERGE_EVERY: u64 = 16;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("freqmine", cores);
    let root = SplitMix64::new(seed ^ 0xf4e0);
    let bar = b.barrier();
    let merge_lock = b.lock();
    let shared_tree = b.shared(16 * 1024);
    let privates: Vec<_> = (0..cores).map(|t| b.private(t, 32 * 1024)).collect();

    for round in 0..ROUNDS * scale {
        for t in 0..cores {
            let mut rng = root.split((round as u64) << 32 | t as u64);
            for i in 0..ITEMS * scale as u64 {
                // Walk and extend the private tree fragment.
                for _ in 0..3 {
                    b.read(t, privates[t].word(rng.gen_range(privates[t].words())));
                }
                b.work(t, 8 + rng.gen_range(8) as u32);
                b.write(t, privates[t].word(rng.gen_range(privates[t].words())));
                // Periodic merge into the shared tree.
                if (i + 1) % MERGE_EVERY == 0 {
                    b.critical(t, merge_lock, |b| {
                        for _ in 0..4 {
                            let w = rng.gen_range(shared_tree.words());
                            b.read(t, shared_tree.word(w));
                            b.write(t, shared_tree.word(w));
                        }
                    });
                }
            }
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        validate(&build(4, 1, 1)).unwrap();
    }

    #[test]
    fn private_ops_dominate() {
        let p = build(4, 1, 5);
        let (mut private, mut shared) = (0usize, 0usize);
        for (_, op) in p.iter_ops() {
            if let Some(a) = op.addr() {
                if p.is_shared_addr(a) {
                    shared += 1;
                } else {
                    private += 1;
                }
            }
        }
        assert!(private > 2 * shared, "private={private} shared={shared}");
    }

    #[test]
    fn merges_are_locked() {
        let p = build(2, 1, 6);
        for (t, ops) in p.threads.iter().enumerate() {
            let mut depth = 0;
            for op in ops {
                match op {
                    crate::op::Op::Acquire { .. } => depth += 1,
                    crate::op::Op::Release { .. } => depth -= 1,
                    crate::op::Op::Write { addr, .. } if p.is_shared_addr(*addr) => {
                        assert!(depth > 0, "thread {t}: unlocked shared write")
                    }
                    _ => {}
                }
            }
        }
    }
}
