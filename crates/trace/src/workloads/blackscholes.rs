//! `blackscholes`-like workload: embarrassingly parallel option
//! pricing.
//!
//! Real blackscholes partitions an option array across threads; each
//! thread reads its options and writes prices, with barriers between
//! repeated pricing rounds and essentially zero inter-thread sharing.
//! Regions are long (one whole round) and private-heavy, which makes
//! this a best case for every design: few evictions of *shared* data,
//! no conflicts.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Options processed per thread per round (scaled).
const OPTIONS_PER_THREAD: u64 = 24;
/// Pricing rounds (scaled).
const ROUNDS: u32 = 4;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("blackscholes", cores);
    let root = SplitMix64::new(seed ^ 0xb1ac);
    let bar = b.barrier();
    // Small read-only global parameter block (riskless rate etc.).
    let params = b.shared(64);
    let options: Vec<_> = (0..cores)
        .map(|t| b.private(t, OPTIONS_PER_THREAD * scale as u64 * 32))
        .collect();
    let prices: Vec<_> = (0..cores)
        .map(|t| b.private(t, OPTIONS_PER_THREAD * scale as u64 * 8))
        .collect();

    for round in 0..ROUNDS * scale.min(4) {
        for t in 0..cores {
            let mut rng = root.split((round as u64) << 32 | t as u64);
            // Read the global parameter block once per round.
            b.read(t, params.word(rng.gen_range(8)));
            for i in 0..OPTIONS_PER_THREAD * scale as u64 {
                // Read 4 option fields, compute, write the price.
                for f in 0..4 {
                    b.read(t, options[t].word(i * 4 + f));
                }
                b.work(t, 16 + rng.gen_range(8) as u32);
                b.write(t, prices[t].word(i));
            }
        }
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        let p = build(4, 1, 1);
        validate(&p).unwrap();
        assert_eq!(p.n_locks, 0, "blackscholes uses no locks");
        assert!(p.n_barriers >= 1);
    }

    #[test]
    fn shared_accesses_are_read_only() {
        let p = build(4, 1, 9);
        for (_, op) in p.iter_ops() {
            if let Some(a) = op.addr() {
                if p.is_shared_addr(a) {
                    assert!(!op.is_write(), "blackscholes must not write shared data");
                }
            }
        }
    }

    #[test]
    fn regions_are_long() {
        let p = build(2, 2, 5);
        let s = crate::regions::region_stats(&p);
        assert!(
            s.mean_mem_ops_per_region > 50.0,
            "expected long regions, got {}",
            s.mean_mem_ops_per_region
        );
    }
}
