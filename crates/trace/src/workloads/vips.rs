//! `vips`-like workload: producer/consumer image tiles.
//!
//! Real vips evaluates an image-processing pipeline over tiles: a
//! coordinator materializes input tiles, workers claim tiles under a
//! lock, read them, and write private output regions. The signature is
//! single-producer/many-consumer sharing — every shared line is
//! written once by thread 0 and read once by exactly one worker.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Tiles per batch (scaled).
const TILES: u64 = 24;
/// Batches (scaled).
const BATCHES: u32 = 2;
/// Lines per tile.
const TILE_LINES: u64 = 4;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("vips", cores);
    let root = SplitMix64::new(seed ^ 0x1995);
    let bar = b.barrier();
    let claim_lock = b.lock();
    let n_tiles = TILES * scale as u64;
    let tiles = b.shared(n_tiles * TILE_LINES * 64);
    let claim = b.shared(64);
    let outputs: Vec<_> = (0..cores).map(|t| b.private(t, 16 * 1024)).collect();

    for batch in 0..BATCHES * scale {
        // Producer (thread 0) writes every tile of this batch.
        {
            let mut rng = root.split((batch as u64) << 32);
            for tile in 0..n_tiles {
                for l in 0..TILE_LINES {
                    b.write(0, tiles.line(tile * TILE_LINES + l));
                }
                b.work(0, 4 + rng.gen_range(4) as u32);
            }
        }
        // Hand off to workers.
        b.barrier_all(bar);
        // Workers claim and process tiles (static assignment models
        // the dynamic queue's steady state; the claim word models its
        // contention).
        let workers = (cores - 1).max(1);
        for t in 0..cores {
            if cores > 1 && t == 0 {
                continue;
            }
            let lane = if cores > 1 { t - 1 } else { 0 };
            let mut rng = root.split((batch as u64) << 32 | (t as u64) << 16);
            for tile in (lane..n_tiles as usize).step_by(workers) {
                b.critical(t, claim_lock, |b| {
                    b.read(t, claim.word(0));
                    b.write(t, claim.word(0));
                });
                for l in 0..TILE_LINES {
                    b.read(t, tiles.line(tile as u64 * TILE_LINES + l));
                }
                b.work(t, 16 + rng.gen_range(8) as u32);
                let out = (tile as u64 * 3) % outputs[t].words();
                b.write(t, outputs[t].word(out));
            }
        }
        // Batch boundary.
        b.barrier_all(bar);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        for cores in [1, 2, 4, 8] {
            validate(&build(cores, 1, 1)).unwrap_or_else(|e| panic!("cores={cores}: {e}"));
        }
    }

    #[test]
    fn producer_writes_workers_read() {
        let p = build(4, 1, 2);
        use std::collections::HashSet;
        let tile_writes_t0: HashSet<u64> = p.threads[0]
            .iter()
            .filter(|o| o.is_write())
            .filter_map(|o| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .map(|a| a.line().0)
            .collect();
        let reads_workers: HashSet<u64> = p
            .iter_ops()
            .filter(|(t, o)| *t != 0 && o.is_mem() && !o.is_write())
            .filter_map(|(_, o)| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .map(|a| a.line().0)
            .collect();
        assert!(tile_writes_t0.intersection(&reads_workers).count() > 10);
    }
}
