//! `swaptions`-like workload: fully private Monte-Carlo pricing.
//!
//! Real swaptions statically partitions swaption instruments across
//! threads; each thread runs Monte-Carlo trials over entirely private
//! data with no synchronization until the final join. It has the
//! longest regions and the smallest shared footprint in the suite —
//! every conflict-detection design should be near-free here.

use crate::builder::Builder;
use crate::program::Program;
use rce_common::{Rng, SplitMix64};

/// Monte-Carlo trials per thread (scaled).
const TRIALS: u64 = 64;

/// Build the workload.
pub fn build(cores: usize, scale: u32, seed: u64) -> Program {
    let mut b = Builder::new("swaptions", cores);
    let root = SplitMix64::new(seed ^ 0x5a9c);
    let bar = b.barrier();
    let state: Vec<_> = (0..cores).map(|t| b.private(t, 8 * 1024)).collect();
    let results: Vec<_> = (0..cores).map(|t| b.private(t, 1024)).collect();

    for t in 0..cores {
        let mut rng = root.split(t as u64);
        for trial in 0..TRIALS * scale as u64 {
            // Simulate a rate path: read-modify-write private state.
            for _ in 0..4 {
                let w = rng.gen_range(state[t].words());
                b.read(t, state[t].word(w));
                b.write(t, state[t].word(w));
            }
            b.work(t, 20 + rng.gen_range(16) as u32);
            b.write(t, results[t].word(trial % results[t].words()));
        }
    }
    // Single join at the end.
    b.barrier_all(bar);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builds_and_validates() {
        validate(&build(4, 1, 1)).unwrap();
    }

    #[test]
    fn zero_shared_accesses() {
        let p = build(4, 2, 5);
        let shared = p
            .iter_ops()
            .filter_map(|(_, o)| o.addr())
            .filter(|a| p.is_shared_addr(*a))
            .count();
        assert_eq!(shared, 0, "swaptions must touch no shared data");
    }

    #[test]
    fn single_sync_per_thread() {
        let p = build(4, 1, 1);
        for ops in &p.threads {
            assert_eq!(ops.iter().filter(|o| o.is_sync()).count(), 1);
        }
    }
}
