//! Structural validation of programs.
//!
//! Catches generator bugs before they turn into simulator deadlocks:
//! unbalanced or recursive locking, barrier arity mismatches, memory
//! accesses that straddle a cache line, and out-of-universe lock or
//! barrier IDs.

use crate::op::Op;
use crate::program::Program;
use rce_common::{LineGeometry, RceError, RceResult};
use std::collections::HashSet;

/// Validate `p`; returns the first structural problem found.
///
/// Rules:
/// 1. Locks are non-recursive mutexes: a thread may not acquire a lock
///    it holds, may only release locks it holds, and must hold nothing
///    at thread end.
/// 2. Barriers are global: every thread executes every barrier ID the
///    same number of times (otherwise the simulation would deadlock).
/// 3. Memory accesses have `1 <= len <= 64` and do not cross a line
///    boundary (the simulator charges exactly one line per access).
/// 4. Lock/barrier IDs are within the program's declared universe.
pub fn validate(p: &Program) -> RceResult<()> {
    if p.threads.is_empty() {
        return Err(RceError::MalformedProgram("no threads".into()));
    }

    // Per-thread lock discipline and per-thread barrier counts.
    let mut barrier_counts: Vec<Vec<u64>> = Vec::with_capacity(p.n_threads());
    for (t, ops) in p.threads.iter().enumerate() {
        let mut held: HashSet<u32> = HashSet::new();
        let mut counts = vec![0u64; p.n_barriers as usize];
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Acquire { lock } => {
                    if lock.0 >= p.n_locks {
                        return Err(RceError::MalformedProgram(format!(
                            "thread {t} op {i}: acquire of undeclared {lock}"
                        )));
                    }
                    if !held.insert(lock.0) {
                        return Err(RceError::MalformedProgram(format!(
                            "thread {t} op {i}: recursive acquire of {lock}"
                        )));
                    }
                }
                Op::Release { lock } => {
                    if !held.remove(&lock.0) {
                        return Err(RceError::MalformedProgram(format!(
                            "thread {t} op {i}: release of unheld {lock}"
                        )));
                    }
                }
                Op::Barrier { bar } => {
                    if bar.0 >= p.n_barriers {
                        return Err(RceError::MalformedProgram(format!(
                            "thread {t} op {i}: undeclared {bar}"
                        )));
                    }
                    counts[bar.0 as usize] += 1;
                }
                Op::Read { addr, len } | Op::Write { addr, len } => {
                    if len == 0 || len as u64 > LineGeometry::LINE_BYTES {
                        return Err(RceError::MalformedProgram(format!(
                            "thread {t} op {i}: access len {len} out of range"
                        )));
                    }
                    let first_line = addr.line();
                    let last_line = rce_common::Addr(addr.0 + len as u64 - 1).line();
                    if first_line != last_line {
                        return Err(RceError::MalformedProgram(format!(
                            "thread {t} op {i}: access at {addr} len {len} crosses a line"
                        )));
                    }
                }
                Op::Work { .. } => {}
            }
        }
        if !held.is_empty() {
            return Err(RceError::MalformedProgram(format!(
                "thread {t} ends holding {} lock(s)",
                held.len()
            )));
        }
        barrier_counts.push(counts);
    }

    // Global barrier arity: identical counts across threads.
    if p.n_barriers > 0 {
        let first = &barrier_counts[0];
        for (t, counts) in barrier_counts.iter().enumerate().skip(1) {
            if counts != first {
                return Err(RceError::MalformedProgram(format!(
                    "barrier count mismatch between thread 0 and thread {t}"
                )));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use rce_common::{Addr, BarrierId, LockId};

    #[test]
    fn valid_program_passes() {
        let mut b = Builder::new("ok", 2);
        let l = b.lock();
        let bar = b.barrier();
        let a = b.shared(128);
        for t in 0..2 {
            b.critical(t, l, |b| b.write(t, a.word(t as u64)));
        }
        b.barrier_all(bar);
        assert!(validate(&b.finish()).is_ok());
    }

    #[test]
    fn recursive_acquire_rejected() {
        let mut b = Builder::new("bad", 1);
        let l = b.lock();
        b.acquire(0, l);
        b.acquire(0, l);
        b.release(0, l);
        b.release(0, l);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("recursive"));
    }

    #[test]
    fn unheld_release_rejected() {
        let mut b = Builder::new("bad", 1);
        let l = b.lock();
        b.release(0, l);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("unheld"));
    }

    #[test]
    fn dangling_hold_rejected() {
        let mut b = Builder::new("bad", 1);
        let l = b.lock();
        b.acquire(0, l);
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("ends holding"));
    }

    #[test]
    fn undeclared_lock_rejected() {
        let mut b = Builder::new("bad", 1);
        b.push(0, crate::op::Op::Acquire { lock: LockId(99) });
        b.push(0, crate::op::Op::Release { lock: LockId(99) });
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn barrier_mismatch_rejected() {
        let mut b = Builder::new("bad", 2);
        let bar = b.barrier();
        b.barrier_one(0, bar); // thread 1 never arrives
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn undeclared_barrier_rejected() {
        let mut b = Builder::new("bad", 1);
        b.push(0, crate::op::Op::Barrier { bar: BarrierId(7) });
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn line_crossing_access_rejected() {
        let mut b = Builder::new("bad", 1);
        b.push(
            0,
            crate::op::Op::Read {
                addr: Addr(60),
                len: 8,
            },
        );
        let err = validate(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("crosses a line"));
    }

    #[test]
    fn zero_len_access_rejected() {
        let mut b = Builder::new("bad", 1);
        b.push(
            0,
            crate::op::Op::Read {
                addr: Addr(0),
                len: 0,
            },
        );
        assert!(validate(&b.finish()).is_err());
    }

    #[test]
    fn empty_program_rejected() {
        let p = Program {
            name: "empty".into(),
            threads: vec![],
            n_locks: 0,
            n_barriers: 0,
            shared_base: Addr(0),
            shared_end: Addr(0),
        };
        assert!(validate(&p).is_err());
    }

    use crate::program::Program;
}
