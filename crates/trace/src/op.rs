//! The per-thread operation alphabet.

use rce_common::json::{FromJson, JsonValue, ToJson};
use rce_common::{Addr, BarrierId, LockId};

/// One operation in a thread's trace.
///
/// Memory operations carry a byte address and length; the simulator
/// splits them into the lines/words they touch. Synchronization
/// operations (`Acquire`, `Release`, `Barrier`) are region boundaries.
/// `Work` models local computation between memory operations; it
/// advances the core's clock without touching memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Load `len` bytes at `addr`.
    Read {
        /// Byte address.
        addr: Addr,
        /// Access length in bytes (1..=64; may not cross a line).
        len: u32,
    },
    /// Store `len` bytes at `addr`.
    Write {
        /// Byte address.
        addr: Addr,
        /// Access length in bytes (1..=64; may not cross a line).
        len: u32,
    },
    /// Acquire a mutex (blocks until available). Region boundary.
    Acquire {
        /// Which lock.
        lock: LockId,
    },
    /// Release a held mutex. Region boundary.
    Release {
        /// Which lock.
        lock: LockId,
    },
    /// Global barrier: waits until every thread arrives. Region
    /// boundary.
    Barrier {
        /// Which barrier object.
        bar: BarrierId,
    },
    /// Local compute for `cycles` cycles; no memory traffic.
    Work {
        /// Duration in cycles.
        cycles: u32,
    },
}

impl Op {
    /// True for `Read`/`Write`.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Read { .. } | Op::Write { .. })
    }

    /// True for `Acquire`/`Release`/`Barrier` — the SFR boundaries.
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::Acquire { .. } | Op::Release { .. } | Op::Barrier { .. }
        )
    }

    /// The address touched, if a memory operation.
    #[inline]
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Op::Read { addr, .. } | Op::Write { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// True for writes.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }
}

// The interchange format is externally tagged, matching the serde
// convention the `tracegen dump`/`run` contract was pinned against:
// `{"Read": {"addr": 256, "len": 8}}`, `{"Acquire": {"lock": 0}}`.
impl ToJson for Op {
    fn to_json(&self) -> JsonValue {
        let (tag, body) = match self {
            Op::Read { addr, len } => (
                "Read",
                vec![
                    ("addr".to_string(), addr.to_json()),
                    ("len".to_string(), len.to_json()),
                ],
            ),
            Op::Write { addr, len } => (
                "Write",
                vec![
                    ("addr".to_string(), addr.to_json()),
                    ("len".to_string(), len.to_json()),
                ],
            ),
            Op::Acquire { lock } => ("Acquire", vec![("lock".to_string(), lock.to_json())]),
            Op::Release { lock } => ("Release", vec![("lock".to_string(), lock.to_json())]),
            Op::Barrier { bar } => ("Barrier", vec![("bar".to_string(), bar.to_json())]),
            Op::Work { cycles } => ("Work", vec![("cycles".to_string(), cycles.to_json())]),
        };
        JsonValue::Object(vec![(tag.to_string(), JsonValue::Object(body))])
    }
}

impl FromJson for Op {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let JsonValue::Object(pairs) = v else {
            return Err(format!("expected externally tagged op object, got {v}"));
        };
        let [(tag, body)] = pairs.as_slice() else {
            return Err(format!("op object must have exactly one tag, got {v}"));
        };
        match tag.as_str() {
            "Read" => Ok(Op::Read {
                addr: Addr::from_json(body.field("addr")?)?,
                len: u32::from_json(body.field("len")?)?,
            }),
            "Write" => Ok(Op::Write {
                addr: Addr::from_json(body.field("addr")?)?,
                len: u32::from_json(body.field("len")?)?,
            }),
            "Acquire" => Ok(Op::Acquire {
                lock: LockId::from_json(body.field("lock")?)?,
            }),
            "Release" => Ok(Op::Release {
                lock: LockId::from_json(body.field("lock")?)?,
            }),
            "Barrier" => Ok(Op::Barrier {
                bar: BarrierId::from_json(body.field("bar")?)?,
            }),
            "Work" => Ok(Op::Work {
                cycles: u32::from_json(body.field("cycles")?)?,
            }),
            other => Err(format!("unknown op tag `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let r = Op::Read {
            addr: Addr(8),
            len: 8,
        };
        let w = Op::Write {
            addr: Addr(16),
            len: 8,
        };
        let a = Op::Acquire { lock: LockId(0) };
        let b = Op::Barrier { bar: BarrierId(0) };
        let k = Op::Work { cycles: 10 };
        assert!(r.is_mem() && w.is_mem());
        assert!(!a.is_mem() && !k.is_mem());
        assert!(a.is_sync() && b.is_sync());
        assert!(!r.is_sync() && !k.is_sync());
        assert!(w.is_write() && !r.is_write());
        assert_eq!(r.addr(), Some(Addr(8)));
        assert_eq!(k.addr(), None);
    }

    #[test]
    fn ops_use_externally_tagged_json() {
        let r = Op::Read {
            addr: Addr(256),
            len: 8,
        };
        assert_eq!(r.to_json().to_string(), r#"{"Read":{"addr":256,"len":8}}"#);
        let a = Op::Acquire { lock: LockId(0) };
        assert_eq!(a.to_json().to_string(), r#"{"Acquire":{"lock":0}}"#);
        for op in [
            r,
            a,
            Op::Write {
                addr: Addr(64),
                len: 4,
            },
            Op::Release { lock: LockId(3) },
            Op::Barrier { bar: BarrierId(1) },
            Op::Work { cycles: 17 },
        ] {
            assert_eq!(Op::from_json(&op.to_json()).unwrap(), op);
        }
        assert!(Op::from_json(&JsonValue::parse(r#"{"Jump":{}}"#).unwrap()).is_err());
    }
}
