//! The per-thread operation alphabet.

use rce_common::{Addr, BarrierId, LockId};
use serde::{Deserialize, Serialize};

/// One operation in a thread's trace.
///
/// Memory operations carry a byte address and length; the simulator
/// splits them into the lines/words they touch. Synchronization
/// operations (`Acquire`, `Release`, `Barrier`) are region boundaries.
/// `Work` models local computation between memory operations; it
/// advances the core's clock without touching memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Load `len` bytes at `addr`.
    Read {
        /// Byte address.
        addr: Addr,
        /// Access length in bytes (1..=64; may not cross a line).
        len: u32,
    },
    /// Store `len` bytes at `addr`.
    Write {
        /// Byte address.
        addr: Addr,
        /// Access length in bytes (1..=64; may not cross a line).
        len: u32,
    },
    /// Acquire a mutex (blocks until available). Region boundary.
    Acquire {
        /// Which lock.
        lock: LockId,
    },
    /// Release a held mutex. Region boundary.
    Release {
        /// Which lock.
        lock: LockId,
    },
    /// Global barrier: waits until every thread arrives. Region
    /// boundary.
    Barrier {
        /// Which barrier object.
        bar: BarrierId,
    },
    /// Local compute for `cycles` cycles; no memory traffic.
    Work {
        /// Duration in cycles.
        cycles: u32,
    },
}

impl Op {
    /// True for `Read`/`Write`.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Read { .. } | Op::Write { .. })
    }

    /// True for `Acquire`/`Release`/`Barrier` — the SFR boundaries.
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::Acquire { .. } | Op::Release { .. } | Op::Barrier { .. }
        )
    }

    /// The address touched, if a memory operation.
    #[inline]
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Op::Read { addr, .. } | Op::Write { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// True for writes.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let r = Op::Read {
            addr: Addr(8),
            len: 8,
        };
        let w = Op::Write {
            addr: Addr(16),
            len: 8,
        };
        let a = Op::Acquire { lock: LockId(0) };
        let b = Op::Barrier { bar: BarrierId(0) };
        let k = Op::Work { cycles: 10 };
        assert!(r.is_mem() && w.is_mem());
        assert!(!a.is_mem() && !k.is_mem());
        assert!(a.is_sync() && b.is_sync());
        assert!(!r.is_sync() && !k.is_sync());
        assert!(w.is_write() && !r.is_write());
        assert_eq!(r.addr(), Some(Addr(8)));
        assert_eq!(k.addr(), None);
    }
}
