//! Synchronization-free-region accounting.
//!
//! A region is the maximal run of non-synchronization operations
//! between sync ops (and the trace ends). These statistics drive the
//! Table II characterization and the intuition for each design's cost:
//! short regions stress ARC (frequent self-invalidation/flush), long
//! regions with large footprints stress CE (evictions of accessed
//! lines spill metadata to memory).

use crate::op::Op;
use crate::program::Program;

/// Per-program region statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionStats {
    /// Total number of (dynamic) regions across all threads, counting
    /// only regions containing at least one memory operation.
    pub regions: u64,
    /// Total memory operations.
    pub mem_ops: u64,
    /// Mean memory operations per non-empty region.
    pub mean_mem_ops_per_region: f64,
    /// Largest region (memory ops).
    pub max_mem_ops_per_region: u64,
}

/// Lengths (in memory ops) of every non-empty region of one thread.
pub fn region_lengths(ops: &[Op]) -> Vec<u64> {
    let mut lens = Vec::new();
    let mut cur = 0u64;
    for op in ops {
        if op.is_sync() {
            if cur > 0 {
                lens.push(cur);
            }
            cur = 0;
        } else if op.is_mem() {
            cur += 1;
        }
    }
    if cur > 0 {
        lens.push(cur);
    }
    lens
}

/// Compute region statistics over the whole program.
pub fn region_stats(p: &Program) -> RegionStats {
    let mut regions = 0u64;
    let mut mem_ops = 0u64;
    let mut max_len = 0u64;
    for t in &p.threads {
        for len in region_lengths(t) {
            regions += 1;
            mem_ops += len;
            max_len = max_len.max(len);
        }
    }
    RegionStats {
        regions,
        mem_ops,
        mean_mem_ops_per_region: if regions == 0 {
            0.0
        } else {
            mem_ops as f64 / regions as f64
        },
        max_mem_ops_per_region: max_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rce_common::{Addr, LockId};

    fn r(a: u64) -> Op {
        Op::Read {
            addr: Addr(a),
            len: 8,
        }
    }

    #[test]
    fn region_lengths_split_at_sync() {
        let ops = vec![
            r(0),
            r(8),
            Op::Acquire { lock: LockId(0) },
            r(16),
            Op::Release { lock: LockId(0) },
            r(24),
            r(32),
            r(40),
        ];
        assert_eq!(region_lengths(&ops), vec![2, 1, 3]);
    }

    #[test]
    fn empty_regions_not_counted() {
        let ops = vec![
            Op::Acquire { lock: LockId(0) },
            Op::Release { lock: LockId(0) },
        ];
        assert!(region_lengths(&ops).is_empty());
    }

    #[test]
    fn work_ops_do_not_count_as_mem() {
        let ops = vec![r(0), Op::Work { cycles: 100 }, r(8)];
        assert_eq!(region_lengths(&ops), vec![2]);
    }

    #[test]
    fn region_stats_aggregates_threads() {
        let p = Program {
            name: "x".into(),
            threads: vec![
                vec![
                    r(0),
                    r(8),
                    Op::Acquire { lock: LockId(0) },
                    r(16),
                    Op::Release { lock: LockId(0) },
                ],
                vec![r(24)],
            ],
            n_locks: 1,
            n_barriers: 0,
            shared_base: Addr(0),
            shared_end: Addr(0),
        };
        let s = region_stats(&p);
        assert_eq!(s.regions, 3);
        assert_eq!(s.mem_ops, 4);
        assert!((s.mean_mem_ops_per_region - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_mem_ops_per_region, 2);
    }

    use crate::program::Program;
}
