//! Trace interchange: programs serialize to JSON and back without
//! loss (the contract behind `tracegen dump` / `tracegen run`).

use rce_common::json;
use rce_trace::{validate, Program, WorkloadSpec};

#[test]
fn every_workload_round_trips_through_json() {
    for w in WorkloadSpec::PARSEC
        .iter()
        .chain(WorkloadSpec::MICRO.iter())
    {
        let p = w.build(4, 1, 42);
        let text = json::to_string(&p);
        let back: Program = json::from_str(&text).expect("deserialize");
        assert_eq!(p, back, "{w} did not round-trip");
        validate(&back).unwrap();
    }
}

#[test]
fn injected_races_survive_round_trip() {
    let mut p = WorkloadSpec::Blackscholes.build(4, 1, 7);
    let addrs = rce_trace::inject_races(&mut p, 3, 7);
    let text = json::to_string(&p);
    let back: Program = json::from_str(&text).unwrap();
    assert_eq!(p, back);
    // The racy accesses are still in place.
    for a in addrs {
        let touchers = back
            .threads
            .iter()
            .filter(|ops| ops.iter().any(|o| o.addr() == Some(a)))
            .count();
        assert!(touchers >= 2);
    }
}

#[test]
fn foreign_json_is_validated_not_trusted() {
    // A structurally broken program (unbalanced lock) deserializes
    // fine but must be rejected by validate() — the tracegen `run`
    // path depends on this.
    let text = r#"{
        "name": "hostile",
        "threads": [[{"Acquire": {"lock": 0}}]],
        "n_locks": 1,
        "n_barriers": 0,
        "shared_base": 268435456,
        "shared_end": 268435520
    }"#;
    let p: Program = json::from_str(text).expect("shape is valid JSON");
    assert!(validate(&p).is_err(), "unbalanced lock must be rejected");
}

#[test]
fn compact_encoding_is_reasonable() {
    // Guard against accidental bloat in the interchange format: one
    // op should serialize to well under 100 bytes.
    let p = WorkloadSpec::Canneal.build(8, 1, 1);
    let text = json::to_string(&p);
    let per_op = text.len() as f64 / p.total_ops() as f64;
    assert!(per_op < 100.0, "{per_op:.1} bytes/op is too fat");
}
