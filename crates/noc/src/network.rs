//! The network itself: FIFO-server links, message classes, send().

use crate::mesh::{Mesh, NodeId};
use crate::stats::NocStats;
use rce_common::obs::{EventClass, EventKind, SharedTracer, SimEvent};
use rce_common::{impl_json_unit_enum, Bytes, CoreId, Cycles, LineAddr, NocConfig};

/// Message classes, accounted separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Coherence request (read/upgrade miss) or forward.
    Request,
    /// Control response without data (grant, ack of request).
    Response,
    /// Data transfer (line fill, dirty-word flush, writeback data).
    Data,
    /// Invalidation.
    Invalidation,
    /// Invalidation acknowledgement.
    Ack,
    /// Conflict-detection metadata (access bits, signatures, AIM
    /// spills). The designs differ most on this class.
    Metadata,
    /// Writeback of evicted dirty data toward LLC/memory.
    Writeback,
}

impl_json_unit_enum!(MsgClass {
    Request,
    Response,
    Data,
    Invalidation,
    Ack,
    Metadata,
    Writeback,
});

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 7] = [
        MsgClass::Request,
        MsgClass::Response,
        MsgClass::Data,
        MsgClass::Invalidation,
        MsgClass::Ack,
        MsgClass::Metadata,
        MsgClass::Writeback,
    ];

    /// Stable index for accounting arrays.
    pub fn index(self) -> usize {
        match self {
            MsgClass::Request => 0,
            MsgClass::Response => 1,
            MsgClass::Data => 2,
            MsgClass::Invalidation => 3,
            MsgClass::Ack => 4,
            MsgClass::Metadata => 5,
            MsgClass::Writeback => 6,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MsgClass::Request => "req",
            MsgClass::Response => "resp",
            MsgClass::Data => "data",
            MsgClass::Invalidation => "inv",
            MsgClass::Ack => "ack",
            MsgClass::Metadata => "meta",
            MsgClass::Writeback => "wb",
        }
    }
}

/// One directed link's FIFO-server state.
#[derive(Debug, Clone, Copy, Default)]
struct Link {
    /// The link is serving earlier messages until this time.
    busy_until: u64,
    /// Cumulative cycles spent serving (for utilization).
    busy_cycles: u64,
    /// Cumulative bytes carried.
    bytes: u64,
}

/// The on-chip network: mesh + per-link FIFO servers + accounting.
#[derive(Debug, Clone)]
pub struct Noc {
    cfg: NocConfig,
    mesh: Mesh,
    links: Vec<Link>,
    stats: NocStats,
    trace: Option<SharedTracer>,
}

impl Noc {
    /// Build a network for `cores` tiles.
    pub fn new(cores: usize, cfg: NocConfig) -> Self {
        let mesh = Mesh::for_tiles(cores);
        let links = vec![Link::default(); mesh.link_count()];
        Noc {
            cfg,
            mesh,
            links,
            stats: NocStats::default(),
            trace: None,
        }
    }

    /// Attach an event tracer; every routed message emits a
    /// [`EventKind::CohMsg`] event into it.
    pub fn attach_tracer(&mut self, t: SharedTracer) {
        self.trace = Some(t);
    }

    /// The underlying mesh (for topology queries).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Tile of a core.
    pub fn core_node(&self, c: CoreId) -> NodeId {
        self.mesh.core_node(c)
    }

    /// Tile of the LLC bank holding `line`.
    pub fn bank_node(&self, line: LineAddr) -> NodeId {
        self.mesh.bank_node(line, self.mesh.tiles())
    }

    /// Tile of the memory controller serving `line`.
    pub fn mem_node(&self, line: LineAddr) -> NodeId {
        self.mesh.mem_node(line)
    }

    /// Send `bytes` from `src` to `dst` at time `now`; returns the
    /// arrival time.
    ///
    /// The message serializes over every link of the XY route in
    /// order; each link is a FIFO server (`max(now, busy_until)` start,
    /// `bytes / bandwidth` service). Per-hop router latency is added on
    /// top. A local message (`src == dst`) arrives immediately and
    /// produces no traffic.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        class: MsgClass,
        now: Cycles,
    ) -> Cycles {
        if src == dst {
            self.stats.local_msgs.inc();
            return now;
        }
        let route = self.mesh.route(src, dst);
        let hops = route.len() as u64;
        // Pad to whole flits.
        let flits = bytes.div_ceil(self.cfg.flit_bytes).max(1);
        let wire_bytes = flits * self.cfg.flit_bytes;
        let service = ((wire_bytes as f64) / self.cfg.link_bandwidth).ceil() as u64;

        let mut t = now.0;
        let mut queue_delay = 0u64;
        for l in route {
            let link = &mut self.links[l];
            let start = t.max(link.busy_until);
            queue_delay += start - t;
            let finish = start + service;
            link.busy_until = finish;
            link.busy_cycles += service;
            link.bytes += wire_bytes;
            // The head flit moves on after the hop latency; full
            // serialization is charged once per link via `service`.
            t = start + self.cfg.hop_latency;
        }
        let arrival = t + service; // tail arrives after final serialization
        self.stats
            .record_msg(class, wire_bytes, flits * hops, hops, queue_delay);
        if let Some(tr) = &self.trace {
            let mut tr = tr.borrow_mut();
            if tr.wants(EventClass::Coherence) {
                tr.emit(SimEvent {
                    cycle: now.0,
                    core: None,
                    region: None,
                    kind: EventKind::CohMsg {
                        class: class.name().to_string(),
                        src: src.0 as u64,
                        dst: dst.0 as u64,
                        bytes: wire_bytes,
                    },
                });
            }
        }
        Cycles(arrival)
    }

    /// Send the same control message to many destinations (e.g., an
    /// invalidation multicast); returns the latest arrival.
    pub fn multicast(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
        class: MsgClass,
        now: Cycles,
    ) -> Cycles {
        let mut latest = now;
        for &d in dsts {
            let a = self.send(src, d, bytes, class, now);
            latest = latest.max(a);
        }
        latest
    }

    /// Finalize utilization statistics given the simulation end time.
    pub fn finalize(&mut self, end: Cycles) {
        let elapsed = end.0.max(1);
        let mut peak = 0.0f64;
        let mut total_busy = 0u64;
        let mut active_links = 0u64;
        for l in &self.links {
            if l.bytes == 0 {
                continue;
            }
            active_links += 1;
            total_busy += l.busy_cycles;
            let u = (l.busy_cycles.min(elapsed)) as f64 / elapsed as f64;
            peak = peak.max(u);
        }
        self.stats.peak_link_utilization = peak;
        self.stats.mean_link_utilization = if active_links == 0 {
            0.0
        } else {
            (total_busy as f64 / active_links as f64) / elapsed as f64
        };
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Cumulative busy cycles per link — a samplable gauge for the
    /// interval metrics timeline.
    pub fn link_busy_cycles(&self) -> Vec<u64> {
        self.links.iter().map(|l| l.busy_cycles).collect()
    }

    /// Total bytes injected (all classes).
    pub fn total_bytes(&self) -> Bytes {
        self.stats.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc16() -> Noc {
        Noc::new(16, NocConfig::default())
    }

    #[test]
    fn local_send_is_free() {
        let mut n = noc16();
        let t = n.send(NodeId(3), NodeId(3), 64, MsgClass::Data, Cycles(100));
        assert_eq!(t, Cycles(100));
        assert_eq!(n.total_bytes(), Bytes::ZERO);
        assert_eq!(n.stats().local_msgs.get(), 1);
    }

    #[test]
    fn latency_scales_with_distance() {
        let mut n = noc16();
        let near = n.send(NodeId(0), NodeId(1), 8, MsgClass::Request, Cycles(0));
        let mut n2 = noc16();
        let far = n2.send(NodeId(0), NodeId(15), 8, MsgClass::Request, Cycles(0));
        assert!(far > near, "far={far:?} near={near:?}");
    }

    #[test]
    fn contention_queues_messages() {
        let mut n = noc16();
        // Saturate the 0->1 link with many big messages at t=0.
        let first = n.send(NodeId(0), NodeId(1), 1024, MsgClass::Data, Cycles(0));
        let mut last = first;
        for _ in 0..50 {
            last = n.send(NodeId(0), NodeId(1), 1024, MsgClass::Data, Cycles(0));
        }
        assert!(
            last.0 > first.0 * 10,
            "queueing should accumulate: {last:?}"
        );
        assert!(n.stats().total_queue_delay.get() > 0);
    }

    #[test]
    fn traffic_accounted_per_class() {
        let mut n = noc16();
        n.send(NodeId(0), NodeId(1), 8, MsgClass::Request, Cycles(0));
        n.send(NodeId(0), NodeId(2), 72, MsgClass::Data, Cycles(0));
        n.send(NodeId(0), NodeId(3), 16, MsgClass::Metadata, Cycles(0));
        let s = n.stats();
        assert_eq!(s.msgs[MsgClass::Request.index()].get(), 1);
        assert_eq!(s.msgs[MsgClass::Data.index()].get(), 1);
        assert_eq!(s.msgs[MsgClass::Metadata.index()].get(), 1);
        assert!(s.bytes[MsgClass::Data.index()].0 >= 72);
        // Bytes are padded to flit multiples.
        assert_eq!(s.bytes[MsgClass::Request.index()].0 % 16, 0);
    }

    #[test]
    fn multicast_returns_latest() {
        let mut n = noc16();
        let t = n.multicast(
            NodeId(0),
            &[NodeId(1), NodeId(15)],
            8,
            MsgClass::Invalidation,
            Cycles(0),
        );
        let mut n2 = noc16();
        let far = n2.send(NodeId(0), NodeId(15), 8, MsgClass::Invalidation, Cycles(0));
        assert!(t >= far);
        assert_eq!(n.stats().msgs[MsgClass::Invalidation.index()].get(), 2);
    }

    #[test]
    fn utilization_finalization() {
        let mut n = noc16();
        for _ in 0..100 {
            n.send(NodeId(0), NodeId(1), 256, MsgClass::Data, Cycles(0));
        }
        n.finalize(Cycles(1000));
        let s = n.stats();
        assert!(
            s.peak_link_utilization > 0.5,
            "peak={}",
            s.peak_link_utilization
        );
        assert!(s.peak_link_utilization <= 1.0);
        assert!(s.mean_link_utilization <= s.peak_link_utilization);
    }

    #[test]
    fn flit_hops_counted() {
        let mut n = noc16();
        n.send(NodeId(0), NodeId(3), 16, MsgClass::Data, Cycles(0)); // 3 hops, 1 flit
        assert_eq!(n.stats().flit_hops.get(), 3);
    }

    #[test]
    fn tracer_sees_routed_messages_only() {
        use rce_common::obs::{shared_tracer, TraceConfig, Tracer};
        let mut n = noc16();
        let tr = shared_tracer(Tracer::new(TraceConfig::default()));
        n.attach_tracer(tr.clone());
        n.send(NodeId(0), NodeId(0), 64, MsgClass::Data, Cycles(0)); // local: no event
        n.send(NodeId(0), NodeId(5), 64, MsgClass::Data, Cycles(7));
        let log = tr.borrow_mut().take_log();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].cycle, 7);
        match &log.events[0].kind {
            EventKind::CohMsg {
                class, src, dst, ..
            } => {
                assert_eq!(class, "data");
                assert_eq!((*src, *dst), (0, 5));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn link_busy_gauge_accumulates() {
        let mut n = noc16();
        assert!(n.link_busy_cycles().iter().all(|&b| b == 0));
        n.send(NodeId(0), NodeId(1), 256, MsgClass::Data, Cycles(0));
        let busy: u64 = n.link_busy_cycles().iter().sum();
        assert!(busy > 0);
    }

    #[test]
    fn single_tile_mesh_everything_local() {
        let mut n = Noc::new(1, NocConfig::default());
        let t = n.send(NodeId(0), NodeId(0), 64, MsgClass::Data, Cycles(5));
        assert_eq!(t, Cycles(5));
        assert_eq!(n.total_bytes(), Bytes::ZERO);
    }
}
