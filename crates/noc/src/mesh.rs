//! Mesh topology and XY routing.

use rce_common::{impl_json_newtype, CoreId, LineAddr};

/// A tile index in the mesh (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl_json_newtype!(NodeId);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A `width × height` mesh of tiles, sized to hold one tile per core
/// (near-square, width ≥ height).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
    mem_ctrls: Vec<NodeId>,
}

impl Mesh {
    /// Build the smallest near-square mesh with at least `tiles` tiles.
    /// Memory controllers are placed on up to four corner tiles.
    pub fn for_tiles(tiles: usize) -> Self {
        assert!(tiles >= 1);
        let width = (tiles as f64).sqrt().ceil() as usize;
        let height = tiles.div_ceil(width);
        let mut mem_ctrls = vec![
            NodeId(0),
            NodeId(width - 1),
            NodeId((height - 1) * width),
            NodeId(height * width - 1),
        ];
        mem_ctrls.sort();
        mem_ctrls.dedup();
        Mesh {
            width,
            height,
            mem_ctrls,
        }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total tiles.
    pub fn tiles(&self) -> usize {
        self.width * self.height
    }

    /// `(x, y)` coordinates of a tile.
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        debug_assert!(n.0 < self.tiles());
        (n.0 % self.width, n.0 / self.width)
    }

    /// The tile hosting a core (identity mapping).
    pub fn core_node(&self, c: CoreId) -> NodeId {
        debug_assert!(c.index() < self.tiles());
        NodeId(c.index())
    }

    /// The tile hosting the LLC bank for `line` (address-interleaved
    /// across all tiles).
    pub fn bank_node(&self, line: LineAddr, banks: usize) -> NodeId {
        // Mix the line address so striding patterns spread across banks.
        let h = line.0.wrapping_mul(0x9e3779b97f4a7c15) >> 32;
        NodeId((h % banks as u64) as usize)
    }

    /// The memory-controller tile serving `line` (interleaved).
    pub fn mem_node(&self, line: LineAddr) -> NodeId {
        let h = line.0.wrapping_mul(0xd1b54a32d192ed03) >> 32;
        self.mem_ctrls[(h % self.mem_ctrls.len() as u64) as usize]
    }

    /// All memory controller tiles.
    pub fn mem_ctrls(&self) -> &[NodeId] {
        &self.mem_ctrls
    }

    /// Manhattan hop count between two tiles.
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The directed links of the XY route from `a` to `b`, as link
    /// indices (see [`Mesh::link_count`]). X first, then Y.
    pub fn route(&self, a: NodeId, b: NodeId) -> Vec<usize> {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let mut links = Vec::with_capacity(self.hops(a, b));
        let (mut x, mut y) = (ax, ay);
        while x != bx {
            let nx = if bx > x { x + 1 } else { x - 1 };
            links.push(self.link_index((x, y), (nx, y)));
            x = nx;
        }
        while y != by {
            let ny = if by > y { y + 1 } else { y - 1 };
            links.push(self.link_index((x, y), (x, ny)));
            y = ny;
        }
        links
    }

    /// Number of directed links (4 per tile, counting only existing
    /// neighbors; we allocate the dense upper bound `tiles * 4` and
    /// index by (tile, direction)).
    pub fn link_count(&self) -> usize {
        self.tiles() * 4
    }

    /// Dense index of the directed link from `from` to the adjacent
    /// tile `to`.
    fn link_index(&self, from: (usize, usize), to: (usize, usize)) -> usize {
        let tile = from.1 * self.width + from.0;
        let dir = if to.0 == from.0 + 1 {
            0 // east
        } else if from.0 == to.0 + 1 {
            1 // west
        } else if to.1 == from.1 + 1 {
            2 // south
        } else {
            3 // north
        };
        tile * 4 + dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dimensions() {
        let m = Mesh::for_tiles(16);
        assert_eq!((m.width(), m.height()), (4, 4));
        let m = Mesh::for_tiles(8);
        assert!(m.tiles() >= 8);
        let m = Mesh::for_tiles(1);
        assert_eq!(m.tiles(), 1);
        assert_eq!(m.mem_ctrls().len(), 1);
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::for_tiles(16);
        assert_eq!(m.coords(NodeId(0)), (0, 0));
        assert_eq!(m.coords(NodeId(5)), (1, 1));
        assert_eq!(m.coords(NodeId(15)), (3, 3));
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::for_tiles(16);
        assert_eq!(m.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(5), NodeId(10)), 2);
    }

    #[test]
    fn route_length_equals_hops() {
        let m = Mesh::for_tiles(16);
        for a in 0..16 {
            for b in 0..16 {
                let r = m.route(NodeId(a), NodeId(b));
                assert_eq!(r.len(), m.hops(NodeId(a), NodeId(b)));
                assert!(r.iter().all(|&l| l < m.link_count()));
            }
        }
    }

    #[test]
    fn route_links_are_distinct() {
        let m = Mesh::for_tiles(16);
        let r = m.route(NodeId(0), NodeId(15));
        let set: std::collections::HashSet<_> = r.iter().collect();
        assert_eq!(set.len(), r.len());
    }

    #[test]
    fn four_mem_ctrls_on_corners() {
        let m = Mesh::for_tiles(16);
        assert_eq!(
            m.mem_ctrls(),
            &[NodeId(0), NodeId(3), NodeId(12), NodeId(15)]
        );
    }

    #[test]
    fn bank_interleaving_covers_banks() {
        let m = Mesh::for_tiles(16);
        let mut seen = std::collections::HashSet::new();
        for l in 0..4096u64 {
            seen.insert(m.bank_node(LineAddr(l), 16));
        }
        assert_eq!(seen.len(), 16, "all banks should receive lines");
    }

    #[test]
    fn mem_interleaving_uses_all_ctrls() {
        let m = Mesh::for_tiles(16);
        let mut seen = std::collections::HashSet::new();
        for l in 0..4096u64 {
            seen.insert(m.mem_node(LineAddr(l)));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn core_nodes_are_identity() {
        let m = Mesh::for_tiles(8);
        assert_eq!(m.core_node(CoreId(3)), NodeId(3));
    }
}
