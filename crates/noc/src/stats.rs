//! NoC accounting.

use crate::network::MsgClass;
use rce_common::json::{FromJson, JsonValue, ToJson};
use rce_common::{Bytes, Counter, Histogram};

/// Accumulated network statistics.
#[derive(Debug, Clone)]
pub struct NocStats {
    /// Messages per class (indexed by [`MsgClass::index`]).
    pub msgs: [Counter; 7],
    /// Wire bytes per class (flit-padded).
    pub bytes: [Bytes; 7],
    /// Total flit-hops (energy proxy: one flit crossing one link).
    pub flit_hops: Counter,
    /// Messages that stayed on-tile.
    pub local_msgs: Counter,
    /// Total cycles messages spent queued behind busy links.
    pub total_queue_delay: Counter,
    /// Distribution of per-message hop counts.
    pub hop_hist: Histogram,
    /// Peak per-link utilization over the run (set by `finalize`).
    pub peak_link_utilization: f64,
    /// Mean utilization over links that carried traffic.
    pub mean_link_utilization: f64,
    /// Distribution of per-message queueing delays (for tail
    /// percentiles). Runtime-only: deliberately excluded from the JSON
    /// form so `SimReport` serialization is unchanged by its addition.
    pub queue_delay_hist: Histogram,
}

// Hand-written (not `impl_json_struct!`) so `queue_delay_hist` stays
// out of the serialized form — reports produced with observability off
// must remain byte-identical to those from before it existed.
impl ToJson for NocStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("msgs".to_string(), self.msgs.to_json()),
            ("bytes".to_string(), self.bytes.to_json()),
            ("flit_hops".to_string(), self.flit_hops.to_json()),
            ("local_msgs".to_string(), self.local_msgs.to_json()),
            (
                "total_queue_delay".to_string(),
                self.total_queue_delay.to_json(),
            ),
            ("hop_hist".to_string(), self.hop_hist.to_json()),
            (
                "peak_link_utilization".to_string(),
                self.peak_link_utilization.to_json(),
            ),
            (
                "mean_link_utilization".to_string(),
                self.mean_link_utilization.to_json(),
            ),
        ])
    }
}

impl FromJson for NocStats {
    fn from_json(v: &JsonValue) -> Result<Self, String> {
        Ok(NocStats {
            msgs: FromJson::from_json(v.field("msgs")?)?,
            bytes: FromJson::from_json(v.field("bytes")?)?,
            flit_hops: FromJson::from_json(v.field("flit_hops")?)?,
            local_msgs: FromJson::from_json(v.field("local_msgs")?)?,
            total_queue_delay: FromJson::from_json(v.field("total_queue_delay")?)?,
            hop_hist: FromJson::from_json(v.field("hop_hist")?)?,
            peak_link_utilization: FromJson::from_json(v.field("peak_link_utilization")?)?,
            mean_link_utilization: FromJson::from_json(v.field("mean_link_utilization")?)?,
            queue_delay_hist: Histogram::new(),
        })
    }
}

impl Default for NocStats {
    fn default() -> Self {
        NocStats {
            msgs: Default::default(),
            bytes: Default::default(),
            flit_hops: Counter::default(),
            local_msgs: Counter::default(),
            total_queue_delay: Counter::default(),
            hop_hist: Histogram::new(),
            peak_link_utilization: 0.0,
            mean_link_utilization: 0.0,
            queue_delay_hist: Histogram::new(),
        }
    }
}

impl NocStats {
    /// Record one routed message.
    pub(crate) fn record_msg(
        &mut self,
        class: MsgClass,
        wire_bytes: u64,
        flit_hops: u64,
        hops: u64,
        queue_delay: u64,
    ) {
        self.msgs[class.index()].inc();
        self.bytes[class.index()] += Bytes(wire_bytes);
        self.flit_hops.add(flit_hops);
        self.total_queue_delay.add(queue_delay);
        self.hop_hist.record(hops);
        self.queue_delay_hist.record(queue_delay);
    }

    /// Total messages routed (excluding local).
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().map(|c| c.get()).sum()
    }

    /// Total wire bytes (all classes).
    pub fn total_bytes(&self) -> Bytes {
        Bytes(self.bytes.iter().map(|b| b.0).sum())
    }

    /// Bytes of conflict-detection metadata.
    pub fn metadata_bytes(&self) -> Bytes {
        self.bytes[MsgClass::Metadata.index()]
    }

    /// Bytes of invalidation + ack traffic (the eager-coherence tax).
    pub fn invalidation_bytes(&self) -> Bytes {
        Bytes(self.bytes[MsgClass::Invalidation.index()].0 + self.bytes[MsgClass::Ack.index()].0)
    }

    /// Approximate queueing-delay percentile (cycles), `p` in
    /// `[0, 100]` — tail latency beats the mean for saturation claims.
    pub fn queue_delay_p(&self, p: f64) -> u64 {
        self.queue_delay_hist.percentile(p)
    }

    /// Mean queueing delay per routed message (cycles).
    pub fn mean_queue_delay(&self) -> f64 {
        let n = self.total_msgs();
        if n == 0 {
            0.0
        } else {
            self.total_queue_delay.as_f64() / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_helpers() {
        let mut s = NocStats::default();
        s.record_msg(MsgClass::Data, 64, 4, 2, 10);
        s.record_msg(MsgClass::Invalidation, 16, 1, 1, 0);
        s.record_msg(MsgClass::Ack, 16, 1, 1, 5);
        s.record_msg(MsgClass::Metadata, 32, 2, 2, 0);
        assert_eq!(s.total_msgs(), 4);
        assert_eq!(s.total_bytes(), Bytes(128));
        assert_eq!(s.metadata_bytes(), Bytes(32));
        assert_eq!(s.invalidation_bytes(), Bytes(32));
        assert!((s.mean_queue_delay() - 3.75).abs() < 1e-12);
        assert_eq!(s.flit_hops.get(), 8);
    }

    #[test]
    fn queue_delay_percentiles() {
        let mut s = NocStats::default();
        // 99 fast messages, one straggler.
        for _ in 0..99 {
            s.record_msg(MsgClass::Request, 16, 1, 1, 2);
        }
        s.record_msg(MsgClass::Request, 16, 1, 1, 4000);
        assert!(s.queue_delay_p(50.0) <= 3);
        assert!(
            s.queue_delay_p(99.5) >= 2048,
            "p99.5={} must surface the straggler",
            s.queue_delay_p(99.5)
        );
        // The ends of the range are well defined: p=0 lands in the
        // fast messages' bucket, p=100 covers the straggler, and
        // out-of-range p clamps to those ends instead of misbehaving.
        assert!(s.queue_delay_p(0.0) <= 3);
        assert!(s.queue_delay_p(100.0) >= 2048);
        assert_eq!(s.queue_delay_p(-1.0), s.queue_delay_p(0.0));
        assert_eq!(s.queue_delay_p(101.0), s.queue_delay_p(100.0));
        // The histogram stays out of the serialized form.
        let j = rce_common::json::to_string(&s);
        assert!(!j.contains("queue_delay_hist"));
        let back: NocStats = rce_common::json::from_str(&j).unwrap();
        assert_eq!(back.total_msgs(), 100);
        assert_eq!(back.queue_delay_hist.count(), 0);
    }

    #[test]
    fn empty_stats() {
        let s = NocStats::default();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.mean_queue_delay(), 0.0);
        assert_eq!(s.total_bytes(), Bytes::ZERO);
    }
}
