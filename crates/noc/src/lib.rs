//! 2D-mesh on-chip network model.
//!
//! The paper's C2 claim — CE+ "stresses or saturates the on-chip
//! interconnect" — needs a network model in which latency *degrades
//! under load*. This crate models a 2D mesh with XY dimension-order
//! routing where every directed link is a FIFO server: a message
//! occupies each link on its path for `bytes / bandwidth` cycles, and
//! a link busy with earlier messages queues later ones. Offered load
//! beyond link capacity therefore shows up directly as growing
//! queueing delay (saturation), and per-link busy-cycle accounting
//! yields the utilization figures for the saturation experiment.
//!
//! Topology: one tile per core; each tile hosts the core, one LLC
//! bank, and (on up to four edge tiles) a memory controller. Message
//! classes are accounted separately so the harness can attribute
//! traffic to coherence requests, data, invalidations, and — the
//! quantity the paper's designs differ most on — metadata.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod mesh;
pub mod network;
pub mod stats;

pub use mesh::{Mesh, NodeId};
pub use network::{MsgClass, Noc};
pub use stats::NocStats;
