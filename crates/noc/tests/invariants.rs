//! NoC invariants under random traffic.

use proptest::prelude::*;
use rce_common::{Cycles, NocConfig};
use rce_noc::{MsgClass, Noc, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arrival is never before departure, and grows with payload.
    #[test]
    fn latency_causal_and_monotone(
        src in 0usize..16,
        dst in 0usize..16,
        bytes in 1u64..512,
        t0 in 0u64..10_000,
    ) {
        let mut n = Noc::new(16, NocConfig::default());
        let arrive = n.send(NodeId(src), NodeId(dst), bytes, MsgClass::Data, Cycles(t0));
        prop_assert!(arrive.0 >= t0);
        if src != dst {
            let mut n2 = Noc::new(16, NocConfig::default());
            let bigger = n2.send(NodeId(src), NodeId(dst), bytes + 512, MsgClass::Data, Cycles(t0));
            prop_assert!(bigger >= arrive, "more bytes cannot arrive earlier");
        }
    }

    /// Byte accounting equals the flit-padded sum of routed messages.
    #[test]
    fn bytes_are_flit_padded_sums(
        msgs in proptest::collection::vec((0usize..16, 0usize..16, 1u64..256), 1..64),
    ) {
        let cfg = NocConfig::default();
        let mut n = Noc::new(16, cfg);
        let mut expected = 0u64;
        for (s, d, b) in msgs {
            n.send(NodeId(s), NodeId(d), b, MsgClass::Data, Cycles(0));
            if s != d {
                expected += b.div_ceil(cfg.flit_bytes).max(1) * cfg.flit_bytes;
            }
        }
        prop_assert_eq!(n.total_bytes().0, expected);
    }

    /// FIFO links: two messages on the same route arrive in send order.
    #[test]
    fn same_route_is_fifo(
        bytes1 in 1u64..256,
        bytes2 in 1u64..256,
        gap in 0u64..16,
    ) {
        let mut n = Noc::new(16, NocConfig::default());
        let a = n.send(NodeId(0), NodeId(15), bytes1, MsgClass::Data, Cycles(0));
        let b = n.send(NodeId(0), NodeId(15), bytes2, MsgClass::Data, Cycles(gap));
        prop_assert!(b >= a, "later message must not overtake on the same route");
    }

    /// Utilization stays in [0, 1] after finalize.
    #[test]
    fn utilization_bounded(
        msgs in proptest::collection::vec((0usize..9, 0usize..9, 1u64..256), 1..128),
        end in 1u64..50_000,
    ) {
        let mut n = Noc::new(9, NocConfig::default());
        let mut latest = 0;
        for (s, d, b) in msgs {
            let t = n.send(NodeId(s), NodeId(d), b, MsgClass::Request, Cycles(0));
            latest = latest.max(t.0);
        }
        n.finalize(Cycles(end.max(latest)));
        let s = n.stats();
        prop_assert!((0.0..=1.0).contains(&s.peak_link_utilization));
        prop_assert!((0.0..=1.0).contains(&s.mean_link_utilization));
        prop_assert!(s.mean_link_utilization <= s.peak_link_utilization + 1e-9);
    }
}

#[test]
fn hop_count_symmetric() {
    let n = Noc::new(16, NocConfig::default());
    let mesh = n.mesh();
    for a in 0..16 {
        for b in 0..16 {
            assert_eq!(
                mesh.hops(NodeId(a), NodeId(b)),
                mesh.hops(NodeId(b), NodeId(a))
            );
        }
    }
}

#[test]
fn triangle_inequality_on_hops() {
    let n = Noc::new(16, NocConfig::default());
    let mesh = n.mesh();
    for a in 0..16 {
        for b in 0..16 {
            for c in 0..16 {
                assert!(
                    mesh.hops(NodeId(a), NodeId(c))
                        <= mesh.hops(NodeId(a), NodeId(b)) + mesh.hops(NodeId(b), NodeId(c))
                );
            }
        }
    }
}
