//! NoC invariants under random traffic.

use rce_common::check::{check_n, Unshrunk};
use rce_common::{prop_assert, prop_assert_eq, Cycles, NocConfig, Rng};
use rce_noc::{MsgClass, Noc, NodeId};

/// Arrival is never before departure, and grows with payload.
#[test]
fn latency_causal_and_monotone() {
    check_n(
        "noc latency causal and monotone",
        128,
        |rng| {
            Unshrunk((
                rng.gen_range(16) as usize,
                rng.gen_range(16) as usize,
                1 + rng.gen_range(511),
                rng.gen_range(10_000),
            ))
        },
        |Unshrunk((src, dst, bytes, t0))| {
            let mut n = Noc::new(16, NocConfig::default());
            let arrive = n.send(
                NodeId(*src),
                NodeId(*dst),
                *bytes,
                MsgClass::Data,
                Cycles(*t0),
            );
            prop_assert!(arrive.0 >= *t0);
            if src != dst {
                let mut n2 = Noc::new(16, NocConfig::default());
                let bigger = n2.send(
                    NodeId(*src),
                    NodeId(*dst),
                    bytes + 512,
                    MsgClass::Data,
                    Cycles(*t0),
                );
                prop_assert!(bigger >= arrive, "more bytes cannot arrive earlier");
            }
            Ok(())
        },
    );
}

/// Byte accounting equals the flit-padded sum of routed messages.
#[test]
fn bytes_are_flit_padded_sums() {
    check_n(
        "noc bytes are flit-padded sums",
        128,
        |rng| {
            let n = 1 + rng.gen_range(63) as usize;
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(16) as usize,
                        rng.gen_range(16) as usize,
                        1 + rng.gen_range(255),
                    )
                })
                .collect::<Vec<_>>()
        },
        |msgs| {
            let cfg = NocConfig::default();
            let mut n = Noc::new(16, cfg);
            let mut expected = 0u64;
            for &(s, d, b) in msgs {
                n.send(NodeId(s), NodeId(d), b, MsgClass::Data, Cycles(0));
                if s != d {
                    expected += b.div_ceil(cfg.flit_bytes).max(1) * cfg.flit_bytes;
                }
            }
            prop_assert_eq!(n.total_bytes().0, expected);
            Ok(())
        },
    );
}

/// FIFO links: two messages on the same route arrive in send order.
#[test]
fn same_route_is_fifo() {
    check_n(
        "noc same route is fifo",
        128,
        |rng| {
            Unshrunk((
                1 + rng.gen_range(255),
                1 + rng.gen_range(255),
                rng.gen_range(16),
            ))
        },
        |Unshrunk((bytes1, bytes2, gap))| {
            let mut n = Noc::new(16, NocConfig::default());
            let a = n.send(NodeId(0), NodeId(15), *bytes1, MsgClass::Data, Cycles(0));
            let b = n.send(NodeId(0), NodeId(15), *bytes2, MsgClass::Data, Cycles(*gap));
            prop_assert!(b >= a, "later message must not overtake on the same route");
            Ok(())
        },
    );
}

/// Utilization stays in [0, 1] after finalize.
#[test]
fn utilization_bounded() {
    check_n(
        "noc utilization bounded",
        128,
        |rng| {
            let n = 1 + rng.gen_range(127) as usize;
            let msgs: Vec<(usize, usize, u64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(9) as usize,
                        rng.gen_range(9) as usize,
                        1 + rng.gen_range(255),
                    )
                })
                .collect();
            (msgs, Unshrunk(1 + rng.gen_range(49_999)))
        },
        |(msgs, Unshrunk(end))| {
            let mut n = Noc::new(9, NocConfig::default());
            let mut latest = 0;
            for &(s, d, b) in msgs {
                let t = n.send(NodeId(s), NodeId(d), b, MsgClass::Request, Cycles(0));
                latest = latest.max(t.0);
            }
            n.finalize(Cycles((*end).max(latest)));
            let s = n.stats();
            prop_assert!((0.0..=1.0).contains(&s.peak_link_utilization));
            prop_assert!((0.0..=1.0).contains(&s.mean_link_utilization));
            prop_assert!(s.mean_link_utilization <= s.peak_link_utilization + 1e-9);
            Ok(())
        },
    );
}

#[test]
fn hop_count_symmetric() {
    let n = Noc::new(16, NocConfig::default());
    let mesh = n.mesh();
    for a in 0..16 {
        for b in 0..16 {
            assert_eq!(
                mesh.hops(NodeId(a), NodeId(b)),
                mesh.hops(NodeId(b), NodeId(a))
            );
        }
    }
}

#[test]
fn triangle_inequality_on_hops() {
    let n = Noc::new(16, NocConfig::default());
    let mesh = n.mesh();
    for a in 0..16 {
        for b in 0..16 {
            for c in 0..16 {
                assert!(
                    mesh.hops(NodeId(a), NodeId(c))
                        <= mesh.hops(NodeId(a), NodeId(b)) + mesh.hops(NodeId(b), NodeId(c))
                );
            }
        }
    }
}
