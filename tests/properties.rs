//! Property-based tests (proptest) over cross-crate invariants.

use proptest::prelude::*;
use rce::prelude::*;
use rce_common::{LineGeometry, Rng as RceRng, SplitMix64};
use rce_trace::Builder;

/// Strategy: a small random program description.
fn program_strategy() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..u64::MAX, 2usize..5, 4usize..24)
}

fn build_program(seed: u64, threads: usize, ops: usize) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut b = Builder::new("prop", threads);
    let arena = b.shared(8 * 64);
    let bar = b.barrier();
    for t in 0..threads {
        for _ in 0..ops {
            let w = arena.word(rng.gen_range(arena.words()));
            match rng.gen_range(5) {
                0 | 1 => b.read(t, w),
                2 | 3 => b.write(t, w),
                _ => {
                    let l = b.lock();
                    b.acquire(t, l);
                    b.write(t, w);
                    b.release(t, l);
                }
            }
        }
    }
    b.barrier_all(bar);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated programs are always structurally valid.
    #[test]
    fn generated_programs_validate((seed, threads, ops) in program_strategy()) {
        let p = build_program(seed, threads, ops);
        prop_assert!(rce::trace::validate(&p).is_ok());
    }

    /// Every engine's exception set equals the oracle's, on arbitrary
    /// programs.
    #[test]
    fn engines_equal_oracle((seed, threads, ops) in program_strategy()) {
        let p = build_program(seed, threads, ops);
        for proto in ProtocolKind::DETECTORS {
            let cfg = MachineConfig::paper_default(threads, proto);
            let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
            prop_assert!(r.matches_oracle(), "{proto}: {} vs {}",
                r.exceptions.len(), r.oracle_conflicts.len());
        }
    }

    /// Simulations are deterministic functions of (program, config).
    #[test]
    fn simulation_deterministic((seed, threads, ops) in program_strategy()) {
        let p = build_program(seed, threads, ops);
        let cfg = MachineConfig::paper_default(threads, ProtocolKind::Arc);
        let m = Machine::new(&cfg).unwrap();
        let a = m.run(&p).unwrap();
        let b = m.run(&p).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.exceptions, b.exceptions);
    }

    /// The baseline never raises exceptions, whatever the program.
    #[test]
    fn baseline_never_raises((seed, threads, ops) in program_strategy()) {
        let p = build_program(seed, threads, ops);
        let cfg = MachineConfig::paper_default(threads, ProtocolKind::MesiBaseline);
        let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
        prop_assert!(r.exceptions.is_empty());
    }

    /// Exceptions always involve a write, two distinct cores, and a
    /// word inside the program's address space.
    #[test]
    fn exceptions_are_well_formed((seed, threads, ops) in program_strategy()) {
        let p = build_program(seed, threads, ops);
        let cfg = MachineConfig::paper_default(threads, ProtocolKind::Ce);
        let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
        for ex in &r.exceptions {
            prop_assert!(ex.involves_write());
            prop_assert!(ex.a.core < ex.b.core);
            prop_assert_eq!(ex.word_addr.0 % LineGeometry::WORD_BYTES, 0);
        }
    }

    /// Mask span arithmetic: the mask covers exactly the bytes of the
    /// access.
    #[test]
    fn word_mask_span_covers_access(addr in 0u64..1_000_000, len in 1u64..64) {
        let a = rce::common::Addr(addr);
        let line_end = (a.line().0 + 1) << LineGeometry::LINE_SHIFT;
        let len = len.min(line_end - addr);
        let mask = rce::common::WordMask::span(a, len);
        // First and last byte's words are covered.
        prop_assert!(mask.contains(a.word()));
        let last = rce::common::Addr(addr + len - 1);
        prop_assert!(mask.contains(last.word()));
        prop_assert!(mask.count() as u64 <= len / 8 + 2);
    }

    /// Workload generation is scale-monotone and deterministic.
    #[test]
    fn workloads_deterministic(seed in 0u64..1000) {
        let w = WorkloadSpec::Dedup;
        prop_assert_eq!(w.build(4, 1, seed), w.build(4, 1, seed));
    }
}
