//! Property-based tests (in-tree `check` harness) over cross-crate
//! invariants.

use rce::prelude::*;
use rce_common::check::check_n;
use rce_common::{prop_assert, prop_assert_eq, LineGeometry, Rng as RceRng, SplitMix64};
use rce_trace::Builder;

/// A small random program description: (seed, threads, ops/thread).
fn gen_program_desc(rng: &mut SplitMix64) -> (u64, usize, usize) {
    (
        rng.next_u64(),
        2 + rng.gen_range(3) as usize,
        4 + rng.gen_range(20) as usize,
    )
}

fn build_program(seed: u64, threads: usize, ops: usize) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut b = Builder::new("prop", threads);
    let arena = b.shared(8 * 64);
    let bar = b.barrier();
    for t in 0..threads {
        for _ in 0..ops {
            let w = arena.word(rng.gen_range(arena.words()));
            match rng.gen_range(5) {
                0 | 1 => b.read(t, w),
                2 | 3 => b.write(t, w),
                _ => {
                    let l = b.lock();
                    b.acquire(t, l);
                    b.write(t, w);
                    b.release(t, l);
                }
            }
        }
    }
    b.barrier_all(bar);
    b.finish()
}

/// Generated programs are always structurally valid.
#[test]
fn generated_programs_validate() {
    check_n(
        "generated_programs_validate",
        64,
        gen_program_desc,
        |&(seed, threads, ops)| {
            let p = build_program(seed, threads, ops);
            prop_assert!(rce::trace::validate(&p).is_ok());
            Ok(())
        },
    );
}

/// Every engine's exception set equals the oracle's, on arbitrary
/// programs.
#[test]
fn engines_equal_oracle() {
    check_n(
        "engines_equal_oracle",
        64,
        gen_program_desc,
        |&(seed, threads, ops)| {
            let p = build_program(seed, threads, ops);
            for proto in ProtocolKind::DETECTORS {
                let cfg = MachineConfig::paper_default(threads, proto);
                let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
                prop_assert!(
                    r.matches_oracle(),
                    "{proto}: {} vs {}",
                    r.exceptions.len(),
                    r.oracle_conflicts.len()
                );
            }
            Ok(())
        },
    );
}

/// Simulations are deterministic functions of (program, config).
#[test]
fn simulation_deterministic() {
    check_n(
        "simulation_deterministic",
        64,
        gen_program_desc,
        |&(seed, threads, ops)| {
            let p = build_program(seed, threads, ops);
            let cfg = MachineConfig::paper_default(threads, ProtocolKind::Arc);
            let m = Machine::new(&cfg).unwrap();
            let a = m.run(&p).unwrap();
            let b = m.run(&p).unwrap();
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.exceptions, b.exceptions);
            Ok(())
        },
    );
}

/// The baseline never raises exceptions, whatever the program.
#[test]
fn baseline_never_raises() {
    check_n(
        "baseline_never_raises",
        64,
        gen_program_desc,
        |&(seed, threads, ops)| {
            let p = build_program(seed, threads, ops);
            let cfg = MachineConfig::paper_default(threads, ProtocolKind::MesiBaseline);
            let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
            prop_assert!(r.exceptions.is_empty());
            Ok(())
        },
    );
}

/// Exceptions always involve a write, two distinct cores, and a word
/// inside the program's address space.
#[test]
fn exceptions_are_well_formed() {
    check_n(
        "exceptions_are_well_formed",
        64,
        gen_program_desc,
        |&(seed, threads, ops)| {
            let p = build_program(seed, threads, ops);
            let cfg = MachineConfig::paper_default(threads, ProtocolKind::Ce);
            let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
            for ex in &r.exceptions {
                prop_assert!(ex.involves_write());
                prop_assert!(ex.a.core < ex.b.core);
                prop_assert_eq!(ex.word_addr.0 % LineGeometry::WORD_BYTES, 0);
            }
            Ok(())
        },
    );
}

/// Mask span arithmetic: the mask covers exactly the bytes of the
/// access.
#[test]
fn word_mask_span_covers_access() {
    check_n(
        "word_mask_span_covers_access",
        64,
        |rng: &mut SplitMix64| (rng.gen_range(1_000_000), 1 + rng.gen_range(63)),
        |&(addr, len)| {
            let a = rce::common::Addr(addr);
            let line_end = (a.line().0 + 1) << LineGeometry::LINE_SHIFT;
            let len = len.min(line_end - addr);
            let mask = rce::common::WordMask::span(a, len);
            // First and last byte's words are covered.
            prop_assert!(mask.contains(a.word()));
            let last = rce::common::Addr(addr + len - 1);
            prop_assert!(mask.contains(last.word()));
            prop_assert!(mask.count() as u64 <= len / 8 + 2);
            Ok(())
        },
    );
}

/// Forensics heatmaps account for every materialized detection: on
/// arbitrary (racy) programs, the heatmap total equals the detector's
/// `conflict_checks_hit` counter and the record count equals the
/// delivered exception set, for every detecting engine.
#[test]
fn forensics_heatmaps_match_detector_counters() {
    check_n(
        "forensics_heatmaps_match_detector_counters",
        32,
        gen_program_desc,
        |&(seed, threads, ops)| {
            let p = build_program(seed, threads, ops);
            for proto in ProtocolKind::DETECTORS {
                let cfg = MachineConfig::paper_default(threads, proto);
                let r = Machine::new(&cfg)
                    .unwrap()
                    .with_observability(rce_common::ObsConfig::forensics_only())
                    .run(&p)
                    .unwrap();
                let f = r.forensics.as_ref().expect("forensics was on");
                let hits = r
                    .engine_counters
                    .iter()
                    .find(|(k, _)| k == "conflict_checks_hit")
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                prop_assert_eq!(f.total_detections, hits, "{proto}: totals");
                prop_assert_eq!(f.heatmap_total(), hits, "{proto}: heatmap sum");
                prop_assert_eq!(f.delivered, r.exceptions.len() as u64, "{proto}: delivered");
                prop_assert!(
                    f.records.len() as u64 + f.truncated_records == f.delivered,
                    "{proto}: records + truncated == delivered"
                );
            }
            Ok(())
        },
    );
}

/// Workload generation is deterministic in the seed.
#[test]
fn workloads_deterministic() {
    check_n(
        "workloads_deterministic",
        16,
        |rng: &mut SplitMix64| rng.gen_range(1000),
        |&seed| {
            let w = WorkloadSpec::Dedup;
            prop_assert_eq!(w.build(4, 1, seed), w.build(4, 1, seed));
            Ok(())
        },
    );
}
