//! Fast-path equivalence gate: the access filter, the oracle's
//! epoch-stamped early return, and the machine's oracle skip are pure
//! accelerations — with the filter on or off, every engine must emit
//! a byte-identical `SimReport` on every program.
//!
//! This is the property the golden files check for four pinned
//! configurations; here it is checked for the full `REGISTRY`
//! (including the cross-compositions), for racy microbenchmarks, and
//! for random programs.

use rce::prelude::*;
use rce_common::check::check_n;
use rce_common::{Rng as RceRng, SplitMix64};
use rce_core::REGISTRY;
use rce_trace::Builder;

/// Render the report of one run with the fast path forced on or off.
fn render(cfg: &MachineConfig, program: &Program, fastpath: bool) -> String {
    let report = Machine::new(cfg)
        .unwrap()
        .with_fastpath(fastpath)
        .run(program)
        .unwrap();
    rce_common::json::to_string_pretty(&report)
}

fn assert_equivalent(cfg: &MachineConfig, program: &Program, label: &str) {
    let on = render(cfg, program, true);
    let off = render(cfg, program, false);
    assert!(
        on == off,
        "{label}: SimReport differs between fast path on and off"
    );
}

/// Every registry variant, on workloads chosen to stress the filter:
/// repeat private accesses (high hit rate), lock-protected ping-pong
/// (remote invalidations), genuine races (conflicting repeats must
/// re-detect), and false sharing (word-disjoint line contention).
#[test]
fn registry_variants_match_with_fastpath_off() {
    let workloads = [
        WorkloadSpec::RacyPair,
        WorkloadSpec::PingPong,
        WorkloadSpec::FalseSharing,
        WorkloadSpec::Canneal,
    ];
    for v in &REGISTRY {
        let cfg = v.config(4);
        for w in workloads {
            let program = w.build(4, 1, 42);
            assert_equivalent(&cfg, &program, &format!("{} on {w:?}", v.cli_name));
        }
    }
}

/// Random racy programs: arbitrary interleavings of reads, writes, and
/// lock-protected writes over a small shared arena, for every paper
/// protocol.
#[test]
fn random_programs_match_with_fastpath_off() {
    check_n(
        "random_programs_match_with_fastpath_off",
        24,
        |rng: &mut SplitMix64| {
            (
                rng.next_u64(),
                2 + rng.gen_range(3) as usize,
                8 + rng.gen_range(24) as usize,
            )
        },
        |&(seed, threads, ops)| {
            let mut rng = SplitMix64::new(seed);
            let mut b = Builder::new("fastpath-equiv", threads);
            let arena = b.shared(8 * 64);
            let bar = b.barrier();
            for t in 0..threads {
                for _ in 0..ops {
                    let w = arena.word(rng.gen_range(arena.words()));
                    match rng.gen_range(6) {
                        0 | 1 => b.read(t, w),
                        2 | 3 => b.write(t, w),
                        4 => {
                            // Repeat pair: the second access is the
                            // fast path's bread and butter.
                            b.write(t, w);
                            b.read(t, w);
                        }
                        _ => {
                            let l = b.lock();
                            b.acquire(t, l);
                            b.write(t, w);
                            b.release(t, l);
                        }
                    }
                }
            }
            b.barrier_all(bar);
            let program = b.finish();
            for proto in ProtocolKind::ALL {
                let cfg = MachineConfig::paper_default(threads, proto);
                let on = render(&cfg, &program, true);
                let off = render(&cfg, &program, false);
                rce_common::prop_assert!(
                    on == off,
                    "{proto}: seed {seed} diverges between fast path on and off"
                );
            }
            Ok(())
        },
    );
}

/// The env knob and the builder agree: a machine with no explicit
/// override still produces the same report as both forced modes.
#[test]
fn default_mode_matches_forced_modes() {
    let program = WorkloadSpec::RacyPair.build(2, 1, 7);
    let cfg = MachineConfig::paper_default(2, ProtocolKind::CePlus);
    let default = {
        let report = Machine::new(&cfg).unwrap().run(&program).unwrap();
        rce_common::json::to_string_pretty(&report)
    };
    assert_eq!(default, render(&cfg, &program, true));
    assert_eq!(default, render(&cfg, &program, false));
}
