//! End-to-end behavioral tests across the whole stack: every workload
//! on every design, with assertions about the *relationships* the
//! paper's evaluation depends on.

use rce::prelude::*;

fn run(w: WorkloadSpec, proto: ProtocolKind, cores: usize, scale: u32) -> SimReport {
    let cfg = MachineConfig::paper_default(cores, proto);
    let p = w.build(cores, scale, 42);
    Machine::new(&cfg).unwrap().run(&p).unwrap()
}

#[test]
fn every_workload_runs_on_every_design() {
    for w in WorkloadSpec::PARSEC
        .iter()
        .chain(WorkloadSpec::MICRO.iter())
    {
        for proto in ProtocolKind::ALL {
            let r = run(*w, proto, 4, 1);
            assert!(r.cycles.0 > 0, "{w} {proto}");
            assert_eq!(r.l1_hits + r.l1_misses, r.mem_ops, "{w} {proto}");
            assert!(r.energy_total().0 > 0.0, "{w} {proto}");
        }
    }
}

#[test]
fn detection_is_never_free() {
    // Every detector must cost at least as much NoC traffic or time as
    // the baseline on sharing-heavy workloads — nothing is free.
    for w in [WorkloadSpec::Dedup, WorkloadSpec::Fluidanimate] {
        let base = run(w, ProtocolKind::MesiBaseline, 8, 1);
        for proto in [ProtocolKind::Ce, ProtocolKind::CePlus] {
            let r = run(w, proto, 8, 1);
            assert!(
                r.noc_bytes() >= base.noc_bytes(),
                "{w} {proto}: piggybacked metadata must not shrink traffic"
            );
        }
    }
}

#[test]
fn ce_pays_off_chip_metadata_ceplus_does_not() {
    // The paper's starting point (CE's off-chip metadata) and C1.
    let ce = run(WorkloadSpec::Canneal, ProtocolKind::Ce, 8, 2);
    let cep = run(WorkloadSpec::Canneal, ProtocolKind::CePlus, 8, 2);
    assert!(
        ce.dram.metadata_bytes().0 > 0,
        "CE must spill metadata to DRAM on canneal"
    );
    assert!(
        cep.dram.metadata_bytes().0 < ce.dram.metadata_bytes().0 / 4,
        "the AIM must absorb almost all of CE's off-chip metadata ({} vs {})",
        cep.dram.metadata_bytes(),
        ce.dram.metadata_bytes()
    );
    assert!(cep.aim.unwrap().accesses > 0);
}

#[test]
fn arc_sends_no_invalidations() {
    // C3's mechanism: release consistency + self-invalidation has no
    // eager invalidation traffic at all.
    for w in [WorkloadSpec::Canneal, WorkloadSpec::Streamcluster] {
        let r = run(w, ProtocolKind::Arc, 8, 1);
        assert_eq!(r.noc.invalidation_bytes().0, 0, "{w}");
    }
}

#[test]
fn arc_noc_traffic_below_ce_family_on_aggregate() {
    // C3: ARC stresses the interconnect much less — an aggregate
    // claim (individual workloads can go either way; barrier-dense
    // read-sharing makes ARC refetch, write-sharing makes CE+
    // invalidate).
    let workloads = [
        WorkloadSpec::Canneal,
        WorkloadSpec::Dedup,
        WorkloadSpec::Fluidanimate,
        WorkloadSpec::Streamcluster,
        WorkloadSpec::Vips,
    ];
    let ratio_product: f64 = workloads
        .iter()
        .map(|w| {
            let ce = run(*w, ProtocolKind::CePlus, 8, 2);
            let arc = run(*w, ProtocolKind::Arc, 8, 2);
            arc.noc_bytes().as_f64() / ce.noc_bytes().as_f64()
        })
        .product();
    let geomean = ratio_product.powf(1.0 / workloads.len() as f64);
    assert!(
        geomean < 1.0,
        "ARC/CE+ NoC traffic geomean must be below 1, got {geomean:.3}"
    );
}

#[test]
fn private_workloads_cost_all_designs_little() {
    let base = run(WorkloadSpec::PrivateOnly, ProtocolKind::MesiBaseline, 4, 1);
    for proto in ProtocolKind::DETECTORS {
        let r = run(WorkloadSpec::PrivateOnly, proto, 4, 1);
        let overhead = r.cycles.0 as f64 / base.cycles.0 as f64;
        assert!(
            overhead < 1.25,
            "{proto}: {overhead:.3}x on purely private data"
        );
    }
}

#[test]
fn self_invalidation_costs_arc_misses_on_read_shared_data() {
    // ARC's known tax: shared lines are refetched each region.
    let base = run(
        WorkloadSpec::Streamcluster,
        ProtocolKind::MesiBaseline,
        8,
        1,
    );
    let arc = run(WorkloadSpec::Streamcluster, ProtocolKind::Arc, 8, 1);
    assert!(
        arc.l1_misses > base.l1_misses,
        "ARC {} misses vs MESI {}",
        arc.l1_misses,
        base.l1_misses
    );
}

#[test]
fn exception_reports_carry_precise_provenance() {
    let r = run(WorkloadSpec::RacyPair, ProtocolKind::Ce, 4, 1);
    assert!(!r.exceptions.is_empty());
    for ex in &r.exceptions {
        assert!(ex.involves_write());
        assert_ne!(ex.a.core, ex.b.core);
        assert_eq!(ex.word_addr.0 % 8, 0, "word-aligned");
    }
}

#[test]
fn abort_policy_is_fail_stop() {
    let cfg = MachineConfig::paper_default(4, ProtocolKind::Arc);
    let p = WorkloadSpec::RacyPair.build(4, 1, 42);
    let r = Machine::new(&cfg)
        .unwrap()
        .run_with_policy(&p, rce::core::ExceptionPolicy::AbortOnFirst)
        .unwrap();
    assert!(r.aborted);
    assert_eq!(r.exceptions.len(), 1);
}

#[test]
fn scaling_cores_scales_work() {
    for proto in [ProtocolKind::MesiBaseline, ProtocolKind::Arc] {
        let small = run(WorkloadSpec::Blackscholes, proto, 2, 1);
        let large = run(WorkloadSpec::Blackscholes, proto, 8, 1);
        assert!(
            large.mem_ops > small.mem_ops,
            "{proto}: more cores, more total work"
        );
    }
}

#[test]
fn deterministic_across_machine_instances() {
    let p = WorkloadSpec::Ferret.build(8, 1, 99);
    let mut reports = Vec::new();
    for _ in 0..2 {
        let cfg = MachineConfig::paper_default(8, ProtocolKind::CePlus);
        reports.push(Machine::new(&cfg).unwrap().run(&p).unwrap());
    }
    assert_eq!(reports[0].cycles, reports[1].cycles);
    assert_eq!(reports[0].noc.total_bytes(), reports[1].noc.total_bytes());
    assert_eq!(reports[0].dram.total_bytes(), reports[1].dram.total_bytes());
    assert_eq!(reports[0].exceptions, reports[1].exceptions);
}
