//! The ablation modes (line granularity, ARC read-only sharing) must
//! preserve the engine↔oracle equivalence: the oracle observes at the
//! same granularity, and retention must never hide a conflict.

use rce::prelude::*;
use rce_common::{DetectionGranularity, Rng, SplitMix64};
use rce_trace::Builder;
use std::collections::HashSet;

fn fuzz_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let n = 2 + (rng.gen_range(3) as usize);
    let mut b = Builder::new(format!("fuzz{seed}"), n);
    let arena = b.shared(4 * 64);
    let nops = 4 + rng.gen_range(12);
    for t in 0..n {
        for _ in 0..nops {
            let r = rng.gen_f64();
            let w = arena.word(rng.gen_range(arena.words()));
            if r < 0.4 {
                b.read(t, w);
            } else if r < 0.8 {
                b.write(t, w);
            } else {
                let l = b.lock();
                b.acquire(t, l);
                b.release(t, l);
            }
        }
    }
    b.finish()
}

fn check(p: &Program, cfg: &MachineConfig) {
    let r = Machine::new(cfg).unwrap().run(p).unwrap();
    let engine: HashSet<_> = r.exceptions.iter().map(|x| x.key()).collect();
    let oracle: HashSet<_> = r.oracle_conflicts.iter().map(|x| x.key()).collect();
    assert_eq!(
        engine,
        oracle,
        "{} under {} ({:?}, ro={}): engine={} oracle={}",
        p.name,
        cfg.protocol,
        cfg.granularity,
        cfg.arc_readonly_sharing,
        engine.len(),
        oracle.len()
    );
}

#[test]
fn line_granularity_matches_line_oracle() {
    for seed in 0..400u64 {
        let p = fuzz_program(seed);
        for proto in ProtocolKind::DETECTORS {
            let mut cfg = MachineConfig::paper_default(p.n_threads(), proto);
            cfg.granularity = DetectionGranularity::Line;
            check(&p, &cfg);
        }
    }
}

#[test]
fn arc_readonly_matches_oracle() {
    for seed in 0..400u64 {
        let p = fuzz_program(seed ^ 0x5a5a);
        let mut cfg = MachineConfig::paper_default(p.n_threads(), ProtocolKind::Arc);
        cfg.arc_readonly_sharing = true;
        check(&p, &cfg);
    }
}

#[test]
fn arc_readonly_matches_oracle_on_workloads() {
    for w in [
        WorkloadSpec::Raytrace,
        WorkloadSpec::Canneal,
        WorkloadSpec::Streamcluster,
        WorkloadSpec::RacyPair,
    ] {
        let p = w.build(8, 1, 42);
        let mut cfg = MachineConfig::paper_default(8, ProtocolKind::Arc);
        cfg.arc_readonly_sharing = true;
        check(&p, &cfg);
    }
}

#[test]
fn line_granularity_is_superset_of_word() {
    // Every word-granularity conflict is also a line-granularity
    // conflict (identity modulo word address: compare by line+cores).
    for seed in 0..100u64 {
        let p = fuzz_program(seed ^ 0x1111);
        let cfg_w = MachineConfig::paper_default(p.n_threads(), ProtocolKind::CePlus);
        let mut cfg_l = cfg_w.clone();
        cfg_l.granularity = DetectionGranularity::Line;
        let rw = Machine::new(&cfg_w).unwrap().run(&p).unwrap();
        let rl = Machine::new(&cfg_l).unwrap().run(&p).unwrap();
        let lines_l: HashSet<_> = rl
            .exceptions
            .iter()
            .map(|x| (x.word_addr.line(), x.a.core, x.b.core))
            .collect();
        for x in &rw.exceptions {
            assert!(
                lines_l.contains(&(x.word_addr.line(), x.a.core, x.b.core)),
                "word conflict {x} missing at line granularity"
            );
        }
    }
}

#[test]
fn false_sharing_only_flagged_at_line_granularity() {
    let p = WorkloadSpec::FalseSharing.build(8, 1, 42);
    for proto in ProtocolKind::DETECTORS {
        let cfg = MachineConfig::paper_default(8, proto);
        let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
        assert!(r.exceptions.is_empty(), "{proto} word granularity");

        let mut cfg = cfg;
        cfg.granularity = DetectionGranularity::Line;
        let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
        assert!(!r.exceptions.is_empty(), "{proto} line granularity");
        assert!(r.matches_oracle(), "{proto}");
    }
}

#[test]
fn moesi_matches_oracle() {
    for seed in 0..400u64 {
        let p = fuzz_program(seed ^ 0xabcd);
        for proto in [ProtocolKind::Ce, ProtocolKind::CePlus] {
            let mut cfg = MachineConfig::paper_default(p.n_threads(), proto);
            cfg.use_owned_state = true;
            check(&p, &cfg);
        }
    }
}

#[test]
fn moesi_matches_oracle_on_workloads() {
    for w in [
        WorkloadSpec::Canneal,
        WorkloadSpec::Migratory,
        WorkloadSpec::RacyPair,
        WorkloadSpec::Dedup,
    ] {
        let p = w.build(8, 1, 42);
        for proto in [ProtocolKind::Ce, ProtocolKind::CePlus] {
            let mut cfg = MachineConfig::paper_default(8, proto);
            cfg.use_owned_state = true;
            check(&p, &cfg);
        }
    }
}

#[test]
fn moesi_reduces_writeback_traffic_on_migratory_sharing() {
    // The point of O: dirty data bounces producer->consumer without
    // touching the LLC on every handoff.
    let p = WorkloadSpec::Migratory.build(8, 2, 42);
    let mesi = {
        let cfg = MachineConfig::paper_default(8, ProtocolKind::MesiBaseline);
        Machine::new(&cfg).unwrap().run(&p).unwrap()
    };
    let moesi = {
        let mut cfg = MachineConfig::paper_default(8, ProtocolKind::MesiBaseline);
        cfg.use_owned_state = true;
        Machine::new(&cfg).unwrap().run(&p).unwrap()
    };
    let wb = |r: &SimReport| r.noc.bytes[rce_noc::MsgClass::Writeback.index()].0;
    assert!(
        wb(&moesi) < wb(&mesi),
        "MOESI {} vs MESI {} writeback bytes",
        wb(&moesi),
        wb(&mesi)
    );
}

#[test]
fn readonly_retention_reduces_misses_on_read_shared_data() {
    let p = WorkloadSpec::Streamcluster.build(8, 2, 42);
    let off = {
        let cfg = MachineConfig::paper_default(8, ProtocolKind::Arc);
        Machine::new(&cfg).unwrap().run(&p).unwrap()
    };
    let on = {
        let mut cfg = MachineConfig::paper_default(8, ProtocolKind::Arc);
        cfg.arc_readonly_sharing = true;
        Machine::new(&cfg).unwrap().run(&p).unwrap()
    };
    assert!(
        on.l1_misses < off.l1_misses,
        "ro retention should cut misses: {} vs {}",
        on.l1_misses,
        off.l1_misses
    );
    assert_eq!(on.exceptions, off.exceptions, "detection unchanged");
}
