//! Golden-report gate: the four seed engine configurations (plus two
//! small-AIM variants that force the spill/refill paths) must produce
//! byte-identical `SimReport` JSON, forever.
//!
//! The files in `tests/goldens/` were pinned before the engines were
//! split into coherence/detection/metadata layers; this test is what
//! makes "refactor" a checkable claim rather than a hope. Regenerate
//! deliberately with `cargo run --release --example dump_goldens` when
//! a simulation-visible change is intended.

use rce::prelude::*;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn render(cfg: &MachineConfig, program: &Program) -> String {
    let report = Machine::new(cfg).unwrap().run(program).unwrap();
    let mut text = rce_common::json::to_string_pretty(&report);
    text.push('\n');
    text
}

#[test]
fn seed_engine_reports_are_byte_identical() {
    let program = WorkloadSpec::Canneal.build(4, 3, 42);
    let mut cases: Vec<(String, MachineConfig)> = ProtocolKind::ALL
        .iter()
        .map(|&p| {
            let slug = p.name().replace('+', "plus").to_lowercase();
            (
                format!("canneal-4c-{slug}.json"),
                MachineConfig::paper_default(4, p),
            )
        })
        .collect();
    for p in [ProtocolKind::CePlus, ProtocolKind::Arc] {
        let slug = p.name().replace('+', "plus").to_lowercase();
        cases.push((
            format!("canneal-4c-aim64-{slug}.json"),
            MachineConfig::paper_default(4, p).with_aim_entries(64),
        ));
    }
    for (name, cfg) in cases {
        let want = std::fs::read_to_string(golden_path(&name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        let got = render(&cfg, &program);
        assert!(
            got == want,
            "{name}: report drifted from the pinned golden \
             (run `cargo run --release --example dump_goldens` and diff \
             tests/goldens/ if the change is intended)"
        );
    }
}

/// The forensics layer obeys the same zero-perturbation contract as
/// tracing and sampling: run every seed engine with forensics on,
/// strip the `forensics` section, and the bytes must equal the pinned
/// goldens exactly.
#[test]
fn forensics_on_reports_strip_to_the_seed_goldens() {
    let program = WorkloadSpec::Canneal.build(4, 3, 42);
    for &p in ProtocolKind::ALL.iter() {
        let slug = p.name().replace('+', "plus").to_lowercase();
        let name = format!("canneal-4c-{slug}.json");
        let want = std::fs::read_to_string(golden_path(&name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        let cfg = MachineConfig::paper_default(4, p);
        let mut report = Machine::new(&cfg)
            .unwrap()
            .with_observability(rce_common::ObsConfig::forensics_only())
            .run(&program)
            .unwrap();
        assert!(report.forensics.is_some(), "{name}: forensics was on");
        report.forensics = None;
        let mut got = rce_common::json::to_string_pretty(&report);
        got.push('\n');
        assert!(
            got == want,
            "{name}: forensics perturbed the simulation (stripped report \
             differs from the pinned golden)"
        );
    }
}
