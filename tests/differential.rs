//! Differential tests: every detection engine must report exactly the
//! oracle's conflict set on the same schedule.
//!
//! This is the repository's strongest correctness statement: CE, CE+,
//! and ARC implement three very different mechanisms (eager
//! invalidation piggybacks with an in-memory table, the same with an
//! on-chip AIM, and self-invalidation with LLC-side registration), and
//! all three must agree — per conflict identity, not just count — with
//! a simple declarative detector.

use rce::prelude::*;
use rce_common::{Rng, SplitMix64};
use rce_trace::Builder;
use std::collections::HashSet;

fn assert_matches_oracle(name: &str, program: &Program, protocol: ProtocolKind) {
    let cfg = MachineConfig::paper_default(program.n_threads(), protocol);
    assert_matches_oracle_cfg(name, program, &cfg, &protocol.to_string());
}

fn assert_matches_oracle_cfg(name: &str, program: &Program, cfg: &MachineConfig, engine: &str) {
    let report = Machine::new(cfg).unwrap().run(program).unwrap();
    let detected: HashSet<_> = report.exceptions.iter().map(|x| x.key()).collect();
    let oracle: HashSet<_> = report.oracle_conflicts.iter().map(|x| x.key()).collect();
    let missed: Vec<_> = oracle.difference(&detected).collect();
    let spurious: Vec<_> = detected.difference(&oracle).collect();
    assert!(
        missed.is_empty() && spurious.is_empty(),
        "{name} under {engine}: engine={} oracle={} missed={missed:?} spurious={spurious:?}",
        detected.len(),
        oracle.len(),
    );
}

/// Random small programs over a handful of shared lines: dense
/// conflicts, every interleaving corner.
fn fuzz_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let n = 2 + (rng.gen_range(3) as usize);
    let mut b = Builder::new(format!("fuzz{seed}"), n);
    let arena = b.shared(4 * 64);
    let nops = 4 + rng.gen_range(12);
    for t in 0..n {
        for _ in 0..nops {
            let r = rng.gen_f64();
            let w = arena.word(rng.gen_range(arena.words()));
            if r < 0.4 {
                b.read(t, w);
            } else if r < 0.8 {
                b.write(t, w);
            } else {
                let l = b.lock();
                b.acquire(t, l);
                b.release(t, l);
            }
        }
    }
    b.finish()
}

/// Random large-footprint programs: forces L1 evictions, metadata
/// displacement, AIM spills, and recalls.
fn fuzz_big_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0xbeef);
    let n = 4;
    let mut b = Builder::new(format!("fuzz-big{seed}"), n);
    let arena = b.shared(512 * 64); // 512 lines >> the 8 KiB L1
    for t in 0..n {
        for _ in 0..200 {
            let r = rng.gen_f64();
            let w = arena.word(rng.gen_range(arena.words()));
            if r < 0.4 {
                b.read(t, w);
            } else if r < 0.85 {
                b.write(t, w);
            } else {
                let l = b.lock();
                b.acquire(t, l);
                b.release(t, l);
            }
        }
    }
    b.finish()
}

#[test]
fn small_fuzz_all_engines_match_oracle() {
    for seed in 0..1500u64 {
        let p = fuzz_program(seed);
        for protocol in ProtocolKind::DETECTORS {
            assert_matches_oracle(&p.name.clone(), &p, protocol);
        }
    }
}

#[test]
fn eviction_heavy_fuzz_all_engines_match_oracle() {
    for seed in 0..60u64 {
        let p = fuzz_big_program(seed);
        for protocol in ProtocolKind::DETECTORS {
            assert_matches_oracle(&p.name.clone(), &p, protocol);
        }
    }
}

#[test]
fn parsec_with_injected_races_matches_oracle() {
    for w in WorkloadSpec::PARSEC {
        let mut p = w.build(8, 1, 42);
        rce::trace::inject_races(&mut p, 4, 42);
        for protocol in ProtocolKind::DETECTORS {
            assert_matches_oracle(w.name(), &p, protocol);
        }
    }
}

#[test]
fn naturally_racy_workloads_match_oracle() {
    for w in [WorkloadSpec::Canneal, WorkloadSpec::RacyPair] {
        let p = w.build(8, 1, 7);
        for protocol in ProtocolKind::DETECTORS {
            assert_matches_oracle(w.name(), &p, protocol);
        }
    }
}

/// The cross-composition variants (CE+ on an ideal store, ARC on CE's
/// DRAM table) change only the metadata cost model, so they must
/// detect exactly the oracle's conflict set too.
#[test]
fn cross_composition_variants_match_oracle() {
    let variants: Vec<_> = rce_core::REGISTRY
        .iter()
        .filter(|v| !v.is_paper_design())
        .collect();
    assert_eq!(variants.len(), 2, "expected CE+ideal and ARC-dram");
    for seed in 0..200u64 {
        let p = fuzz_program(seed);
        for v in &variants {
            let cfg = v.config(p.n_threads());
            assert_matches_oracle_cfg(&p.name.clone(), &p, &cfg, v.cli_name);
        }
    }
    for seed in 0..20u64 {
        let p = fuzz_big_program(seed);
        for v in &variants {
            let cfg = v.config(p.n_threads());
            assert_matches_oracle_cfg(&p.name.clone(), &p, &cfg, v.cli_name);
        }
    }
}

#[test]
fn race_free_workloads_raise_nothing() {
    for w in WorkloadSpec::PARSEC {
        if w.is_racy() {
            continue;
        }
        let p = w.build(8, 1, 11);
        for protocol in ProtocolKind::DETECTORS {
            let cfg = MachineConfig::paper_default(8, protocol);
            let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
            assert!(
                r.exceptions.is_empty(),
                "{} under {protocol}: spurious exceptions {:?}",
                w.name(),
                r.exceptions.first()
            );
            assert!(
                r.oracle_conflicts.is_empty(),
                "{} oracle disagrees",
                w.name()
            );
        }
    }
}

#[test]
fn detection_is_independent_of_detector() {
    // All detectors run the same program; conflict identities can
    // legitimately differ across engines (different timing, different
    // interleavings), but for programs whose racy accesses are ordered
    // by padding (racy_pair), the sets must be identical.
    let p = WorkloadSpec::RacyPair.build(4, 1, 3);
    let sets: Vec<HashSet<_>> = ProtocolKind::DETECTORS
        .iter()
        .map(|proto| {
            let cfg = MachineConfig::paper_default(4, *proto);
            let r = Machine::new(&cfg).unwrap().run(&p).unwrap();
            r.exceptions
                .iter()
                .map(|x| (x.word_addr, x.a.core, x.b.core))
                .collect()
        })
        .collect();
    assert_eq!(sets[0], sets[1]);
    assert_eq!(sets[1], sets[2]);
}
