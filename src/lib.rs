//! # rce — Region Conflict Exceptions
//!
//! Facade crate for the reproduction of *"Rethinking Support for
//! Region Conflict Exceptions"* (Biswas, Zhang, Bond, Lucia — IPDPS
//! 2019). Re-exports the whole workspace under one roof:
//!
//! - [`trace`] — synthetic PARSEC-like workloads with SFR structure,
//! - [`noc`] / [`dram`] / [`cache`] — the architectural substrates,
//! - [`energy`] — the per-event energy model,
//! - [`core`] — the paper's contribution: the MESI baseline and the
//!   CE, CE+ and ARC conflict-exception engines plus the machine
//!   driver,
//! - [`common`] — shared vocabulary types.
//!
//! ## Quickstart
//!
//! ```
//! use rce::prelude::*;
//!
//! // Build a workload, pick a machine, run each design.
//! let program = WorkloadSpec::Fluidanimate.build(8, 1, 42);
//! for proto in ProtocolKind::ALL {
//!     let config = MachineConfig::paper_default(8, proto);
//!     let report = Machine::new(&config).unwrap().run(&program).unwrap();
//!     println!("{:>5}: {} cycles", proto.name(), report.cycles.0);
//! }
//! ```

pub use rce_cache as cache;
pub use rce_common as common;
pub use rce_core as core;
pub use rce_dram as dram;
pub use rce_energy as energy;
pub use rce_noc as noc;
pub use rce_trace as trace;

/// Convenient glob-import surface: the types almost every user needs.
pub mod prelude {
    pub use rce_common::{
        Addr, Bytes, CoreId, Cycles, DetectionGranularity, LineAddr, MachineConfig, PicoJoules,
        ProtocolKind, RegionId, ThreadId, WordIdx, WordMask,
    };
    pub use rce_core::{ConflictException, ExceptionPolicy, Machine, SimReport};
    pub use rce_trace::{characterize, inject_races, Program, WorkloadSpec};
}
