//! The beyond-the-paper knobs in one place: MOESI substrate, ARC
//! read-only sharing, and detection granularity.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use rce::prelude::*;

fn run(cfg: &MachineConfig, p: &Program) -> SimReport {
    Machine::new(cfg).unwrap().run(p).unwrap()
}

fn main() {
    let cores = 16;

    // 1. MOESI: dirty downgrades skip the LLC writeback.
    println!("== MESI vs MOESI substrate (migratory token) ==");
    let p = WorkloadSpec::Migratory.build(cores, 2, 42);
    for owned in [false, true] {
        let mut cfg = MachineConfig::paper_default(cores, ProtocolKind::MesiBaseline);
        cfg.use_owned_state = owned;
        let r = run(&cfg, &p);
        println!(
            "{:5}: {:>8} cycles, {:>10} NoC, {:>10} writeback",
            if owned { "MOESI" } else { "MESI" },
            r.cycles.0,
            r.noc_bytes().to_string(),
            rce::common::Bytes(r.noc.bytes[rce::noc::MsgClass::Writeback.index()].0).to_string(),
        );
    }

    // 2. ARC read-only sharing: read-mostly data survives boundaries.
    println!("\n== ARC read-only sharing (streamcluster) ==");
    let p = WorkloadSpec::Streamcluster.build(cores, 2, 42);
    for ro in [false, true] {
        let mut cfg = MachineConfig::paper_default(cores, ProtocolKind::Arc);
        cfg.arc_readonly_sharing = ro;
        let r = run(&cfg, &p);
        let retained = r
            .engine_counters
            .iter()
            .find(|(k, _)| k == "ro_retained_lines")
            .map_or(0, |(_, v)| *v);
        println!(
            "{}: {:>8} cycles, L1 miss {:>5.1}%, {} lines retained",
            if ro { "ARC+ro" } else { "ARC   " },
            r.cycles.0,
            r.l1_miss_rate() * 100.0,
            retained,
        );
    }

    // 3. Granularity: why per-word bits matter.
    println!("\n== Detection granularity (false_sharing) ==");
    let p = WorkloadSpec::FalseSharing.build(cores, 2, 42);
    for g in [DetectionGranularity::Word, DetectionGranularity::Line] {
        let mut cfg = MachineConfig::paper_default(cores, ProtocolKind::CePlus);
        cfg.granularity = g;
        let r = run(&cfg, &p);
        println!(
            "{g:?}: {} exceptions (oracle agrees: {})",
            r.exceptions.len(),
            r.matches_oracle(),
        );
    }
    println!("\nWord granularity raises nothing on false sharing; line granularity");
    println!("floods the program with spurious exceptions. Both match their own");
    println!("oracle, so the difference is the *definition*, not a detector bug.");
}
