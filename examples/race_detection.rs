//! Region conflict exceptions in action: run an intentionally racy
//! workload (canneal-style lock-free swaps), deliver precise
//! exceptions, and cross-check every engine against the oracle.
//!
//! ```text
//! cargo run --release --example race_detection
//! ```

use rce::core::ExceptionPolicy;
use rce::prelude::*;

fn main() {
    let cores = 8;

    // 1. A naturally racy workload: canneal's unsynchronized swaps.
    let racy = WorkloadSpec::Canneal.build(cores, 1, 7);
    println!("== {} (intentionally racy) ==", racy.name);
    for proto in ProtocolKind::DETECTORS {
        let config = MachineConfig::paper_default(cores, proto);
        let report = Machine::new(&config).unwrap().run(&racy).unwrap();
        println!(
            "{:<4}: {} conflicts detected, oracle agrees: {}",
            proto.name(),
            report.exceptions.len(),
            report.matches_oracle()
        );
    }

    // 2. Precise provenance: inspect the first few exceptions.
    let config = MachineConfig::paper_default(cores, ProtocolKind::Arc);
    let report = Machine::new(&config).unwrap().run(&racy).unwrap();
    println!("\nfirst exceptions (ARC):");
    for ex in report.exceptions.iter().take(5) {
        println!("  {ex}");
    }

    // 3. Injecting races into a race-free program.
    let mut seeded = WorkloadSpec::Blackscholes.build(cores, 1, 42);
    let planted = rce::trace::inject_races(&mut seeded, 3, 42);
    println!(
        "\n== {} with {} planted races ==",
        seeded.name,
        planted.len()
    );
    let report = Machine::new(&config).unwrap().run(&seeded).unwrap();
    println!("detected {} conflicts:", report.exceptions.len());
    for ex in &report.exceptions {
        let known = planted.iter().any(|a| a.line() == ex.word_addr.line());
        println!("  {ex}  (planted: {known})");
    }

    // 4. Fail-stop semantics: abort at the first conflict.
    let aborted = Machine::new(&config)
        .unwrap()
        .run_with_policy(&seeded, ExceptionPolicy::AbortOnFirst)
        .unwrap();
    println!(
        "\nfail-stop run: aborted={} after {} memory ops (full run: {})",
        aborted.aborted, aborted.mem_ops, report.mem_ops
    );
}
