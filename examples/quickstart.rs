//! Quickstart: simulate one workload on all four designs and print
//! the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rce::prelude::*;

fn main() {
    let cores = 8;
    // A synchronization-heavy PARSEC-like workload: per-cell locks,
    // border sharing, short regions.
    let program = WorkloadSpec::Fluidanimate.build(cores, 2, 42);
    println!(
        "workload: {} ({} threads, {} memory ops, {} sync ops)\n",
        program.name,
        program.n_threads(),
        program.total_mem_ops(),
        program.total_sync_ops()
    );

    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "design", "cycles", "L1 miss%", "NoC bytes", "DRAM bytes", "energy"
    );
    let mut baseline_cycles = None;
    for proto in ProtocolKind::ALL {
        let config = MachineConfig::paper_default(cores, proto);
        let report = Machine::new(&config)
            .expect("valid configuration")
            .run(&program)
            .expect("valid program");
        if proto == ProtocolKind::MesiBaseline {
            baseline_cycles = Some(report.cycles.0 as f64);
        }
        let rel = report.cycles.0 as f64 / baseline_cycles.unwrap();
        println!(
            "{:<6} {:>12} {:>9.1}% {:>12} {:>12} {:>10} ({rel:.3}x)",
            proto.name(),
            report.cycles.0,
            report.l1_miss_rate() * 100.0,
            report.noc_bytes().to_string(),
            report.dram_bytes().to_string(),
            report.energy_total().to_string(),
        );
    }

    println!("\nThe workload is race-free, so no design raised an exception.");
    println!("Try examples/race_detection.rs next.");
}
