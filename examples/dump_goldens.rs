//! Regenerate the golden reports that pin the four seed engine
//! configurations (tests/goldens/*.json, diffed byte-for-byte by
//! `tests/golden_reports.rs` and `scripts/ci.sh`).
//!
//! ```text
//! cargo run --release --example dump_goldens
//! ```
//!
//! Only run this deliberately, when a simulation-visible change is
//! intended; the whole point of the files is to catch accidental
//! behavior drift.

use rce::prelude::*;

fn main() {
    let out = std::path::Path::new("tests/goldens");
    std::fs::create_dir_all(out).expect("create tests/goldens");
    let program = WorkloadSpec::Canneal.build(4, 3, 42);
    for proto in ProtocolKind::ALL {
        let cfg = MachineConfig::paper_default(4, proto);
        write_golden(out, "canneal-4c", proto, &cfg, &program);
    }
    // Extra pin: a 64-entry AIM forces spills/refills through the
    // DRAM overflow table, covering the paths the default-sized AIM
    // never reaches on this workload.
    for proto in [ProtocolKind::CePlus, ProtocolKind::Arc] {
        let cfg = MachineConfig::paper_default(4, proto).with_aim_entries(64);
        write_golden(out, "canneal-4c-aim64", proto, &cfg, &program);
    }
}

fn write_golden(
    out: &std::path::Path,
    tag: &str,
    proto: ProtocolKind,
    cfg: &MachineConfig,
    program: &rce::trace::Program,
) {
    let report = Machine::new(cfg).unwrap().run(program).unwrap();
    let slug = proto.name().replace('+', "plus").to_lowercase();
    let path = out.join(format!("{tag}-{slug}.json"));
    let mut text = rce::common::json::to_string_pretty(&report);
    text.push('\n');
    std::fs::write(&path, text).expect("write golden");
    println!("wrote {}", path.display());
}
