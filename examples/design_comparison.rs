//! The paper's argument in one program: compare CE, CE+, and ARC on
//! the two workloads that expose the design trade-off —
//! eviction-heavy random sharing (canneal) and tiny critical sections
//! (fluidanimate) — and decompose *where* each design pays.
//!
//! ```text
//! cargo run --release --example design_comparison
//! ```

use rce::prelude::*;

fn main() {
    let cores = 16;
    let scale = 2;
    for workload in [WorkloadSpec::Canneal, WorkloadSpec::Fluidanimate] {
        let program = workload.build(cores, scale, 42);
        println!("== {} ({} cores) ==", program.name, cores);
        let base = run(workload, ProtocolKind::MesiBaseline, cores, scale);
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>11} {:>11} {:>10}",
            "design", "runtime", "noc", "dram", "inv+ack B", "metadata B", "AIM hit%"
        );
        for proto in ProtocolKind::ALL {
            let r = run(workload, proto, cores, scale);
            let n = r.normalized_to(&base);
            println!(
                "{:<6} {:>8.3}x {:>8.3}x {:>8.3}x {:>11} {:>11} {:>10}",
                proto.name(),
                n.runtime,
                n.noc_traffic,
                n.dram_traffic,
                r.noc.invalidation_bytes().0,
                r.noc.metadata_bytes().0 + r.dram.metadata_bytes().0,
                r.aim
                    .map(|a| format!("{:.1}", a.hit_rate() * 100.0))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        println!();
    }
    println!("Reading the table:");
    println!(" - CE's dram column grows where lines leave the L1 mid-region;");
    println!(" - CE+ removes that but keeps the invalidation/piggyback NoC load;");
    println!(" - ARC has zero inv+ack traffic and pays instead in L1 re-misses");
    println!("   (self-invalidation) and region-end flush/clear messages.");
}

fn run(w: WorkloadSpec, proto: ProtocolKind, cores: usize, scale: u32) -> SimReport {
    let cfg = MachineConfig::paper_default(cores, proto);
    let p = w.build(cores, scale, 42);
    Machine::new(&cfg).unwrap().run(&p).unwrap()
}
