//! Architectural what-if: how big does the AIM need to be?
//!
//! Sweeps the access-information-memory size for CE+ and ARC on a
//! metadata-hungry workload and prints hit rate vs run time — the
//! design-point analysis behind the paper's AIM sizing.
//!
//! ```text
//! cargo run --release --example aim_sweep
//! ```

use rce::prelude::*;

fn main() {
    let cores = 16;
    let scale = 2;
    let workload = WorkloadSpec::Canneal;
    let program = workload.build(cores, scale, 42);
    println!(
        "workload: {} ({} mem ops)\n",
        program.name,
        program.total_mem_ops()
    );

    let base = {
        let cfg = MachineConfig::paper_default(cores, ProtocolKind::MesiBaseline);
        Machine::new(&cfg).unwrap().run(&program).unwrap()
    };

    println!(
        "{:>9} | {:>9} {:>9} {:>10} | {:>9} {:>9} {:>10}",
        "entries", "CE+ hit%", "CE+ time", "CE+ spill", "ARC hit%", "ARC time", "ARC spill"
    );
    for shift in 9..=15u32 {
        let entries = 1u64 << shift; // 512 .. 32768
        let mut cells = vec![format!("{entries:>9}")];
        for proto in [ProtocolKind::CePlus, ProtocolKind::Arc] {
            let cfg = MachineConfig::paper_default(cores, proto).with_aim_entries(entries);
            let r = Machine::new(&cfg).unwrap().run(&program).unwrap();
            let aim = r.aim.expect("CE+/ARC have an AIM");
            cells.push(format!(
                "{:>9.1} {:>8.3}x {:>10}",
                aim.hit_rate() * 100.0,
                r.cycles.0 as f64 / base.cycles.0 as f64,
                aim.spills
            ));
        }
        println!("{} | {} | {}", cells[0], cells[1], cells[2]);
    }
    println!("\nSmall AIMs thrash (spills go to DRAM — back to CE's problem);");
    println!("past the workload's metadata working set, extra entries buy nothing.");
}
